"""Sharded multi-relay fleet: N partition relays behind one façade.

The single :class:`~repro.cloud.vm.relay.PartitionRelay` is scale-up:
one VM, one NIC.  That ceiling is exactly where the paper's comparison
gets interesting — at high worker counts the aggregate demand of W
function NICs exceeds one instance's line rate and the relay's flat
right flank bends up.  A :class:`RelayFleet` lifts the ceiling the way
the cache cluster does, but with plain VMs: N relay shards, each its
own instance (memory, NIC, token bucket), behind a façade that looks
exactly like one relay to the rest of the stack.

Design:

* **deterministic key routing** — every partition key maps to one shard
  via a stable hash (:meth:`RelayFleet.shard_for_key`, CRC-32 of the
  key bytes mod N); the same key always lands on the same shard, across
  mappers, reducers, retries and speculative attempts, so the exchange
  rendezvous works without any directory service.  A caller may install
  a *router* (:meth:`RelayFleet.set_router`) that overrides the hash
  for the keys it recognizes — the skew-aware exchange routes by
  planned partition bytes this way, falling back to CRC for keys the
  router does not claim;
* **batched fan-out** — a fleet client splits each MPUSH/MPULL batch by
  shard and issues the per-shard sub-batches *in parallel*, one request
  latency each; the caller's NIC budget is divided across the
  concurrent sub-flows so a worker never exceeds its own line rate
  while the fleet side aggregates N instance NICs;
* **fleet-wide cancellation and fencing** — ``cancel_attempt`` forwards
  to every shard, so the attempt-scoped chaos guarantees (reclaim,
  fencing, atomic swap, zero residual reservations) hold unchanged: a
  dead attempt's reservations are reclaimed on whichever shards they
  live, and the fence rejects its stragglers fleet-wide;
* **aggregate accounting** — capacity, fill, stats, residual
  reservations and the memory-accounting check all aggregate across
  shards; billing is simply the sum of the shard VMs' lifetimes.

The fleet registers under its own relay id, so worker payloads carry
one id and :meth:`~repro.cloud.faas.context.FunctionContext.relay`
resolves to the fleet transparently — the relay worker stages are
shared verbatim between the single-relay and sharded substrates.
"""

from __future__ import annotations

import typing as t
import zlib

from repro.cloud.vm.instance import VmService
from repro.cloud.vm.relay import PartitionRelay, RelayStats
from repro.errors import SimulationError
from repro.sim import SimEvent


class RelayFleet:
    """N partition-relay shards presented as one relay-compatible façade."""

    def __init__(self, service: VmService, shards: t.Sequence[PartitionRelay]):
        if not shards:
            raise SimulationError("a relay fleet needs at least one shard")
        self.service = service
        self.sim = service.sim
        self.shards: tuple[PartitionRelay, ...] = tuple(shards)
        self.relay_id = (
            f"fleet-{self.shards[0].vm.vm_id}x{len(self.shards)}"
        )
        #: Optional key → shard-index override (``None`` falls through
        #: to CRC); install via :meth:`set_router`.
        self.router: t.Callable[[str], int | None] | None = None
        #: Namespaced routers: key-prefix → router, so concurrent sorts
        #: on a shared fleet each route their own key namespace without
        #: clobbering each other's rebalanced routing.
        self._routers: dict[str, t.Callable[[str], int | None]] = {}
        service.relays[self.relay_id] = self

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def set_router(
        self,
        router: t.Callable[[str], int | None] | None,
        namespace: str | None = None,
    ) -> None:
        """Install (or clear, with ``None``) a load-aware routing override.

        The router maps a key to a shard index, or ``None`` to fall back
        to the CRC hash.  It MUST be a pure function of the key: the
        rendezvous depends on writers, readers, retries and speculative
        attempts all resolving a key to the same shard.  Install it
        before any traffic of the exchange it routes (the skew-aware
        sort does so right after boundary selection, before the map
        wave).

        ``namespace`` scopes the router to one exchange's key prefix:
        only keys starting with it consult this router, so any number of
        concurrent sorts can each install their own rebalanced routing
        on a shared fleet.  Without a namespace the router is the single
        fleet-global override (the legacy single-job discipline — only
        replace it between sorts).
        """
        if namespace is not None:
            if router is None:
                self._routers.pop(namespace, None)
            else:
                self._routers[namespace] = router
        else:
            self.router = router
        self.sim.timeline.record(
            self.sim.now, "relay",
            "fleet_rebalance" if router is not None else "fleet_rebalance_clear",
            fleet=self.relay_id, shards=len(self.shards),
            namespace=namespace or "(global)",
        )

    def shard_index_for_key(self, key: str) -> int:
        """Stable shard index of ``key`` (router override, else CRC-32 mod N).

        Deliberately *not* Python's randomized ``hash``: routing must be
        identical across runs, retries and speculative attempts or the
        rendezvous breaks.  Namespaced routers take precedence (longest
        matching prefix wins), then the global router, then CRC.
        """
        if self._routers:
            best: t.Callable[[str], int | None] | None = None
            best_length = -1
            for namespace, router in self._routers.items():
                if len(namespace) > best_length and key.startswith(namespace):
                    best, best_length = router, len(namespace)
            if best is not None:
                index = best(key)
                if index is not None:
                    return index % len(self.shards)
        if self.router is not None:
            index = self.router(key)
            if index is not None:
                return index % len(self.shards)
        return zlib.crc32(key.encode("utf-8")) % len(self.shards)

    def shard_for_key(self, key: str) -> PartitionRelay:
        return self.shards[self.shard_index_for_key(key)]

    # ------------------------------------------------------------------
    # relay-compatible façade
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def state(self) -> str:
        for shard in self.shards:
            if shard.state != "running":
                return shard.state
        return "running"

    @property
    def instance_type(self):
        return self.shards[0].vm.instance_type

    @property
    def instance_type_name(self) -> str:
        return self.shards[0].vm.instance_type.name

    @property
    def capacity_bytes(self) -> float:
        return sum(shard.capacity_bytes for shard in self.shards)

    @property
    def used_logical(self) -> float:
        return sum(shard.used_logical for shard in self.shards)

    @property
    def entry_bytes(self) -> float:
        return sum(shard.entry_bytes for shard in self.shards)

    @property
    def key_count(self) -> int:
        return sum(shard.key_count for shard in self.shards)

    @property
    def fill_fraction(self) -> float:
        return self.used_logical / self.capacity_bytes

    @property
    def peak_fill_fraction(self) -> float:
        """Peak fill of the *hottest* shard (imbalance shows up here)."""
        return max(shard.peak_fill_fraction for shard in self.shards)

    @property
    def active_flows(self) -> int:
        return sum(shard.active_flows for shard in self.shards)

    @property
    def aggregate_nic_bandwidth(self) -> float:
        return sum(shard.vm.instance_type.nic_bandwidth for shard in self.shards)

    @property
    def stats(self) -> RelayStats:
        """Fleet-wide counters (sums of the shard counters)."""
        total = RelayStats()
        for shard in self.shards:
            for field, value in shard.stats.as_dict().items():
                setattr(total, field, getattr(total, field) + value)
        return total

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        """Dedup-eligible committed pushes across all shards.

        Sorted by key so the fleet's view is deterministic regardless of
        shard enumeration order.
        """
        merged: list[tuple[str, str, float]] = []
        for shard in self.shards:
            merged.extend(shard.cas_entries(prefix))
        return sorted(merged)

    def reset_peak(self) -> None:
        for shard in self.shards:
            shard.reset_peak()

    # Epoch-scoped peaks: a fleet epoch is one token per shard; the
    # fleet-level peak is the hottest shard's epoch peak (imbalance
    # shows up there, same as :attr:`peak_fill_fraction`).
    def begin_peak_epoch(self) -> tuple[int, ...]:
        return tuple(shard.begin_peak_epoch() for shard in self.shards)

    def peak_fill_since(self, token: tuple[int, ...]) -> float:
        return max(
            shard.peak_fill_since(shard_token)
            for shard, shard_token in zip(self.shards, token)
        )

    def end_peak_epoch(self, token: tuple[int, ...]) -> float:
        return max(
            shard.end_peak_epoch(shard_token)
            for shard, shard_token in zip(self.shards, token)
        )

    def ensure_running(self) -> None:
        for shard in self.shards:
            shard.ensure_running()

    def terminate(self) -> None:
        """Terminate every shard still running and deregister the fleet."""
        for shard in self.shards:
            if shard.state != "terminated":
                shard.terminate()
        self.service.relays.pop(self.relay_id, None)
        self.sim.timeline.record(
            self.sim.now, "relay", "fleet_terminate",
            fleet=self.relay_id, shards=len(self.shards),
        )

    # ------------------------------------------------------------------
    # attempt-scoped cancellation (fleet-wide)
    # ------------------------------------------------------------------
    def cancel_attempt(self, attempt_id: str | None, fence: bool = True) -> float:
        """Reclaim and fence an attempt on every shard; returns total bytes."""
        return sum(
            shard.cancel_attempt(attempt_id, fence=fence) for shard in self.shards
        )

    def commit_attempt(self, attempt_id: str | None) -> int:
        """Finalize consume leases on every shard; returns entries removed."""
        return sum(shard.commit_attempt(attempt_id) for shard in self.shards)

    def cancel_scope(self, scope: str, fence: bool = True) -> float:
        """Reclaim and fence one tenant/job scope on every shard."""
        return sum(shard.cancel_scope(scope, fence=fence) for shard in self.shards)

    def is_fenced(self, attempt_id: str | None) -> bool:
        return any(shard.is_fenced(attempt_id) for shard in self.shards)

    def scope_fenced(self, scope: str) -> bool:
        return any(shard.scope_fenced(scope) for shard in self.shards)

    def residual_reservation_bytes(self, attempt_id: str | None = None) -> float:
        return sum(
            shard.residual_reservation_bytes(attempt_id) for shard in self.shards
        )

    def check_memory_accounting(self) -> None:
        for shard in self.shards:
            shard.check_memory_accounting()

    # ------------------------------------------------------------------
    def client(
        self,
        connection_bandwidth: float | None = None,
        attempt_id: str | None = None,
        owner=None,
        scope: str | None = None,
    ) -> "RelayFleetClient":
        """A fan-out client; same contract as :meth:`PartitionRelay.client`.

        ``scope`` is bound lazily, shard by shard, as the fan-out touches
        them; :meth:`cancel_scope` fences the scope on *every* shard, so
        a zombie of a cancelled scope is rejected even on shards it never
        touched before the cancel.
        """
        return RelayFleetClient(self, connection_bandwidth, attempt_id, owner, scope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RelayFleet {self.relay_id} {self.instance_type_name} "
            f"shards={self.shard_count} {self.state} "
            f"fill={self.fill_fraction:.1%}>"
        )


class RelayFleetClient:
    """Routes single-key ops and fans batches out across the shards.

    Mirrors :class:`~repro.cloud.vm.relay.RelayClient`: every method
    returns a SimEvent and the batched forms pay one request latency per
    shard touched — *in parallel*, so a fleet batch costs one round trip
    of wall clock just like a single-relay batch.  ``connection_bandwidth``
    is the caller's NIC: when a batch spans K shards the concurrent
    sub-flows are capped at shares *proportional to their bytes*, so
    the shares always sum to the caller's line rate (it can never
    exceed its NIC) and, when the caller is the bottleneck, the fan-out
    finishes in exactly the single-flow time regardless of how evenly
    the hash split the batch — while the fleet side spreads the load
    over K instance NICs.

    Attempt binding is inherited by every per-shard sub-client, and the
    fan-out coordinator itself registers with ``owner``, so a killed
    activation interrupts the coordinator *and* its per-shard transfers,
    each of which reclaims its own shard-local reservation — the same
    cleanup discipline as the single relay, N times over.
    """

    def __init__(
        self,
        fleet: RelayFleet,
        connection_bandwidth: float | None,
        attempt_id: str | None = None,
        owner=None,
        scope: str | None = None,
    ):
        self.fleet = fleet
        self.sim = fleet.sim
        self.connection_bandwidth = connection_bandwidth
        self.attempt_id = attempt_id
        self.owner = owner
        self.scope = scope

    # ------------------------------------------------------------------
    # single-key operations: route, then delegate
    # ------------------------------------------------------------------
    def push(self, key: str, data: bytes, logical_size: float | None = None) -> SimEvent:
        return self._shard_client(self.fleet.shard_for_key(key)).push(
            key, data, logical_size
        )

    def pull(self, key: str, consume: bool = False) -> SimEvent:
        return self._shard_client(self.fleet.shard_for_key(key)).pull(key, consume)

    def pull_wait(self, key: str) -> SimEvent:
        """Rendezvous read: wait on the owning shard until ``key`` commits."""
        return self._shard_client(self.fleet.shard_for_key(key)).pull_wait(key)

    def delete(self, key: str) -> SimEvent:
        return self._shard_client(self.fleet.shard_for_key(key)).delete(key)

    # ------------------------------------------------------------------
    # batched operations: group by shard, fan out, reassemble
    # ------------------------------------------------------------------
    def mpush(
        self,
        items: t.Sequence[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None = None,
    ) -> SimEvent:
        return self._spawn(self._mpush_op(list(items), logical_sizes), "mpush")

    def mpull(self, keys: t.Sequence[str], consume: bool = False) -> SimEvent:
        return self._spawn(self._mpull_op(list(keys), consume), "mpull")

    def mdelete(self, keys: t.Sequence[str]) -> SimEvent:
        return self._spawn(self._mdelete_op(list(keys)), "mdelete")

    # ------------------------------------------------------------------
    def _spawn(self, generator: t.Generator, label: str) -> SimEvent:
        process = self.sim.process(
            generator, name=f"{self.fleet.relay_id}.{label}"
        )
        if self.owner is not None:
            self.owner.track(process)
        return process.completion

    def _shard_client(self, shard: PartitionRelay, cap: float | None = None):
        bandwidth = cap if cap is not None else self.connection_bandwidth
        return shard.client(bandwidth, self.attempt_id, self.owner, self.scope)

    def _group(self, keys: t.Sequence[str]) -> list[tuple[int, list[int]]]:
        """``[(shard_index, [positions...]), ...]`` in shard order."""
        groups: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.fleet.shard_index_for_key(key), []).append(
                position
            )
        return sorted(groups.items())

    def _proportional_caps(self, weights: t.Sequence[float]) -> list[float | None]:
        """Byte-proportional shares of the caller's NIC for a fan-out.

        Shares sum to ``connection_bandwidth``, so the caller never
        exceeds its line rate, and a caller-bound fan-out finishes in
        exactly the single-flow time however unevenly the hash routed
        the batch.  A zero-weight group moves no bytes (its transfer is
        skipped entirely), so its share is irrelevant — it gets the
        full cap to avoid a meaningless zero-rate flow.
        """
        if self.connection_bandwidth is None:
            return [None] * len(weights)
        total = sum(weights)
        return [
            self.connection_bandwidth * (weight / total)
            if total > 0 and weight > 0
            else self.connection_bandwidth
            for weight in weights
        ]

    def _mpush_op(
        self,
        items: list[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None,
    ) -> t.Generator:
        if not items:
            return None
        groups = self._group([key for key, _data in items])
        scale = self.fleet.service.logical_scale

        def item_logical(position: int) -> float:
            if logical_sizes is not None:
                return float(logical_sizes[position])
            return len(items[position][1]) * scale

        caps = self._proportional_caps(
            [
                sum(item_logical(position) for position in positions)
                for _shard_index, positions in groups
            ]
        )
        events = []
        for (shard_index, positions), cap in zip(groups, caps):
            sub_items = [items[position] for position in positions]
            sub_sizes = (
                [logical_sizes[position] for position in positions]
                if logical_sizes is not None
                else None
            )
            events.append(
                self._shard_client(self.fleet.shards[shard_index], cap).mpush(
                    sub_items, sub_sizes
                )
            )
        yield self.sim.all_of(events)
        return None

    def _mpull_op(self, keys: list[str], consume: bool) -> t.Generator:
        if not keys:
            return []
        groups = self._group(keys)
        # Sizes live server-side; weight the NIC shares by resident
        # entry bytes, falling back to key counts for absent keys (the
        # shard will fail those with RelayKeyMissing anyway).
        weights = []
        for shard_index, positions in groups:
            shard = self.fleet.shards[shard_index]
            weight = 0.0
            for position in positions:
                logical = shard.logical_size_of(keys[position])
                weight += logical if logical is not None else 1.0
            weights.append(weight)
        caps = self._proportional_caps(weights)
        events = [
            self._shard_client(self.fleet.shards[shard_index], cap).mpull(
                [keys[position] for position in positions], consume
            )
            for (shard_index, positions), cap in zip(groups, caps)
        ]
        payload_lists = yield self.sim.all_of(events)
        out: list[bytes | None] = [None] * len(keys)
        for (_shard_index, positions), payloads in zip(groups, payload_lists):
            for position, data in zip(positions, payloads):
                out[position] = data
        return t.cast("list[bytes]", out)

    def _mdelete_op(self, keys: list[str]) -> t.Generator:
        if not keys:
            return 0
        groups = self._group(keys)
        events = [
            self._shard_client(self.fleet.shards[shard_index]).mdelete(
                [keys[position] for position in positions]
            )
            for shard_index, positions in groups
        ]
        counts = yield self.sim.all_of(events)
        return sum(counts)


# ----------------------------------------------------------------------
# lifecycle helpers (mirror relay.provision_relay / relay_ready)
# ----------------------------------------------------------------------
def provision_fleet(vms: VmService, type_name: str, shards: int) -> SimEvent:
    """Provision ``shards`` relay VMs concurrently; event → :class:`RelayFleet`.

    The shards boot in parallel, so the fleet pays one VM boot latency
    (the slowest of N), not N of them — but N instances' billing clocks
    all start at provision.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    return vms.sim.process(
        _provision(vms, type_name, shards), name=f"{vms.name}.fleet.provision"
    ).completion


def _provision(vms: VmService, type_name: str, shards: int) -> t.Generator:
    from repro.cloud.vm.relay import provision_relay

    events = [provision_relay(vms, type_name) for _ in range(shards)]
    relays = yield vms.sim.all_of(events)
    fleet = RelayFleet(vms, relays)
    vms.sim.timeline.record(
        vms.sim.now, "relay", "fleet_provision",
        fleet=fleet.relay_id, type=type_name, shards=shards,
    )
    return fleet


def fleet_ready(vms: VmService, type_name: str, shards: int) -> RelayFleet:
    """A fleet whose shard VMs are already running (warm mode).

    Billing still starts now, for every shard, exactly as with
    :func:`~repro.cloud.vm.relay.relay_ready`.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    from repro.cloud.vm.relay import relay_ready

    fleet = RelayFleet(vms, [relay_ready(vms, type_name) for _ in range(shards)])
    vms.sim.timeline.record(
        vms.sim.now, "relay", "fleet_provision",
        fleet=fleet.relay_id, type=type_name, shards=shards, warm=True,
    )
    return fleet
