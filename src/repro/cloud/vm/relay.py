"""In-memory partition relay hosted on a provisioned VM.

The third data-exchange substrate of the comparison: a plain virtual
server instance running a small in-memory rendezvous server.  Mappers
PUSH their partitions to it over the network, reducers PULL their range
— intermediate data never touches object storage and never pays the
cache service's per-node pricing; what it pays instead is exactly what
the paper's hybrid pipeline pays (Table 1): **provisioning latency**
before the relay accepts traffic and **per-second VM billing** from
provision to terminate.

Modeling choices:

* **single fat node** — the relay is scale-up, not scale-out: one VM,
  one NIC.  All concurrent PUSH/PULL flows share the instance NIC via
  max-min fair sharing, so the relay's bandwidth ceiling is the
  instance's line rate (pick a bigger flavour to raise it);
* **near-LAN request latency** — one in-VPC TCP round trip per request
  batch (``VmProfile.relay_request_latency``), far below object-storage
  first-byte latency;
* **bounded memory with backpressure** — partitions live in instance
  memory.  A PUSH that does not fit *waits* until readers consume space
  (the TCP-flow-control behaviour of a real relay), instead of failing
  like the cache's ``noeviction`` mode; only a partition that can never
  fit raises :class:`~repro.cloud.vm.errors.RelayCapacityExceeded`;
* **per-second billing** — the relay's cost *is* its VM's cost
  (instance seconds + boot volume), billed on terminate.

Workers resolve relays by id through their contexts
(:meth:`~repro.cloud.faas.context.FunctionContext.relay`), mirroring the
cache's ``ctx.kv`` accessor.

Known limitation — orphaned transfers under crash injection and
speculation: the FaaS platform kills a crashed activation's *body*
process, but a relay transfer that body already spawned keeps draining.
A retried mapper racing its orphaned predecessor can transiently
double-reserve its batch (hanging a relay with less than one spare
batch of free memory), and a losing speculative mapper's replacing
MPUSH opens a brief absence window for its keys.  Auto-sized relays
(1.3x headroom) and the default no-speculation executor are safe;
attempt-scoped cancellation is the proper fix and belongs to the FaaS
platform layer (see ROADMAP).
"""

from __future__ import annotations

import collections
import dataclasses
import typing as t

from repro.cloud.vm.errors import RelayCapacityExceeded, RelayKeyMissing
from repro.cloud.vm.instance import VirtualMachine, VmService
from repro.errors import SimulationError
from repro.sim import FairShareLink, SimEvent, TokenBucket


@dataclasses.dataclass(slots=True)
class _Entry:
    """One resident partition: real payload plus its logical size."""

    data: bytes
    logical: float


class RelayStats:
    """Per-relay counters exposed for planners, reports and tests."""

    def __init__(self) -> None:
        self.pushes = 0
        self.pulls = 0
        self.deletes = 0
        self.misses = 0
        self.backpressure_waits = 0
        self.bytes_in = 0.0  # logical bytes pushed (stored)
        self.bytes_out = 0.0  # logical bytes served to pullers

    def as_dict(self) -> dict[str, float]:
        return dict(vars(self))


class PartitionRelay:
    """One relay server: bounded in-memory store + NIC + request models."""

    def __init__(self, service: VmService, vm: VirtualMachine):
        self.service = service
        self.sim = service.sim
        self.vm = vm
        self.relay_id = f"relay-{vm.vm_id}"
        profile = service.profile
        #: Logical bytes of partitions the relay may hold at once.
        self.capacity_bytes = profile.relay_usable_bytes(vm.instance_type)
        self.used_logical = 0.0
        self.peak_used_logical = 0.0
        self._entries: dict[str, _Entry] = {}
        #: FIFO of pushes waiting for space: ``(logical, event)``.
        self._waiters: collections.deque[tuple[float, SimEvent]] = collections.deque()
        self.ops = TokenBucket(
            self.sim,
            rate=profile.relay_ops_per_second,
            capacity=profile.relay_ops_burst,
            name=f"{self.relay_id}.ops",
        )
        #: The instance NIC; every PUSH and PULL flow contends here.
        self.link = FairShareLink(
            self.sim, capacity=vm.instance_type.nic_bandwidth, name=f"{self.relay_id}.nic"
        )
        self.stats = RelayStats()
        self._rng = self.sim.rng.stream(f"{self.relay_id}.request")
        service.relays[self.relay_id] = self

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self.vm.state

    def ensure_running(self) -> None:
        self.vm.ensure_running()

    def client(self, connection_bandwidth: float | None = None) -> "RelayClient":
        """A request client, optionally capped by the caller's NIC."""
        return RelayClient(self, connection_bandwidth)

    def terminate(self) -> None:
        """Stop the relay and bill its VM's lifetime.

        Drops the resident partitions (the VM's memory is gone) and
        deregisters the relay id, so stale worker payloads resolve to
        :class:`~repro.cloud.vm.errors.UnknownRelay` instead of a dead
        relay and long-lived regions don't accumulate dead payloads.
        """
        resident = len(self._entries)
        self.vm.terminate()
        self._entries.clear()
        self.used_logical = 0.0
        self.service.relays.pop(self.relay_id, None)
        self.sim.timeline.record(
            self.sim.now, "relay", "terminate", relay=self.relay_id,
            type=self.vm.instance_type.name, resident_keys=resident,
        )

    # ------------------------------------------------------------------
    # memory admission (backpressure)
    # ------------------------------------------------------------------
    def _admit(self, logical: float) -> SimEvent:
        """Reserve ``logical`` bytes; the event triggers once they fit."""
        if logical > self.capacity_bytes:
            raise RelayCapacityExceeded(self.relay_id, logical, self.capacity_bytes)
        event = SimEvent(self.sim, name=f"{self.relay_id}.admit({logical:g}B)")
        if not self._waiters and self.used_logical + logical <= self.capacity_bytes:
            self._reserve(logical)
            event.succeed()
        else:
            self.stats.backpressure_waits += 1
            self._waiters.append((logical, event))
        return event

    def _reserve(self, logical: float) -> None:
        self.used_logical += logical
        self.peak_used_logical = max(self.peak_used_logical, self.used_logical)

    def _release(self, logical: float) -> None:
        self.used_logical -= logical
        while self._waiters:
            pending, event = self._waiters[0]
            if self.used_logical + pending > self.capacity_bytes:
                break
            self._waiters.popleft()
            self._reserve(pending)
            event.succeed()

    # ------------------------------------------------------------------
    # bookkeeping (synchronous; the client pays latency/bandwidth)
    # ------------------------------------------------------------------
    def _evict_existing(self, keys: t.Iterable[str]) -> None:
        """Drop current entries for ``keys``, releasing their memory.

        Called *before* a replacing PUSH admits its payload: admitting
        the full new size while the old entry's reservation is still
        held would demand old+new bytes at once and deadlock a
        re-pushed (retried/speculative) mapper against a full relay.
        The key is briefly absent during the replacing transfer — the
        single-copy semantics of a real in-memory rendezvous.
        """
        released = 0.0
        for key in keys:
            previous = self._entries.pop(key, None)
            if previous is not None:
                released += previous.logical
        if released > 0:
            self._release(released)

    def _store(self, key: str, data: bytes, logical: float) -> None:
        previous = self._entries.pop(key, None)
        self._entries[key] = _Entry(bytes(data), logical)
        self.stats.pushes += 1
        self.stats.bytes_in += logical
        if previous is not None:
            # A concurrent push stored this key mid-transfer; its
            # reservation is superseded by ours.
            self._release(previous.logical)

    def _lookup(self, key: str) -> _Entry:
        """Resolve ``key`` or raise, counting the miss.  No pull stats:
        those are recorded only once the transfer actually happened."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            raise RelayKeyMissing(key)
        return entry

    def _record_pulls(self, count: int, logical: float) -> None:
        self.stats.pulls += count
        self.stats.bytes_out += logical

    def _remove(self, key: str) -> bool:
        entry = self._entries.pop(key, None)
        self.stats.deletes += 1
        if entry is None:
            return False
        self._release(entry.logical)
        return True

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return len(self._entries)

    @property
    def fill_fraction(self) -> float:
        """Reserved capacity as a fraction of usable memory (0..1)."""
        return self.used_logical / self.capacity_bytes

    @property
    def peak_fill_fraction(self) -> float:
        return self.peak_used_logical / self.capacity_bytes

    def reset_peak(self) -> None:
        """Restart peak tracking from the current fill (per-run peaks)."""
        self.peak_used_logical = self.used_logical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionRelay {self.relay_id} {self.vm.instance_type.name} "
            f"{self.state} keys={self.key_count} fill={self.fill_fraction:.1%}>"
        )


class RelayClient:
    """Request interface to one relay; all methods return SimEvents.

    ``connection_bandwidth`` caps this client's transfer rate (the
    caller's NIC); ``None`` means only the relay's own NIC bounds it.
    Batched MPUSH/MPULL pay *one* request latency for the whole batch —
    there is a single server, so pipelining is even cheaper than the
    cache's one-latency-per-node-touched.
    """

    def __init__(self, relay: PartitionRelay, connection_bandwidth: float | None):
        self.relay = relay
        self.sim = relay.sim
        self.connection_bandwidth = connection_bandwidth
        self._profile = relay.service.profile
        self._scale = relay.service.logical_scale

    # ------------------------------------------------------------------
    # single-key operations
    # ------------------------------------------------------------------
    def push(self, key: str, data: bytes, logical_size: float | None = None) -> SimEvent:
        """Store ``key``; event → ``None``.  Waits under backpressure."""
        return self._spawn(self._push_op(key, data, logical_size), f"push:{key}")

    def pull(self, key: str, consume: bool = False) -> SimEvent:
        """Fetch ``key``; event → ``bytes``.  ``consume`` frees its memory."""
        return self._spawn(self._pull_op(key, consume), f"pull:{key}")

    def delete(self, key: str) -> SimEvent:
        """Remove ``key``; event → whether it existed."""
        return self._spawn(self._delete_op(key), f"delete:{key}")

    # ------------------------------------------------------------------
    # batched (pipelined) operations
    # ------------------------------------------------------------------
    def mpush(
        self,
        items: t.Sequence[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None = None,
    ) -> SimEvent:
        """Store many keys over one connection; event → ``None``."""
        return self._spawn(self._mpush_op(list(items), logical_sizes), "mpush")

    def mpull(self, keys: t.Sequence[str], consume: bool = False) -> SimEvent:
        """Fetch many keys over one connection; event → payload list.

        Payloads come back in input-key order.  Fails with
        :class:`~repro.cloud.vm.errors.RelayKeyMissing` naming the first
        absent key — before anything is consumed, so a failed batch
        neither loses data nor leaks reserved memory.
        """
        return self._spawn(self._mpull_op(list(keys), consume), "mpull")

    def mdelete(self, keys: t.Sequence[str]) -> SimEvent:
        """Remove many keys over one connection; event → count removed."""
        return self._spawn(self._mdelete_op(list(keys)), "mdelete")

    def _spawn(self, generator: t.Generator, label: str) -> SimEvent:
        return self.sim.process(
            generator, name=f"{self.relay.relay_id}.{label}"
        ).completion

    # ------------------------------------------------------------------
    # operation bodies
    # ------------------------------------------------------------------
    def _logical(self, data: bytes, logical_size: float | None) -> float:
        if logical_size is not None:
            return logical_size
        return len(data) * self._scale

    def _latency(self) -> float:
        return self._profile.relay_request_latency.sample(self.relay._rng)

    def _flow_cap(self) -> float | None:
        return self.connection_bandwidth

    def _transfer(self, logical: float) -> SimEvent:
        return self.relay.link.transfer(logical, self._flow_cap())

    def _push_op(
        self, key: str, data: bytes, logical_size: float | None
    ) -> t.Generator:
        self.relay.ensure_running()
        yield self.relay.ops.consume(1.0)
        yield self.sim.timeout(self._latency())
        logical = self._logical(data, logical_size)
        # Fail before evicting: a rejected push must leave the key's
        # previous value (if any) intact.
        if logical > self.relay.capacity_bytes:
            raise RelayCapacityExceeded(
                self.relay.relay_id, logical, self.relay.capacity_bytes
            )
        self.relay._evict_existing([key])
        yield self.relay._admit(logical)
        if logical > 0:
            yield self._transfer(logical)
        self.relay._store(key, data, logical)
        return None

    def _pull_op(self, key: str, consume: bool) -> t.Generator:
        self.relay.ensure_running()
        yield self.relay.ops.consume(1.0)
        yield self.sim.timeout(self._latency())
        entry = self.relay._lookup(key)
        if entry.logical > 0:
            yield self._transfer(entry.logical)
        self.relay._record_pulls(1, entry.logical)
        if consume:
            removed = self.relay._entries.pop(key, None)
            if removed is not None:
                self.relay._release(removed.logical)
        return entry.data

    def _delete_op(self, key: str) -> t.Generator:
        self.relay.ensure_running()
        yield self.relay.ops.consume(1.0)
        yield self.sim.timeout(self._latency())
        return self.relay._remove(key)

    def _mpush_op(
        self,
        items: list[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None,
    ) -> t.Generator:
        self.relay.ensure_running()
        if not items:
            return None
        if logical_sizes is not None and len(logical_sizes) != len(items):
            raise SimulationError("mpush: logical_sizes length does not match items")
        yield from self._consume_ops(float(len(items)))
        yield self.sim.timeout(self._latency())
        logicals = [
            logical_sizes[index]
            if logical_sizes is not None
            else self._logical(data, None)
            for index, (_key, data) in enumerate(items)
        ]
        # Admit the batch as a whole, then stream it through one flow.
        # Atomic admission is deliberate: two concurrent MPUSHes that
        # reserved item-by-item could each hold half their batch and
        # deadlock waiting for the other.  The price is that a batch
        # larger than usable memory is a hard RelayCapacityExceeded
        # (from _admit) even when its items would fit one at a time —
        # push those individually instead.  Entries being replaced are
        # evicted first so a re-pushed batch never demands old+new
        # bytes at once (the retried-mapper case) — but only after the
        # batch is known to fit, so a rejected MPUSH is side-effect-free.
        total = sum(logicals)
        if total > self.relay.capacity_bytes:
            raise RelayCapacityExceeded(
                self.relay.relay_id, total, self.relay.capacity_bytes
            )
        self.relay._evict_existing([key for key, _data in items])
        yield self.relay._admit(total)
        if total > 0:
            yield self._transfer(total)
        for (key, data), logical in zip(items, logicals):
            self.relay._store(key, data, logical)
        self.sim.timeline.record(
            self.sim.now, "relay", "mpush",
            relay=self.relay.relay_id, keys=len(items), logical=total,
        )
        return None

    def _mpull_op(self, keys: list[str], consume: bool) -> t.Generator:
        self.relay.ensure_running()
        if not keys:
            return []
        yield from self._consume_ops(float(len(keys)))
        yield self.sim.timeout(self._latency())
        # Non-destructive lookups first: a missing key mid-batch must
        # fail the whole MPULL without having consumed (or counted as
        # served, or leaked the reservation of) the keys before it.
        entries = [self.relay._lookup(key) for key in keys]
        total = sum(entry.logical for entry in entries)
        if total > 0:
            yield self._transfer(total)
        # bytes_out counts logical bytes *served* (duplicate keys in the
        # batch transfer — and count — once per occurrence).
        self.relay._record_pulls(len(keys), total)
        if consume:
            released = 0.0
            for key in keys:
                removed = self.relay._entries.pop(key, None)
                if removed is not None:  # duplicates in the batch pop once
                    released += removed.logical
            self.relay._release(released)
        self.sim.timeline.record(
            self.sim.now, "relay", "mpull",
            relay=self.relay.relay_id, keys=len(keys), logical=total,
        )
        return [entry.data for entry in entries]

    def _mdelete_op(self, keys: list[str]) -> t.Generator:
        self.relay.ensure_running()
        if not keys:
            return 0
        yield from self._consume_ops(float(len(keys)))
        yield self.sim.timeout(self._latency())
        removed = sum(1 for key in keys if self.relay._remove(key))
        self.sim.timeline.record(
            self.sim.now, "relay", "mdelete",
            relay=self.relay.relay_id, keys=len(keys), removed=removed,
        )
        return removed

    def _consume_ops(self, amount: float) -> t.Generator:
        """Take ``amount`` rate-limit tokens, in bucket-sized chunks."""
        remaining = amount
        while remaining > 0:
            take = min(remaining, self.relay.ops.capacity)
            yield self.relay.ops.consume(take)
            remaining -= take


# ----------------------------------------------------------------------
# lifecycle helpers
# ----------------------------------------------------------------------
def provision_relay(vms: VmService, type_name: str) -> SimEvent:
    """Provision a relay VM on the clock; event → running :class:`PartitionRelay`.

    Pays the full VM boot latency before the relay accepts traffic —
    the Table 1 provisioning penalty of anything VM-backed.
    """
    return vms.sim.process(
        _provision(vms, type_name), name=f"{vms.name}.relay.provision"
    ).completion


def _provision(vms: VmService, type_name: str) -> t.Generator:
    vm = yield vms.provision(type_name)
    relay = PartitionRelay(vms, vm)
    vms.sim.timeline.record(
        vms.sim.now, "relay", "provision", relay=relay.relay_id, type=type_name,
    )
    return relay


def relay_ready(vms: VmService, type_name: str) -> PartitionRelay:
    """A relay that is already running (pre-provisioned, warm mode).

    Billing still starts now: the VM accrues instance-seconds from this
    call until :meth:`PartitionRelay.terminate`.
    """
    vm = vms.provision_ready(type_name)
    relay = PartitionRelay(vms, vm)
    vms.sim.timeline.record(
        vms.sim.now, "relay", "provision", relay=relay.relay_id, type=type_name,
        warm=True,
    )
    return relay
