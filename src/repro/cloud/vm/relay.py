"""In-memory partition relay hosted on a provisioned VM.

The third data-exchange substrate of the comparison: a plain virtual
server instance running a small in-memory rendezvous server.  Mappers
PUSH their partitions to it over the network, reducers PULL their range
— intermediate data never touches object storage and never pays the
cache service's per-node pricing; what it pays instead is exactly what
the paper's hybrid pipeline pays (Table 1): **provisioning latency**
before the relay accepts traffic and **per-second VM billing** from
provision to terminate.

Modeling choices:

* **single fat node** — the relay is scale-up, not scale-out: one VM,
  one NIC.  All concurrent PUSH/PULL flows share the instance NIC via
  max-min fair sharing, so the relay's bandwidth ceiling is the
  instance's line rate (pick a bigger flavour to raise it);
* **near-LAN request latency** — one in-VPC TCP round trip per request
  batch (``VmProfile.relay_request_latency``), far below object-storage
  first-byte latency;
* **bounded memory with backpressure** — partitions live in instance
  memory.  A PUSH that does not fit *waits* until readers consume space
  (the TCP-flow-control behaviour of a real relay), instead of failing
  like the cache's ``noeviction`` mode; only a partition that can never
  fit raises :class:`~repro.cloud.vm.errors.RelayCapacityExceeded`;
* **per-second billing** — the relay's cost *is* its VM's cost
  (instance seconds + boot volume), billed on terminate.

Workers resolve relays by id through their contexts
(:meth:`~repro.cloud.faas.context.FunctionContext.relay`), mirroring the
cache's ``ctx.kv`` accessor.

Fault handling — attempt-scoped transfers:

Every request carries the issuing activation's *attempt id* and every
in-flight PUSH holds an attempt-tagged :class:`_PushReservation`.  When
the FaaS platform kills an activation (crash, timeout, lost speculative
race) it calls :meth:`PartitionRelay.cancel_attempt`, which aborts the
attempt's transfers mid-flow, releases every reserved-but-uncommitted
byte immediately, and *fences* the attempt id so a straggling request
from the zombie is rejected with
:class:`~repro.cloud.vm.errors.RelayAttemptFenced`.  A replacing PUSH
is an **atomic swap**: the old value stays resident and pullable for
the whole transfer and is exchanged for the new one in a single step at
commit — a concurrent reducer can never observe the key absent, and a
cancelled replacement leaves the old value exactly as it was.  Memory
admission credits the bytes of the entries being replaced, so a retried
mapper re-pushing its batch never demands old+new bytes at once and
cannot deadlock a full relay.  This is what makes crash-retry and
speculation safe on the relay substrate.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as t

from repro.cas import cas_enabled, sha256_hex
from repro.cloud.vm.errors import (
    RelayAttemptFenced,
    RelayCapacityExceeded,
    RelayKeyMissing,
    VmNotRunning,
)
from repro.cloud.vm.instance import VirtualMachine, VmService
from repro.errors import SimulationError
from repro.obs.metrics import registry as metrics_registry
from repro.obs.trace import NOOP_SPAN
from repro.sim import FairShareLink, KeyedWatch, SimEvent, TokenBucket


@dataclasses.dataclass(slots=True)
class _Entry:
    """One resident partition: real payload plus its logical size.

    ``sha`` is the partition's content address when the push was
    dedup-eligible; it keys the relay's refcounted content index.
    """

    data: bytes
    logical: float
    sha: str | None = None


#: Lifecycle of a push reservation.  ``waiting`` → queued for memory;
#: ``reserved`` → bytes admitted, transfer may be in flight;
#: ``committed`` → entries swapped in (terminal); ``aborted`` → reclaimed
#: (terminal).
_WAITING, _RESERVED, _COMMITTED, _ABORTED = "waiting", "reserved", "committed", "aborted"


class _PushReservation:
    """One in-flight (M)PUSH: attempt-tagged memory custody until commit.

    ``extra`` is what admission actually reserved on top of the *credit*
    — the bytes of the resident entries the push replaces, which stay
    readable until the atomic swap at commit.  ``absorbed`` collects the
    bytes of replaced entries that a concurrent consume/delete removed
    mid-transfer: their memory stays reserved here (the incoming payload
    needs it anyway) instead of being released and re-granted.
    """

    __slots__ = (
        "keys",
        "resident_total",
        "extra",
        "absorbed",
        "attempt",
        "state",
        "admission_event",
        "transfer_event",
    )

    def __init__(
        self,
        keys: list[str],
        resident_total: float,
        extra: float,
        attempt: str | None,
        admission_event: SimEvent,
    ):
        self.keys = keys
        self.resident_total = resident_total
        self.extra = extra
        self.absorbed = 0.0
        self.attempt = attempt
        self.state = _WAITING
        self.admission_event = admission_event
        self.transfer_event: SimEvent | None = None

    @property
    def held_bytes(self) -> float:
        """Bytes of relay memory this reservation currently holds."""
        held = self.absorbed
        if self.state == _RESERVED:
            held += self.extra
        return held


class RelayStats:
    """Per-relay counters exposed for planners, reports and tests."""

    def __init__(self) -> None:
        self.pushes = 0
        self.pulls = 0
        self.deletes = 0
        self.misses = 0
        self.backpressure_waits = 0
        #: PULLs that arrived before their key and parked on the commit
        #: notification (the streaming shuffle's rendezvous reads).
        self.rendezvous_waits = 0
        self.cancelled_transfers = 0
        self.fenced_requests = 0
        #: Consuming reads granted as leases (entry retained until commit).
        self.consume_leases = 0
        #: Leased entries actually removed by a committing attempt.
        self.lease_commits = 0
        #: Leased entries reinstated because the attempt died/fenced.
        self.lease_reinstatements = 0
        self.bytes_in = 0.0  # logical bytes pushed (stored)
        self.bytes_out = 0.0  # logical bytes served to pullers
        self.reclaimed_bytes = 0.0  # logical bytes reclaimed from dead attempts
        #: MPUSH items that rode as content-key references because the
        #: rendezvous already held byte-identical data.
        self.dedup_hits = 0
        self.dedup_bytes = 0.0  # logical wire bytes those references skipped

    def as_dict(self) -> dict[str, float]:
        return dict(vars(self))


class PartitionRelay:
    """One relay server: bounded in-memory store + NIC + request models."""

    def __init__(self, service: VmService, vm: VirtualMachine):
        self.service = service
        self.sim = service.sim
        self.vm = vm
        self.relay_id = f"relay-{vm.vm_id}"
        profile = service.profile
        #: Logical bytes of partitions the relay may hold at once.
        self.capacity_bytes = profile.relay_usable_bytes(vm.instance_type)
        self.used_logical = 0.0
        self.peak_used_logical = 0.0
        self._entries: dict[str, _Entry] = {}
        #: FIFO of pushes waiting for memory admission.
        self._waiters: collections.deque[_PushReservation] = collections.deque()
        #: Every live (waiting/reserved) push reservation.
        self._reservations: set[_PushReservation] = set()
        #: Live reservations per attempt id, for cancel-and-reclaim.
        self._attempt_reservations: dict[str, set[_PushReservation]] = {}
        #: The latest in-flight replacing push per key (atomic swap).
        self._pending_swaps: dict[str, _PushReservation] = {}
        #: Rendezvous watchers: pullers parked until a key commits.
        self._key_watchers = KeyedWatch(self.sim, name=f"{self.relay_id}.watch")
        #: Attempt ids whose requests are rejected (cancelled attempts).
        self._fenced: set[str] = set()
        #: Consume leases: attempt id → keys it read destructively.  The
        #: entries stay resident until the attempt *commits* (the FaaS
        #: platform calls :meth:`commit_attempt` on handler success), so a
        #: reducer that dies mid-consume loses nothing — its retry finds
        #: every key exactly where it was.
        self._attempt_consume_leases: dict[str, set[str]] = {}
        #: Tenant/job scopes: every attempt may carry one scope label, so
        #: a service can cancel *exactly* one tenant's attempts
        #: (:meth:`cancel_scope`) without touching anyone else's.
        self._attempt_scopes: dict[str, str] = {}
        self._scope_attempts: dict[str, set[str]] = {}
        self._fenced_scopes: set[str] = set()
        #: Refcounted content index: sha256 → resident entries holding
        #: those bytes.  Only affects *wire* accounting (an MPUSH of
        #: resident content transfers a reference, not the payload);
        #: reservation and memory byte math stay exact, so the chaos
        #: suites' residual/accounting invariants are untouched.
        self._content: collections.Counter[str] = collections.Counter()
        #: Append-only ``(key, sha256, logical)`` log of dedup-eligible
        #: committed pushes, for run-manifest construction.
        self.cas_log: list[tuple[str, str, float]] = []
        #: Open peak-tracking epochs: token → max ``used_logical`` seen
        #: since the epoch began (concurrent jobs each get their own).
        self._peak_epochs: dict[int, float] = {}
        self._peak_epoch_seq = 0
        self.ops = TokenBucket(
            self.sim,
            rate=profile.relay_ops_per_second,
            capacity=profile.relay_ops_burst,
            name=f"{self.relay_id}.ops",
        )
        #: The instance NIC; every PUSH and PULL flow contends here.
        self.link = FairShareLink(
            self.sim, capacity=vm.instance_type.nic_bandwidth, name=f"{self.relay_id}.nic"
        )
        self.stats = RelayStats()
        self._rng = self.sim.rng.stream(f"{self.relay_id}.request")
        service.relays[self.relay_id] = self

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self.vm.state

    @property
    def instance_type(self):
        return self.vm.instance_type

    @property
    def instance_type_name(self) -> str:
        return self.vm.instance_type.name

    @property
    def shard_count(self) -> int:
        """A single relay is a one-shard fleet to substrate-generic code."""
        return 1

    @property
    def active_flows(self) -> int:
        """Flows currently draining this relay's NIC."""
        return self.link.active_flows

    def ensure_running(self) -> None:
        self.vm.ensure_running()

    def client(
        self,
        connection_bandwidth: float | None = None,
        attempt_id: str | None = None,
        owner=None,
        scope: str | None = None,
    ) -> "RelayClient":
        """A request client, optionally capped by the caller's NIC.

        ``attempt_id`` tags every reservation the client takes so
        :meth:`cancel_attempt` can reclaim them; ``owner`` (a
        :class:`~repro.cloud.faas.context.FunctionContext`) additionally
        tracks the client's request processes so a killed activation's
        transfers are interrupted instead of draining as orphans.
        Driver-side clients pass neither and are never fenced.

        ``scope`` labels the attempt with a tenant/job scope: a later
        :meth:`cancel_scope` reclaims and fences exactly the attempts
        bound under that label.  Binding into an already-cancelled scope
        fences the attempt immediately (a zombie activation of a
        cancelled job must not start fresh traffic).
        """
        self._bind_scope(attempt_id, scope)
        return RelayClient(self, connection_bandwidth, attempt_id, owner)

    def terminate(self) -> None:
        """Stop the relay and bill its VM's lifetime.

        Drops the resident partitions (the VM's memory is gone), aborts
        any in-flight reservations, and deregisters the relay id, so
        stale worker payloads resolve to
        :class:`~repro.cloud.vm.errors.UnknownRelay` instead of a dead
        relay and long-lived regions don't accumulate dead payloads.
        """
        resident = len(self._entries)
        self._publish_metrics()
        self.vm.terminate()
        for reservation in list(self._reservations):
            self._abort_push(reservation)
        # Rendezvous readers still parked on unpublished keys would wait
        # forever on a dead server; fail them with the same
        # infrastructure-level error every other operation on a dead
        # relay raises (not a data-level "key missing": the key may well
        # have been about to arrive).
        self._key_watchers.fail_all(
            lambda _key: VmNotRunning(self.vm.vm_id, self.vm.state)
        )
        self._entries.clear()
        self._content.clear()
        self._waiters.clear()
        self._pending_swaps.clear()
        self._attempt_consume_leases.clear()
        self._peak_epochs.clear()
        self.used_logical = 0.0
        self.service.relays.pop(self.relay_id, None)
        self.sim.timeline.record(
            self.sim.now, "relay", "terminate", relay=self.relay_id,
            type=self.vm.instance_type.name, resident_keys=resident,
        )

    def _publish_metrics(self) -> None:
        """Fold this relay's lifetime counters into the metrics registry.

        Called once at terminate (relay ids are unique per run, so
        counter increments never double-count); pure dict bookkeeping.
        """
        reg = metrics_registry()
        kind = self.vm.instance_type.name
        reg.counter(
            "repro_relay_bytes_in_total", "Logical bytes pushed to relays"
        ).inc(self.stats.bytes_in, type=kind)
        reg.counter(
            "repro_relay_bytes_out_total", "Logical bytes served by relays"
        ).inc(self.stats.bytes_out, type=kind)
        reg.counter(
            "repro_relay_backpressure_waits_total",
            "Pushes parked on relay admission",
        ).inc(self.stats.backpressure_waits, type=kind)
        reg.counter(
            "repro_relay_rendezvous_waits_total",
            "Pulls parked on unpublished keys",
        ).inc(self.stats.rendezvous_waits, type=kind)
        reg.counter(
            "repro_relay_lease_commits_total", "Consume leases finalized"
        ).inc(self.stats.lease_commits, type=kind)
        reg.gauge(
            "repro_relay_peak_fill_fraction", "Highest memory fill observed"
        ).max(self.peak_fill_fraction, type=kind)

    # ------------------------------------------------------------------
    # attempt-scoped cancellation
    # ------------------------------------------------------------------
    def cancel_attempt(self, attempt_id: str | None, fence: bool = True) -> float:
        """Reclaim a dead attempt's reservations; returns bytes reclaimed.

        Idempotent.  With ``fence`` (the default) the attempt id is also
        fenced: any later request it issues fails with
        :class:`~repro.cloud.vm.errors.RelayAttemptFenced`, so a zombie
        attempt that somehow keeps running cannot clobber the partitions
        of the attempt that replaced it.  Committed entries are *not*
        touched — data the attempt finished publishing stays valid (the
        exchange is idempotent by content).
        """
        if attempt_id is None:
            return 0.0
        if fence:
            self._fenced.add(attempt_id)
        reclaimed = 0.0
        for reservation in list(self._attempt_reservations.get(attempt_id, ())):
            reclaimed += self._abort_push(reservation)
        if reclaimed > 0:
            self.stats.reclaimed_bytes += reclaimed
        # Reinstate consume leases: the entries were never removed, so
        # "reinstatement" is simply forgetting the dead attempt's claim —
        # the retry will find every key resident.
        leases = self._attempt_consume_leases.pop(attempt_id, None)
        reinstated = len(leases) if leases else 0
        if reinstated:
            self.stats.lease_reinstatements += reinstated
        self.sim.tracer.attempt_event(
            attempt_id, "relay.attempt_cancelled",
            relay=self.relay_id, reclaimed=reclaimed,
            leases_reinstated=reinstated,
        )
        self.sim.timeline.record(
            self.sim.now, "relay", "cancel_attempt",
            relay=self.relay_id, attempt=attempt_id, reclaimed=reclaimed,
            leases_reinstated=reinstated,
        )
        return reclaimed

    def commit_attempt(self, attempt_id: str | None) -> int:
        """Finalize an attempt's consume leases; returns entries removed.

        Called by the FaaS platform when the activation's handler returns
        successfully — only then do destructive reads actually destroy.
        An entry leased by several attempts (speculation) is removed by
        the first committer; later commits of the same key are no-ops.
        """
        if attempt_id is None:
            return 0
        leases = self._attempt_consume_leases.pop(attempt_id, None)
        if not leases:
            return 0
        removed = 0
        for key in leases:
            if key in self._entries:
                removed += 1
            self._consume_entry(key)
        self.stats.lease_commits += removed
        self.sim.tracer.attempt_event(
            attempt_id, "relay.lease_commit",
            relay=self.relay_id, consumed=removed,
        )
        self.sim.timeline.record(
            self.sim.now, "relay", "commit_attempt",
            relay=self.relay_id, attempt=attempt_id, consumed=removed,
        )
        return removed

    # ------------------------------------------------------------------
    # scope-level (tenant/job) cancellation
    # ------------------------------------------------------------------
    def _bind_scope(self, attempt_id: str | None, scope: str | None) -> None:
        if attempt_id is None or scope is None:
            return
        self._attempt_scopes[attempt_id] = scope
        self._scope_attempts.setdefault(scope, set()).add(attempt_id)
        if scope in self._fenced_scopes:
            self._fenced.add(attempt_id)

    def cancel_scope(self, scope: str, fence: bool = True) -> float:
        """Reclaim and fence every attempt bound under ``scope``.

        The scope boundary is exact: only attempts that bound themselves
        with this scope label are touched, so one tenant's cancel storm
        can never reclaim another tenant's reservations or leases.  With
        ``fence`` the scope itself stays fenced — attempts that bind
        into it later are dead on arrival.
        """
        if fence:
            self._fenced_scopes.add(scope)
        reclaimed = 0.0
        for attempt_id in sorted(self._scope_attempts.get(scope, ())):
            reclaimed += self.cancel_attempt(attempt_id, fence=fence)
        self.sim.timeline.record(
            self.sim.now, "relay", "cancel_scope",
            relay=self.relay_id, scope=scope, reclaimed=reclaimed,
        )
        return reclaimed

    def scope_of(self, attempt_id: str | None) -> str | None:
        return self._attempt_scopes.get(attempt_id) if attempt_id else None

    def scope_fenced(self, scope: str) -> bool:
        """Whether ``scope`` has been persistently fenced on this relay."""
        return scope in self._fenced_scopes

    def is_fenced(self, attempt_id: str | None) -> bool:
        return attempt_id is not None and attempt_id in self._fenced

    def _check_fence(self, attempt_id: str | None) -> None:
        if self.is_fenced(attempt_id):
            self.stats.fenced_requests += 1
            raise RelayAttemptFenced(self.relay_id, t.cast(str, attempt_id))

    def residual_reservation_bytes(self, attempt_id: str | None = None) -> float:
        """Bytes still held by in-flight reservations (one attempt or all).

        Zero after a job has settled means no attempt leaked memory —
        the invariant every chaos test asserts.
        """
        if attempt_id is not None:
            reservations = self._attempt_reservations.get(attempt_id, set())
        else:
            reservations = self._reservations
        return sum(reservation.held_bytes for reservation in reservations)

    @property
    def entry_bytes(self) -> float:
        """Logical bytes of committed (resident) partitions."""
        return sum(entry.logical for entry in self._entries.values())

    def check_memory_accounting(self) -> None:
        """Assert reserved memory == resident entries + in-flight holds.

        Cheap enough for tests to call after every chaos run; a drift
        means a cancellation path leaked or double-released.
        """
        expected = self.entry_bytes + self.residual_reservation_bytes()
        if abs(self.used_logical - expected) > 1e-6:
            raise SimulationError(
                f"{self.relay_id}: memory accounting drifted — used "
                f"{self.used_logical:.0f} != entries {self.entry_bytes:.0f} "
                f"+ in-flight {self.residual_reservation_bytes():.0f}"
            )

    # ------------------------------------------------------------------
    # memory admission (backpressure) and the atomic-swap push protocol
    # ------------------------------------------------------------------
    def _begin_push(
        self, keys: list[str], resident_total: float, attempt: str | None
    ) -> _PushReservation:
        """Open a push: reserve ``resident_total`` minus the swap credit.

        The credit is the bytes of resident entries under ``keys``: they
        stay readable during the transfer and are exchanged atomically
        at commit, so only the *growth* needs admission.  A same-size
        re-push (the retried-mapper case) is admitted immediately even
        on a full relay.

        Re-checks the fence: an attempt cancelled while this push was
        still parked upstream (token bucket, request latency) has no
        reservation yet for :meth:`cancel_attempt` to abort, so the
        fence must stop it here, before it takes custody of memory.
        """
        self._check_fence(attempt)
        credit = sum(
            entry.logical
            for key in dict.fromkeys(keys)
            if (entry := self._entries.get(key)) is not None
        )
        extra = max(0.0, resident_total - credit)
        event = SimEvent(self.sim, name=f"{self.relay_id}.admit({extra:g}B)")
        reservation = _PushReservation(keys, resident_total, extra, attempt, event)
        self._reservations.add(reservation)
        if attempt is not None:
            self._attempt_reservations.setdefault(attempt, set()).add(reservation)
        for key in keys:
            self._pending_swaps[key] = reservation
        if not self._waiters and self.used_logical + extra <= self.capacity_bytes:
            self._reserve(extra)
            reservation.state = _RESERVED
            event.succeed()
        else:
            self.stats.backpressure_waits += 1
            self.sim.tracer.attempt_event(
                attempt, "relay.backpressure_stall",
                relay=self.relay_id, bytes=extra,
                fill=round(self.fill_fraction, 4),
            )
            self._waiters.append(reservation)
        return reservation

    def _content_drop(self, entry: _Entry) -> None:
        if entry.sha is None:
            return
        remaining = self._content[entry.sha] - 1
        if remaining > 0:
            self._content[entry.sha] = remaining
        else:
            del self._content[entry.sha]

    def content_resident(self, sha: str) -> bool:
        """Whether any resident entry holds bytes with this address."""
        return self._content.get(sha, 0) > 0

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        """Dedup-eligible committed pushes whose key starts with ``prefix``."""
        return [entry for entry in self.cas_log if entry[0].startswith(prefix)]

    def _commit_push(
        self,
        reservation: _PushReservation,
        items: t.Sequence[tuple[str, bytes]],
        logicals: t.Sequence[float],
        shas: t.Sequence[str | None] | None = None,
    ) -> None:
        """Atomically swap the pushed entries in and settle the books.

        Runs synchronously (no yields) after the transfer completed:
        readers observe either every old value or every new one, never a
        gap.  The settlement ``delta`` reconciles what this reservation
        holds (``extra`` + ``absorbed``) plus the entries it pops against
        what the new entries need; concurrent same-key swaps (a fenced
        race that slipped through) self-correct here because popped
        entries are credited at their *actual* size.
        """
        if reservation.state != _RESERVED:
            # Cancelled while the transfer drained (direct cancel_attempt
            # without a process interrupt): the memory is already
            # reclaimed, the data must not land.
            raise RelayAttemptFenced(self.relay_id, reservation.attempt or "?")
        if shas is None:
            shas = [None] * len(items)
        resident: dict[str, tuple[bytes, float, str | None]] = {}
        for (key, data), logical, sha in zip(items, logicals, shas):
            resident[key] = (data, logical, sha)  # duplicate keys: last wins
        actual_old = 0.0
        for key in resident:
            previous = self._entries.pop(key, None)
            if previous is not None:
                actual_old += previous.logical
                self._content_drop(previous)
        for key, (data, logical, sha) in resident.items():
            self._entries[key] = _Entry(bytes(data), logical, sha)
            if sha is not None:
                self._content[sha] += 1
                self.cas_log.append((key, sha, logical))
        reservation.state = _COMMITTED
        resident_total = sum(logical for _data, logical, _sha in resident.values())
        delta = reservation.extra + reservation.absorbed + actual_old - resident_total
        self._unregister(reservation)
        self.stats.pushes += len(items)
        self.stats.bytes_in += sum(logicals)
        if delta > 0:
            self._release(delta)
        elif delta < 0:
            self._reserve(-delta)
        for key in resident:
            self._notify_key(key)

    # ------------------------------------------------------------------
    # rendezvous (blocking pulls for the streaming exchange)
    # ------------------------------------------------------------------
    def _watch_key(self, key: str) -> SimEvent:
        """An event that succeeds the next time ``key`` commits."""
        return self._key_watchers.watch(key)

    def _unwatch_key(self, key: str, event: SimEvent) -> None:
        self._key_watchers.unwatch(key, event)

    def _notify_key(self, key: str) -> None:
        self._key_watchers.notify(key)

    def _abort_push(self, reservation: _PushReservation) -> float:
        """Reclaim an uncommitted push; returns the bytes released.

        Idempotent; safe from both the op process's own unwind (it was
        interrupted) and :meth:`cancel_attempt` (the process may already
        be gone).  A still-queued admission is failed so a pusher that
        was *not* interrupted unwinds instead of waiting forever.
        """
        if reservation.state in (_COMMITTED, _ABORTED):
            return 0.0
        was_waiting = reservation.state == _WAITING
        reclaimed = reservation.held_bytes
        reservation.state = _ABORTED
        if reservation.transfer_event is not None:
            transfer = reservation.transfer_event
            reservation.transfer_event = None
            self.link.abort(transfer)
            if not transfer.triggered:
                # A pusher that was not interrupted (direct cancel_attempt)
                # is still waiting on this flow: fail it so the op unwinds
                # instead of waiting forever on an aborted transfer.
                transfer.fail(
                    RelayAttemptFenced(self.relay_id, reservation.attempt or "?")
                )
        if was_waiting and not reservation.admission_event.triggered:
            reservation.admission_event.fail(
                RelayAttemptFenced(self.relay_id, reservation.attempt or "?")
            )
        self._unregister(reservation)
        self.stats.cancelled_transfers += 1
        if reclaimed > 0:
            self._release(reclaimed)
        elif was_waiting:
            # Nothing to release, but the head of the admission queue
            # may be this reservation: let followers move up.
            self._drain_waiters()
        return reclaimed

    def _unregister(self, reservation: _PushReservation) -> None:
        self._reservations.discard(reservation)
        if reservation.attempt is not None:
            attempt_set = self._attempt_reservations.get(reservation.attempt)
            if attempt_set is not None:
                attempt_set.discard(reservation)
                if not attempt_set:
                    del self._attempt_reservations[reservation.attempt]
        for key in reservation.keys:
            if self._pending_swaps.get(key) is reservation:
                del self._pending_swaps[key]

    def _reserve(self, logical: float) -> None:
        self.used_logical += logical
        self.peak_used_logical = max(self.peak_used_logical, self.used_logical)
        if self._peak_epochs:
            for token, peak in self._peak_epochs.items():
                if self.used_logical > peak:
                    self._peak_epochs[token] = self.used_logical

    def _release(self, logical: float) -> None:
        self.used_logical -= logical
        self._drain_waiters()

    def _drain_waiters(self) -> None:
        while self._waiters:
            head = self._waiters[0]
            if head.state == _ABORTED:
                self._waiters.popleft()
                continue
            if self.used_logical + head.extra > self.capacity_bytes:
                break
            self._waiters.popleft()
            self._reserve(head.extra)
            head.state = _RESERVED
            head.admission_event.succeed()

    # ------------------------------------------------------------------
    # bookkeeping (synchronous; the client pays latency/bandwidth)
    # ------------------------------------------------------------------
    def _entry_removed(self, key: str, logical: float) -> float:
        """Bytes to release for a consumed/deleted entry.

        If a replacing push is in flight for ``key``, the bytes are
        absorbed into its reservation instead (the incoming payload
        needs them anyway) — released only if that push later aborts.
        """
        swap = self._pending_swaps.get(key)
        if swap is not None and swap.state in (_WAITING, _RESERVED):
            swap.absorbed += logical
            return 0.0
        return logical

    def _lookup(self, key: str) -> _Entry:
        """Resolve ``key`` or raise, counting the miss.  No pull stats:
        those are recorded only once the transfer actually happened."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            raise RelayKeyMissing(key)
        return entry

    def _record_pulls(self, count: int, logical: float) -> None:
        self.stats.pulls += count
        self.stats.bytes_out += logical

    def _consume_entry(self, key: str) -> None:
        removed = self._entries.pop(key, None)
        if removed is not None:
            self._content_drop(removed)
            release = self._entry_removed(key, removed.logical)
            if release > 0:
                self._release(release)

    def _consume_or_lease(self, key: str, attempt_id: str | None) -> None:
        """Destructive-read entry point for the pull paths.

        Driver-side clients (no attempt id) consume immediately — there
        is no retry to protect.  Worker attempts get a *lease* instead:
        the entry stays resident and pullable until the attempt commits
        (:meth:`commit_attempt`), so a crash or fence mid-consume
        reinstates it for the retry by simply dropping the lease.
        """
        if attempt_id is None:
            self._consume_entry(key)
            return
        leases = self._attempt_consume_leases.setdefault(attempt_id, set())
        if key not in leases:
            leases.add(key)
            self.stats.consume_leases += 1

    def _remove(self, key: str) -> bool:
        entry = self._entries.pop(key, None)
        self.stats.deletes += 1
        if entry is None:
            return False
        self._content_drop(entry)
        release = self._entry_removed(key, entry.logical)
        if release > 0:
            self._release(release)
        return True

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return len(self._entries)

    def logical_size_of(self, key: str) -> float | None:
        """Logical bytes of the resident entry under ``key`` (or None).

        A cheap metadata peek for planners and the fleet client's
        bandwidth weighting; does not count as a pull or a miss.
        """
        entry = self._entries.get(key)
        return entry.logical if entry is not None else None

    @property
    def fill_fraction(self) -> float:
        """Reserved capacity as a fraction of usable memory (0..1)."""
        return self.used_logical / self.capacity_bytes

    @property
    def peak_fill_fraction(self) -> float:
        return self.peak_used_logical / self.capacity_bytes

    def reset_peak(self) -> None:
        """Restart peak tracking from the current fill (per-run peaks).

        Relay-global — a single-job convenience.  Concurrent jobs on a
        shared relay must use the epoch API below instead, or one job's
        reset clobbers another's high watermark.
        """
        self.peak_used_logical = self.used_logical

    # ------------------------------------------------------------------
    # epoch-scoped peak tracking (concurrent jobs on a shared relay)
    # ------------------------------------------------------------------
    def begin_peak_epoch(self) -> int:
        """Open a peak-tracking epoch; returns an opaque token.

        Each open epoch tracks its own ``max(used_logical)`` from this
        moment, so any number of concurrent jobs can measure their own
        peaks without resetting each other.
        """
        self._peak_epoch_seq += 1
        token = self._peak_epoch_seq
        self._peak_epochs[token] = self.used_logical
        return token

    def peak_fill_since(self, token: int) -> float:
        """Peak fill fraction observed since ``begin_peak_epoch(token)``."""
        try:
            peak = self._peak_epochs[token]
        except KeyError:
            raise SimulationError(
                f"{self.relay_id}: unknown or closed peak epoch {token}"
            ) from None
        return peak / self.capacity_bytes

    def end_peak_epoch(self, token: int) -> float:
        """Close an epoch; returns its final peak fill fraction."""
        peak = self.peak_fill_since(token)
        del self._peak_epochs[token]
        return peak

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionRelay {self.relay_id} {self.vm.instance_type.name} "
            f"{self.state} keys={self.key_count} fill={self.fill_fraction:.1%}>"
        )


class RelayClient:
    """Request interface to one relay; all methods return SimEvents.

    ``connection_bandwidth`` caps this client's transfer rate (the
    caller's NIC); ``None`` means only the relay's own NIC bounds it.
    Batched MPUSH/MPULL pay *one* request latency for the whole batch —
    there is a single server, so pipelining is even cheaper than the
    cache's one-latency-per-node-touched.

    A worker-side client is bound to its activation: requests are tagged
    with ``attempt_id`` (reservations become reclaimable, fenced
    attempts are rejected) and request processes register with ``owner``
    so the platform's kill interrupts them mid-flight.  Every operation
    body cleans up after an interrupt — queued tokens are withdrawn,
    in-flight flows aborted, reservations released — so a killed attempt
    leaves the relay exactly as if its request had never arrived.
    """

    def __init__(
        self,
        relay: PartitionRelay,
        connection_bandwidth: float | None,
        attempt_id: str | None = None,
        owner=None,
    ):
        self.relay = relay
        self.sim = relay.sim
        self.connection_bandwidth = connection_bandwidth
        self.attempt_id = attempt_id
        self.owner = owner
        self._profile = relay.service.profile
        self._scale = relay.service.logical_scale

    # ------------------------------------------------------------------
    # single-key operations
    # ------------------------------------------------------------------
    def push(self, key: str, data: bytes, logical_size: float | None = None) -> SimEvent:
        """Store ``key``; event → ``None``.  Waits under backpressure."""
        span = self._span()
        if span.recording:
            span.event("relay.push", relay=self.relay.relay_id, key=key)
        sizes = None if logical_size is None else [logical_size]
        return self._spawn(
            self._store_op([(key, data)], sizes, batched=False), f"push:{key}"
        )

    def pull(self, key: str, consume: bool = False) -> SimEvent:
        """Fetch ``key``; event → ``bytes``.  ``consume`` frees its memory."""
        span = self._span()
        if span.recording:
            span.event(
                "relay.pull", relay=self.relay.relay_id, key=key, consume=consume
            )
        return self._spawn(self._pull_op(key, consume), f"pull:{key}")

    def pull_wait(self, key: str) -> SimEvent:
        """Fetch ``key``, *waiting* until it is published; event → ``bytes``.

        The relay's natural rendezvous semantics: where :meth:`pull`
        fails an absent key with
        :class:`~repro.cloud.vm.errors.RelayKeyMissing`, this parks the
        reader on the key's commit notification — the primitive the
        streaming shuffle's reducers use to consume partitions while
        mappers are still producing.  Never consumes (a rendezvous read
        must stay idempotent under crash-retry and speculation).
        """
        span = self._span()
        if span.recording:
            span.event("relay.pull_wait", relay=self.relay.relay_id, key=key)
        return self._spawn(self._pull_wait_op(key), f"pull_wait:{key}")

    def delete(self, key: str) -> SimEvent:
        """Remove ``key``; event → whether it existed."""
        return self._spawn(self._delete_op(key), f"delete:{key}")

    # ------------------------------------------------------------------
    # batched (pipelined) operations
    # ------------------------------------------------------------------
    def mpush(
        self,
        items: t.Sequence[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None = None,
    ) -> SimEvent:
        """Store many keys over one connection; event → ``None``."""
        span = self._span()
        if span.recording:
            span.event(
                "relay.mpush", relay=self.relay.relay_id, keys=len(items)
            )
        return self._spawn(
            self._store_op(list(items), logical_sizes, batched=True), "mpush"
        )

    def mpull(self, keys: t.Sequence[str], consume: bool = False) -> SimEvent:
        """Fetch many keys over one connection; event → payload list.

        Payloads come back in input-key order.  Fails with
        :class:`~repro.cloud.vm.errors.RelayKeyMissing` naming the first
        absent key — before anything is consumed, so a failed batch
        neither loses data nor leaks reserved memory.
        """
        span = self._span()
        if span.recording:
            span.event(
                "relay.mpull",
                relay=self.relay.relay_id, keys=len(keys), consume=consume,
            )
        return self._spawn(self._mpull_op(list(keys), consume), "mpull")

    def mdelete(self, keys: t.Sequence[str]) -> SimEvent:
        """Remove many keys over one connection; event → count removed."""
        return self._spawn(self._mdelete_op(list(keys)), "mdelete")

    def _span(self):
        """The owning attempt's span (noop for driver-side clients).

        ``owner`` only promises ``track()``; spanless owners (bare
        process trackers) fall back to the no-op span.
        """
        span = getattr(self.owner, "span", None)
        if span is not None:
            return span
        return NOOP_SPAN

    def _spawn(self, generator: t.Generator, label: str) -> SimEvent:
        process = self.sim.process(
            generator, name=f"{self.relay.relay_id}.{label}"
        )
        if self.owner is not None:
            self.owner.track(process)
        return process.completion

    # ------------------------------------------------------------------
    # operation bodies
    # ------------------------------------------------------------------
    def _logical(self, data: bytes, logical_size: float | None) -> float:
        if logical_size is not None:
            return logical_size
        return len(data) * self._scale

    def _latency(self) -> float:
        return self._profile.relay_request_latency.sample(self.relay._rng)

    def _consume_ops(self, amount: float) -> t.Generator:
        """Take ``amount`` rate-limit tokens, in bucket-sized chunks.

        Withdraws the pending request from the bucket if the op is
        interrupted mid-wait, so a dead attempt neither burns tokens nor
        stalls the FIFO behind a ghost.
        """
        remaining = amount
        while remaining > 0:
            take = min(remaining, self.relay.ops.capacity)
            pending = self.relay.ops.consume(take)
            try:
                yield pending
            except BaseException:
                self.relay.ops.cancel(pending)
                raise
            remaining -= take

    def _flow_cap(self) -> float | None:
        return self.connection_bandwidth

    def _transfer(self, logical: float) -> SimEvent:
        return self.relay.link.transfer(logical, self._flow_cap())

    def _store_op(
        self,
        items: list[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None,
        batched: bool,
    ) -> t.Generator:
        """Shared body of PUSH and MPUSH: admit → transfer → atomic swap.

        The batch is admitted as a whole (two concurrent MPUSHes that
        reserved item-by-item could each hold half their batch and
        deadlock waiting for the other), with resident entries under the
        same keys counted as credit — they stay pullable during the
        transfer and are swapped out atomically at commit.  The price of
        whole-batch admission is that a batch larger than usable memory
        is a hard RelayCapacityExceeded even when its items would fit
        one at a time — push those individually instead.  A rejected or
        cancelled (M)PUSH is side-effect-free: previous values survive
        untouched.
        """
        self.relay.ensure_running()
        self.relay._check_fence(self.attempt_id)
        if not items:
            return None
        if logical_sizes is not None and len(logical_sizes) != len(items):
            raise SimulationError(
                f"{'mpush' if batched else 'push'}: logical_sizes length "
                "does not match items"
            )
        reservation: _PushReservation | None = None
        transfer: SimEvent | None = None
        try:
            yield from self._consume_ops(float(len(items)))
            yield self.sim.timeout(self._latency())
            logicals = [
                logical_sizes[index]
                if logical_sizes is not None
                else self._logical(data, None)
                for index, (_key, data) in enumerate(items)
            ]
            resident_total = sum(
                {key: logical for (key, _d), logical in zip(items, logicals)}.values()
            )
            if resident_total > self.relay.capacity_bytes:
                raise RelayCapacityExceeded(
                    self.relay.relay_id, resident_total, self.relay.capacity_bytes
                )
            reservation = self.relay._begin_push(
                [key for key, _data in items], resident_total, self.attempt_id
            )
            yield reservation.admission_event
            # Content dedup (wire only): items whose bytes the rendezvous
            # already holds ride as content-key references; reservation
            # and commit byte math stay exact either way.
            cas = cas_enabled()
            shas: list[str | None] = [
                sha256_hex(data) if cas and data else None for _key, data in items
            ]
            referenced = [
                index
                for index, sha in enumerate(shas)
                if sha is not None and self.relay.content_resident(sha)
            ]
            skipped = sum(logicals[index] for index in referenced)
            total = sum(logicals)
            if total - skipped > 0:
                transfer = self._transfer(total - skipped)
                reservation.transfer_event = transfer
                yield transfer
                reservation.transfer_event = None
                transfer = None
            if referenced:
                # Referents may have been consumed while the rest of the
                # batch drained — re-send those payloads transparently.
                saved = 0.0
                missing = 0.0
                hits = 0
                for index in referenced:
                    if self.relay.content_resident(t.cast(str, shas[index])):
                        saved += logicals[index]
                        hits += 1
                    else:
                        missing += logicals[index]
                if missing > 0:
                    transfer = self._transfer(missing)
                    reservation.transfer_event = transfer
                    yield transfer
                    reservation.transfer_event = None
                    transfer = None
                if hits:
                    self.relay.stats.dedup_hits += hits
                    self.relay.stats.dedup_bytes += saved
                    metrics_registry().counter(
                        "repro_dedup_bytes_total",
                        "Wire bytes saved by content-addressed dedup",
                    ).inc(saved, substrate="relay")
            self.relay._commit_push(reservation, items, logicals, shas)
            reservation = None
            if batched:
                self.sim.timeline.record(
                    self.sim.now, "relay", "mpush",
                    relay=self.relay.relay_id, keys=len(items), logical=total,
                )
            return None
        except BaseException:
            if transfer is not None:
                self.relay.link.abort(transfer)
            if reservation is not None:
                self.relay._abort_push(reservation)
            raise

    def _pull_op(self, key: str, consume: bool) -> t.Generator:
        self.relay.ensure_running()
        self.relay._check_fence(self.attempt_id)
        transfer: SimEvent | None = None
        try:
            yield from self._consume_ops(1.0)
            yield self.sim.timeout(self._latency())
            # Fence re-check: the attempt may have been cancelled while
            # this request was parked upstream; a consuming pull from a
            # zombie must not destroy the winner's partition.
            self.relay._check_fence(self.attempt_id)
            entry = self.relay._lookup(key)
            if entry.logical > 0:
                transfer = self._transfer(entry.logical)
                yield transfer
                transfer = None
            self.relay._record_pulls(1, entry.logical)
            if consume:
                self.relay._consume_or_lease(key, self.attempt_id)
            return entry.data
        except BaseException:
            if transfer is not None:
                self.relay.link.abort(transfer)
            raise

    def _pull_wait_op(self, key: str) -> t.Generator:
        self.relay.ensure_running()
        self.relay._check_fence(self.attempt_id)
        transfer: SimEvent | None = None
        try:
            yield from self._consume_ops(1.0)
            yield self.sim.timeout(self._latency())
            self.relay._check_fence(self.attempt_id)
            waited = False
            while True:
                entry = self.relay._entries.get(key)
                if entry is not None:
                    break
                if not waited:
                    waited = True
                    self.relay.stats.rendezvous_waits += 1
                    self.sim.tracer.attempt_event(
                        self.attempt_id, "relay.rendezvous_wait",
                        relay=self.relay.relay_id, key=key,
                    )
                watcher = self.relay._watch_key(key)
                try:
                    yield watcher
                except BaseException:
                    self.relay._unwatch_key(key, watcher)
                    raise
                # The attempt may have been fenced while parked; a zombie
                # must not read (and bill transfer time for) the winner's
                # data.
                self.relay._check_fence(self.attempt_id)
            if entry.logical > 0:
                transfer = self._transfer(entry.logical)
                yield transfer
                transfer = None
            self.relay._record_pulls(1, entry.logical)
            return entry.data
        except BaseException:
            if transfer is not None:
                self.relay.link.abort(transfer)
            raise

    def _delete_op(self, key: str) -> t.Generator:
        self.relay.ensure_running()
        self.relay._check_fence(self.attempt_id)
        yield from self._consume_ops(1.0)
        yield self.sim.timeout(self._latency())
        self.relay._check_fence(self.attempt_id)  # zombies must not delete
        return self.relay._remove(key)

    def _mpull_op(self, keys: list[str], consume: bool) -> t.Generator:
        self.relay.ensure_running()
        self.relay._check_fence(self.attempt_id)
        if not keys:
            return []
        transfer: SimEvent | None = None
        try:
            yield from self._consume_ops(float(len(keys)))
            yield self.sim.timeout(self._latency())
            self.relay._check_fence(self.attempt_id)  # see _pull_op
            # Non-destructive lookups first: a missing key mid-batch must
            # fail the whole MPULL without having consumed (or counted as
            # served, or leaked the reservation of) the keys before it.
            entries = [self.relay._lookup(key) for key in keys]
            total = sum(entry.logical for entry in entries)
            if total > 0:
                transfer = self._transfer(total)
                yield transfer
                transfer = None
            # bytes_out counts logical bytes *served* (duplicate keys in the
            # batch transfer — and count — once per occurrence).
            self.relay._record_pulls(len(keys), total)
            if consume:
                for key in keys:  # duplicates in the batch lease/pop once
                    self.relay._consume_or_lease(key, self.attempt_id)
            self.sim.timeline.record(
                self.sim.now, "relay", "mpull",
                relay=self.relay.relay_id, keys=len(keys), logical=total,
            )
            return [entry.data for entry in entries]
        except BaseException:
            if transfer is not None:
                self.relay.link.abort(transfer)
            raise

    def _mdelete_op(self, keys: list[str]) -> t.Generator:
        self.relay.ensure_running()
        self.relay._check_fence(self.attempt_id)
        if not keys:
            return 0
        yield from self._consume_ops(float(len(keys)))
        yield self.sim.timeout(self._latency())
        self.relay._check_fence(self.attempt_id)  # zombies must not delete
        removed = sum(1 for key in keys if self.relay._remove(key))
        self.sim.timeline.record(
            self.sim.now, "relay", "mdelete",
            relay=self.relay.relay_id, keys=len(keys), removed=removed,
        )
        return removed


# ----------------------------------------------------------------------
# lifecycle helpers
# ----------------------------------------------------------------------
def provision_relay(vms: VmService, type_name: str) -> SimEvent:
    """Provision a relay VM on the clock; event → running :class:`PartitionRelay`.

    Pays the full VM boot latency before the relay accepts traffic —
    the Table 1 provisioning penalty of anything VM-backed.
    """
    return vms.sim.process(
        _provision(vms, type_name), name=f"{vms.name}.relay.provision"
    ).completion


def _provision(vms: VmService, type_name: str) -> t.Generator:
    vm = yield vms.provision(type_name)
    relay = PartitionRelay(vms, vm)
    vms.sim.timeline.record(
        vms.sim.now, "relay", "provision", relay=relay.relay_id, type=type_name,
    )
    return relay


def relay_ready(vms: VmService, type_name: str) -> PartitionRelay:
    """A relay that is already running (pre-provisioned, warm mode).

    Billing still starts now: the VM accrues instance-seconds from this
    call until :meth:`PartitionRelay.terminate`.
    """
    vm = vms.provision_ready(type_name)
    relay = PartitionRelay(vms, vm)
    vms.sim.timeline.record(
        vms.sim.now, "relay", "provision", relay=relay.relay_id, type=type_name,
        warm=True,
    )
    return relay
