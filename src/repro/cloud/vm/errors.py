"""VM service error types."""

from __future__ import annotations

from repro.errors import VmError


class UnknownInstanceType(VmError):
    """Requested instance type is not in the catalog."""

    def __init__(self, type_name: str, available: list[str]):
        super().__init__(
            f"unknown instance type {type_name!r}; available: {sorted(available)}"
        )
        self.type_name = type_name


class VmNotRunning(VmError):
    """An operation required a running VM."""

    def __init__(self, vm_id: str, state: str):
        super().__init__(f"VM {vm_id} is {state}, not running")
        self.vm_id = vm_id
        self.state = state


class VmAlreadyTerminated(VmError):
    """Terminate was called twice."""

    def __init__(self, vm_id: str):
        super().__init__(f"VM {vm_id} already terminated")
        self.vm_id = vm_id


class UnknownRelay(VmError):
    """A worker referenced a relay id the region has never provisioned."""

    def __init__(self, relay_id: str):
        super().__init__(f"unknown partition relay: {relay_id!r}")
        self.relay_id = relay_id


class RelayKeyMissing(VmError):
    """A PULL asked for a partition that was never pushed (or consumed)."""

    def __init__(self, key: str):
        super().__init__(f"relay has no partition {key!r}")
        self.key = key


class RelayAttemptFenced(VmError):
    """A request arrived from an activation attempt that was cancelled.

    Once :meth:`~repro.cloud.vm.relay.PartitionRelay.cancel_attempt`
    has reclaimed an attempt's resources, the attempt id is *fenced*:
    any straggling request it issues afterwards (the zombie side of a
    speculative race, or an orphaned retry predecessor) is rejected so
    it can never clobber the winning attempt's partitions.
    """

    def __init__(self, relay_id: str, attempt_id: str):
        super().__init__(
            f"relay {relay_id}: attempt {attempt_id!r} was cancelled and is "
            "fenced out"
        )
        self.relay_id = relay_id
        self.attempt_id = attempt_id


class RelayCapacityExceeded(VmError):
    """One partition alone is larger than the relay VM's usable memory.

    Oversubscription by *many* partitions is handled with backpressure
    (pushes wait for readers to consume); a single value that can never
    fit is a hard error.
    """

    def __init__(self, relay_id: str, logical: float, capacity: float):
        super().__init__(
            f"relay {relay_id}: payload of {logical:.0f} logical bytes "
            f"can never fit usable memory ({capacity:.0f} bytes)"
        )
        self.relay_id = relay_id
        self.logical = logical
        self.capacity = capacity
