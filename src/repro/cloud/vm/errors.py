"""VM service error types."""

from __future__ import annotations

from repro.errors import VmError


class UnknownInstanceType(VmError):
    """Requested instance type is not in the catalog."""

    def __init__(self, type_name: str, available: list[str]):
        super().__init__(
            f"unknown instance type {type_name!r}; available: {sorted(available)}"
        )
        self.type_name = type_name


class VmNotRunning(VmError):
    """An operation required a running VM."""

    def __init__(self, vm_id: str, state: str):
        super().__init__(f"VM {vm_id} is {state}, not running")
        self.vm_id = vm_id
        self.state = state


class VmAlreadyTerminated(VmError):
    """Terminate was called twice."""

    def __init__(self, vm_id: str):
        super().__init__(f"VM {vm_id} already terminated")
        self.vm_id = vm_id
