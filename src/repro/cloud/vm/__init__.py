"""Simulated virtual server instances (IBM VPC VSI-like)."""

from repro.cloud.vm.errors import (
    RelayAttemptFenced,
    RelayCapacityExceeded,
    RelayKeyMissing,
    UnknownInstanceType,
    UnknownRelay,
    VmAlreadyTerminated,
    VmNotRunning,
)
from repro.cloud.vm.fleet import (
    RelayFleet,
    RelayFleetClient,
    fleet_ready,
    provision_fleet,
)
from repro.cloud.vm.instance import VirtualMachine, VmContext, VmService, VmTask
from repro.cloud.vm.relay import (
    PartitionRelay,
    RelayClient,
    RelayStats,
    provision_relay,
    relay_ready,
)

__all__ = [
    "PartitionRelay",
    "RelayFleet",
    "RelayFleetClient",
    "fleet_ready",
    "provision_fleet",
    "RelayAttemptFenced",
    "RelayCapacityExceeded",
    "RelayClient",
    "RelayKeyMissing",
    "RelayStats",
    "UnknownInstanceType",
    "UnknownRelay",
    "VirtualMachine",
    "VmAlreadyTerminated",
    "VmContext",
    "VmNotRunning",
    "VmService",
    "VmTask",
    "provision_relay",
    "relay_ready",
]
