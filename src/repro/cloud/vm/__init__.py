"""Simulated virtual server instances (IBM VPC VSI-like)."""

from repro.cloud.vm.errors import UnknownInstanceType, VmAlreadyTerminated, VmNotRunning
from repro.cloud.vm.instance import VirtualMachine, VmContext, VmService, VmTask

__all__ = [
    "UnknownInstanceType",
    "VirtualMachine",
    "VmAlreadyTerminated",
    "VmContext",
    "VmNotRunning",
    "VmService",
    "VmTask",
]
