"""Simulated virtual server instances (IBM VPC VSI-like).

The VM model captures what the paper's hybrid pipeline pays for:

* **provisioning latency** — `provision()` takes tens of seconds before
  the instance accepts work (the dominant penalty in Table 1);
* **bounded parallelism** — tasks contend for the instance's vCPUs;
* **bounded network** — concurrent storage connections are capped so the
  instance NIC cannot exceed its line rate;
* **per-second billing** — instance + boot volume, from provision call
  to terminate, with a minimum billed duration.

Tasks are generator functions receiving a :class:`VmContext`.
"""

from __future__ import annotations

import itertools
import typing as t

from repro.cloud.billing import CostMeter
from repro.cloud.objectstore.service import ObjectStore
from repro.cloud.profiles import InstanceType, VmProfile
from repro.cloud.retry import RetryPolicy
from repro.cloud.storageview import BoundStorage
from repro.cloud.vm.errors import (
    UnknownInstanceType,
    UnknownRelay,
    VmAlreadyTerminated,
    VmNotRunning,
)
from repro.sim import Resource, SimEvent, Simulator

#: Task signature: generator function taking a VmContext.
VmTask = t.Callable[["VmContext"], t.Generator]


class VmContext:
    """What a task running on a VM may touch."""

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.sim: Simulator = vm.sim
        #: Storage client whose connections are individually capped by the
        #: store and collectively capped by the VM NIC (see ``io_slot``);
        #: retries transient 5xx-style failures like a real SDK.
        self.storage = BoundStorage(
            vm.store,
            vm.store.profile.per_connection_bandwidth,
            retry=RetryPolicy(),
            name=f"{vm.vm_id}.storage",
        )
        self.logical_scale = vm.logical_scale

    # -- compute -------------------------------------------------------
    def compute(self, cpu_seconds: float) -> SimEvent:
        """Run ``cpu_seconds`` of single-core work on one vCPU.

        The caller's process waits for a free vCPU, then for the work.
        Returned event triggers when the work is done and the vCPU freed.
        """
        return self.sim.process(
            self._compute_task(cpu_seconds), name=f"{self.vm.vm_id}.compute"
        ).completion

    def _compute_task(self, cpu_seconds: float) -> t.Generator:
        self.vm.ensure_running()
        yield self.vm.cpu.acquire()
        try:
            speed = self.vm.service.profile.relative_core_speed
            yield self.sim.timeout(max(0.0, cpu_seconds) / speed)
        finally:
            self.vm.cpu.release()

    def compute_bytes(self, real_bytes: float, throughput_bps: float) -> SimEvent:
        """Charge one-core CPU for ``real_bytes`` of real data (scaled)."""
        cpu_seconds = (real_bytes * self.logical_scale) / throughput_bps
        return self.compute(cpu_seconds)

    # -- network -------------------------------------------------------
    def io_slot(self) -> Resource:
        """Semaphore capping concurrent storage connections (NIC model)."""
        return self.vm.io_slots

    def parallel_get(self, pairs: list[tuple[str, str]]) -> SimEvent:
        """Fetch many objects concurrently, respecting the NIC cap.

        ``pairs`` is a list of ``(bucket, key)``.  The event succeeds with
        the list of payloads in input order.
        """
        return self.sim.process(
            self._parallel_io(
                [("get", bucket, key, None) for bucket, key in pairs]
            ),
            name=f"{self.vm.vm_id}.parallel_get",
        ).completion

    def parallel_put(self, triples: list[tuple[str, str, bytes]]) -> SimEvent:
        """Store many objects concurrently, respecting the NIC cap."""
        return self.sim.process(
            self._parallel_io(
                [("put", bucket, key, data) for bucket, key, data in triples]
            ),
            name=f"{self.vm.vm_id}.parallel_put",
        ).completion

    def _parallel_io(self, ops: list[tuple]) -> t.Generator:
        self.vm.ensure_running()
        results: list[object] = [None] * len(ops)

        def one(index: int, op: tuple) -> t.Generator:
            yield self.vm.io_slots.acquire()
            try:
                kind, bucket, key, data = op
                if kind == "get":
                    results[index] = yield self.storage.get(bucket, key)
                else:
                    results[index] = yield self.storage.put(bucket, key, data)
            finally:
                self.vm.io_slots.release()

        processes = [
            self.sim.process(one(index, op), name=f"{self.vm.vm_id}.io{index}")
            for index, op in enumerate(ops)
        ]
        yield self.sim.all_of([process.completion for process in processes])
        return results

    def sleep(self, seconds: float) -> SimEvent:
        return self.sim.timeout(seconds)

    def kv(self, cluster_id: str):
        """Cache client for ``cluster_id`` (VM NIC modeled by node links).

        Raises :class:`~repro.errors.VmError` when the region has no
        cache service attached.
        """
        if self.vm.service.memstore is None:
            from repro.errors import VmError

            raise VmError("this region has no memstore service attached")
        cluster = self.vm.service.memstore.cluster(cluster_id)
        return cluster.client(
            connection_bandwidth=self.vm.instance_type.nic_bandwidth
        )

    def relay(self, relay_id: str):
        """Partition-relay client for ``relay_id`` (NIC-capped)."""
        relay = self.vm.service.relay(relay_id)
        return relay.client(
            connection_bandwidth=self.vm.instance_type.nic_bandwidth
        )


class VirtualMachine:
    """One provisioned instance."""

    def __init__(
        self,
        service: "VmService",
        vm_id: str,
        instance_type: InstanceType,
    ):
        self.service = service
        self.sim = service.sim
        self.store = service.store
        self.logical_scale = service.logical_scale
        self.vm_id = vm_id
        self.instance_type = instance_type
        self.state = "booting"
        self.provisioned_at = self.sim.now
        self.ready_at: float | None = None
        self.terminated_at: float | None = None
        self.cpu = Resource(
            self.sim, capacity=instance_type.vcpus, name=f"{vm_id}.cpu"
        )
        # NIC model: concurrent storage connections at the store's
        # per-connection speed cannot exceed the NIC line rate.
        per_connection = service.store.profile.per_connection_bandwidth
        max_connections = max(1, int(instance_type.nic_bandwidth // per_connection))
        self.io_slots = Resource(
            self.sim, capacity=max_connections, name=f"{vm_id}.io"
        )

    # ------------------------------------------------------------------
    def ensure_running(self) -> None:
        if self.state != "running":
            raise VmNotRunning(self.vm_id, self.state)

    def run(self, task: VmTask, name: str = "task") -> SimEvent:
        """Execute ``task(ctx)`` on this VM; event carries its result."""
        self.ensure_running()
        context = VmContext(self)
        return self.sim.process(
            task(context), name=f"{self.vm_id}.{name}"
        ).completion

    def terminate(self) -> None:
        """Stop the instance and bill its lifetime."""
        if self.state == "terminated":
            raise VmAlreadyTerminated(self.vm_id)
        self.state = "terminated"
        self.terminated_at = self.sim.now
        self.service._bill_instance(self)
        self.sim.timeline.record(
            self.sim.now, "vm", "terminate", vm=self.vm_id,
            type=self.instance_type.name,
        )


class VmService:
    """Provisioning control plane for virtual server instances."""

    def __init__(
        self,
        sim: Simulator,
        profile: VmProfile,
        store: ObjectStore,
        meter: CostMeter,
        logical_scale: float = 1.0,
        name: str = "vm",
        memstore=None,
    ):
        self.sim = sim
        self.profile = profile
        self.store = store
        self.meter = meter
        self.logical_scale = logical_scale
        self.name = name
        #: Optional cache service for VM-side key-value exchange
        #: (set by :class:`~repro.cloud.environment.Cloud`).
        self.memstore = memstore
        self._ids = itertools.count(1)
        self._rng = sim.rng.stream(f"{name}.boot")
        self.instances: list[VirtualMachine] = []
        #: Partition relays hosted on this service's VMs, by relay id
        #: (registered by :mod:`repro.cloud.vm.relay`).
        self.relays: dict[str, object] = {}

    def instance_type(self, type_name: str) -> InstanceType:
        try:
            return self.profile.catalog[type_name]
        except KeyError:
            raise UnknownInstanceType(type_name, list(self.profile.catalog)) from None

    def provision(self, type_name: str) -> SimEvent:
        """Provision an instance; the event succeeds with a running VM."""
        instance_type = self.instance_type(type_name)
        vm = VirtualMachine(self, f"vm-{next(self._ids)}", instance_type)
        self.instances.append(vm)
        return self.sim.process(
            self._boot(vm), name=f"{self.name}.boot.{vm.vm_id}"
        ).completion

    def provision_ready(self, type_name: str) -> VirtualMachine:
        """An instance that is already running (pre-provisioned, warm mode).

        Billing still starts now: the instance accrues seconds from this
        call until :meth:`VirtualMachine.terminate` — the same contract
        as :meth:`~repro.cloud.memstore.service.MemStoreService.provision_ready`.
        """
        instance_type = self.instance_type(type_name)
        vm = VirtualMachine(self, f"vm-{next(self._ids)}", instance_type)
        vm.state = "running"
        vm.ready_at = self.sim.now
        self.instances.append(vm)
        return vm

    def relay(self, relay_id: str):
        """Resolve a relay id (as carried inside worker payloads)."""
        try:
            return self.relays[relay_id]
        except KeyError:
            raise UnknownRelay(relay_id) from None

    def _boot(self, vm: VirtualMachine) -> t.Generator:
        boot_time = self.profile.boot.sample(self._rng)
        self.sim.timeline.record(
            self.sim.now, "vm", "provision", vm=vm.vm_id,
            type=vm.instance_type.name, boot_time=boot_time,
        )
        yield self.sim.timeout(boot_time)
        vm.state = "running"
        vm.ready_at = self.sim.now
        return vm

    def _bill_instance(self, vm: VirtualMachine) -> None:
        lifetime = (vm.terminated_at or self.sim.now) - vm.provisioned_at
        billed = max(lifetime, self.profile.minimum_billed_s)
        instance_usd = billed * vm.instance_type.per_second_usd
        self.meter.charge(
            self.sim.now,
            "vm",
            "instance_second",
            billed,
            instance_usd,
            vm=vm.vm_id,
            type=vm.instance_type.name,
        )
        volume_hours = billed / 3600.0
        volume_usd = (
            self.profile.boot_volume_gb * volume_hours * self.profile.volume_gb_hour_usd
        )
        self.meter.charge(
            self.sim.now,
            "vm",
            "volume_gb_hour",
            self.profile.boot_volume_gb * volume_hours,
            volume_usd,
            vm=vm.vm_id,
        )

    def terminate_all(self) -> None:
        """Terminate any instances still running (end-of-run cleanup)."""
        for vm in self.instances:
            if vm.state != "terminated":
                vm.terminate()
