"""The simulated cloud region: one object of everything.

:class:`Cloud` wires a :class:`~repro.sim.kernel.Simulator` to an object
store, a FaaS platform, a VM service and a cost meter, all sharing one
:class:`~repro.cloud.profiles.CloudProfile`.  Every higher layer
(executors, shuffle, workflows, experiments) takes a ``Cloud`` and
nothing else.
"""

from __future__ import annotations

from repro.cloud.billing import CostMeter
from repro.cloud.faas.platform import FaasPlatform
from repro.cloud.memstore.service import MemStoreService
from repro.cloud.objectstore.service import ObjectStore
from repro.cloud.profiles import CloudProfile, ibm_us_east
from repro.cloud.vm.instance import VmService
from repro.sim import Simulator


class Cloud:
    """A simulated region bundling all services over one simulator."""

    def __init__(self, sim: Simulator, profile: CloudProfile | None = None):
        self.sim = sim
        self.profile = profile if profile is not None else ibm_us_east()
        self.profile.validate()
        self.meter = CostMeter()
        self.store = ObjectStore(
            sim,
            self.profile.objectstore,
            self.meter,
            logical_scale=self.profile.logical_scale,
        )
        self.cache = MemStoreService(
            sim,
            self.profile.memstore,
            self.meter,
            logical_scale=self.profile.logical_scale,
        )
        self.vms = VmService(
            sim,
            self.profile.vm,
            self.store,
            self.meter,
            logical_scale=self.profile.logical_scale,
            memstore=self.cache,
        )
        self.faas = FaasPlatform(
            sim,
            self.profile.faas,
            self.store,
            self.meter,
            logical_scale=self.profile.logical_scale,
            memstore=self.cache,
            vms=self.vms,
        )

    @property
    def logical_scale(self) -> float:
        return self.profile.logical_scale

    def finalize(self) -> None:
        """End-of-run housekeeping: terminate VMs and cache clusters,
        settle storage-volume billing."""
        self.vms.terminate_all()
        self.cache.terminate_all()
        self.store.finalize_billing()

    @classmethod
    def fresh(
        cls,
        seed: int = 0,
        profile: CloudProfile | None = None,
        trace: bool = False,
        spans: bool | None = None,
    ) -> "Cloud":
        """Convenience: a new simulator plus a new region.

        ``spans`` enables attempt-scoped span tracing (see
        :mod:`repro.obs.trace`); None defers to ``REPRO_TRACE``.
        """
        return cls(Simulator(seed=seed, trace=trace, spans=spans), profile)
