"""Bandwidth-bounded views over the object store.

Compute nodes (function instances, VMs) do not talk to object storage at
the store's full per-connection speed: their own NIC caps the rate.  A
:class:`BoundStorage` wraps an :class:`~repro.cloud.objectstore.ObjectStore`
and threads the caller's bandwidth bound through every data-plane call.

Worker-side views additionally carry a :class:`~repro.cloud.retry.RetryPolicy`:
real Lithops workers use an SDK that retries 503/500 responses inside
the function, so transient storage failures cost backoff time — not the
whole activation.  Views without a policy surface errors directly (the
driver-side :class:`~repro.storage.api.Storage` client layers its own
retries on top).
"""

from __future__ import annotations

import typing as t

from repro.cloud.objectstore.service import ObjectStore
from repro.cloud.retry import RETRYABLE_ERRORS, RetryPolicy
from repro.errors import StorageError
from repro.obs.trace import NOOP_SPAN
from repro.sim import SimEvent


class BoundStorage:
    """Object-store facade with a fixed per-connection bandwidth bound.

    All data-plane methods mirror :class:`ObjectStore` and return
    :class:`~repro.sim.events.SimEvent`s for processes to yield.
    """

    def __init__(
        self,
        store: ObjectStore,
        connection_bandwidth: float | None,
        retry: RetryPolicy | None = None,
        name: str = "bound",
    ):
        self._store = store
        self.connection_bandwidth = connection_bandwidth
        self.retry = retry
        self.name = name
        self._rng = store.sim.rng.stream(f"{name}.backoff") if retry else None
        #: Transient-error retries performed (visible to tests/reports).
        self.retries = 0
        #: The owning attempt's trace span (the FaaS context binds it);
        #: noop when tracing is off.
        self.span = NOOP_SPAN

    # -- retry plumbing --------------------------------------------------
    def _call(self, make_event: t.Callable[[], SimEvent], label: str) -> SimEvent:
        if self.retry is None:
            return make_event()
        return self._store.sim.process(
            self._retry_loop(make_event, label), name=f"{self.name}.{label}"
        ).completion

    def _retry_loop(
        self, make_event: t.Callable[[], SimEvent], label: str
    ) -> t.Generator:
        attempt = 1
        while True:
            try:
                result = yield make_event()
                return result
            except RETRYABLE_ERRORS as exc:
                if attempt >= self.retry.max_attempts:
                    raise StorageError(
                        f"{label}: still failing after "
                        f"{self.retry.max_attempts} attempts ({exc})"
                    )
                self.retries += 1
                yield self._store.sim.timeout(
                    self.retry.delay(attempt, self._rng)
                )
                attempt += 1

    # -- data plane ----------------------------------------------------
    def put(
        self,
        bucket: str,
        key: str,
        data: bytes,
        logical_size: float | None = None,
        dedup: bool = False,
    ) -> SimEvent:
        if self.span.recording:
            self.span.event(
                "storage.put", key=key, bytes=len(data),
                logical=logical_size if logical_size is not None else len(data),
            )
        return self._call(
            lambda: self._store.put(
                bucket,
                key,
                data,
                logical_size=logical_size,
                connection_bandwidth=self.connection_bandwidth,
                dedup=dedup,
            ),
            f"put:{key}",
        )

    def get(self, bucket: str, key: str) -> SimEvent:
        if self.span.recording:
            self.span.event("storage.get", key=key)
        return self._call(
            lambda: self._store.get(
                bucket, key, connection_bandwidth=self.connection_bandwidth
            ),
            f"get:{key}",
        )

    def get_range(self, bucket: str, key: str, start: int, end: int) -> SimEvent:
        if self.span.recording:
            self.span.event(
                "storage.get_range", key=key, start=start, end=end
            )
        return self._call(
            lambda: self._store.get_range(
                bucket, key, start, end,
                connection_bandwidth=self.connection_bandwidth,
            ),
            f"get_range:{key}",
        )

    def head(self, bucket: str, key: str) -> SimEvent:
        return self._call(lambda: self._store.head(bucket, key), f"head:{key}")

    def list_keys(self, bucket: str, prefix: str = "") -> SimEvent:
        return self._call(
            lambda: self._store.list_keys(bucket, prefix), f"list:{prefix}"
        )

    def delete(self, bucket: str, key: str) -> SimEvent:
        return self._call(
            lambda: self._store.delete(bucket, key), f"delete:{key}"
        )

    def create_multipart_upload(self, bucket: str, key: str) -> SimEvent:
        return self._call(
            lambda: self._store.create_multipart_upload(bucket, key),
            f"mpu:{key}",
        )

    def upload_part(
        self,
        upload_id: str,
        part_number: int,
        data: bytes,
        logical_size: float | None = None,
    ) -> SimEvent:
        return self._call(
            lambda: self._store.upload_part(
                upload_id,
                part_number,
                data,
                logical_size=logical_size,
                connection_bandwidth=self.connection_bandwidth,
            ),
            f"part:{upload_id}:{part_number}",
        )

    def complete_multipart_upload(self, upload_id: str) -> SimEvent:
        return self._call(
            lambda: self._store.complete_multipart_upload(upload_id),
            f"mpuc:{upload_id}",
        )

    # -- derived views -------------------------------------------------
    def bounded(self, connection_bandwidth: float) -> "BoundStorage":
        """A stricter view, e.g. for splitting a NIC across parallel streams.

        The effective bound is the minimum of this view's bound and the
        requested one, so a derived view can never exceed its parent.
        The retry policy carries over.
        """
        if self.connection_bandwidth is not None:
            connection_bandwidth = min(connection_bandwidth, self.connection_bandwidth)
        view = BoundStorage(
            self._store, connection_bandwidth, retry=self.retry, name=self.name
        )
        view.span = self.span
        return view

    # -- passthrough ---------------------------------------------------
    @property
    def raw(self) -> ObjectStore:
        """The underlying store (control-plane helpers, stats)."""
        return self._store
