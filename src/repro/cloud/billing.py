"""Cost metering for the simulated cloud.

Every billable action (a storage request, a function GB-second, a VM
second, stored bytes over time) is recorded as a :class:`CostLine` on the
region's :class:`CostMeter`.  The paper's Table 1 "Cost ($)" column is
the sum over a pipeline run; the workflow tracker additionally groups
lines by pipeline stage, reproducing the paper's per-stage cost
breakdown UI.
"""

from __future__ import annotations

import collections
import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class CostLine:
    """One billable item.

    Attributes
    ----------
    time:
        Virtual time at which the charge was incurred.
    service:
        Billing service, e.g. ``"objectstore"``, ``"faas"``, ``"vm"``.
    item:
        Line item within the service, e.g. ``"class_a_request"``,
        ``"gb_second"``, ``"instance_second"``.
    quantity:
        Amount of the billed unit (requests, GB-s, seconds, ...).
    usd:
        Dollar charge for this line.
    tags:
        Free-form attribution labels (pipeline stage, function name, ...).
    """

    time: float
    service: str
    item: str
    quantity: float
    usd: float
    tags: tuple[tuple[str, str], ...] = ()


class CostMeter:
    """Append-only ledger of :class:`CostLine` entries."""

    def __init__(self) -> None:
        self.lines: list[CostLine] = []
        self._context_tags: dict[str, str] = {}
        #: Per-key stack of shadowed values, so nested ``push_tag`` of the
        #: same key restores the outer value on ``pop_tag`` instead of
        #: dropping it (``None`` marks "key was unset before the push").
        self._tag_stack: dict[str, list[str | None]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def charge(
        self,
        time: float,
        service: str,
        item: str,
        quantity: float,
        usd: float,
        **tags: str,
    ) -> None:
        """Record one billable line, merged with any ambient context tags."""
        merged = dict(self._context_tags)
        merged.update(tags)
        self.lines.append(
            CostLine(time, service, item, quantity, usd, tuple(sorted(merged.items())))
        )

    def push_tag(self, key: str, value: str) -> None:
        """Attach ``key=value`` to every subsequent charge (until popped).

        Used by the workflow engine to attribute costs to pipeline stages
        without threading a stage label through every storage call.

        Pushes nest: pushing a key that is already set shadows the outer
        value, and the matching :meth:`pop_tag` *restores* it, so an
        engine-level ``stage`` tag under a service-level ``tenant`` tag
        never silently drops the outer attribution.
        """
        self._tag_stack.setdefault(key, []).append(self._context_tags.get(key))
        self._context_tags[key] = value

    def pop_tag(self, key: str) -> None:
        """Undo the most recent :meth:`push_tag` of ``key``.

        Restores the value the key had before that push (removing the key
        if it was unset).  Popping a key that was never pushed is a no-op.
        """
        stack = self._tag_stack.get(key)
        if not stack:
            self._context_tags.pop(key, None)
            return
        previous = stack.pop()
        if not stack:
            del self._tag_stack[key]
        if previous is None:
            self._context_tags.pop(key, None)
        else:
            self._context_tags[key] = previous

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    @property
    def total_usd(self) -> float:
        """Total dollars across all recorded lines."""
        return sum(line.usd for line in self.lines)

    def total_by_service(self) -> dict[str, float]:
        """Dollar totals grouped by service."""
        totals: dict[str, float] = collections.defaultdict(float)
        for line in self.lines:
            totals[line.service] += line.usd
        return dict(totals)

    def total_by_item(self) -> dict[tuple[str, str], float]:
        """Dollar totals grouped by ``(service, item)``."""
        totals: dict[tuple[str, str], float] = collections.defaultdict(float)
        for line in self.lines:
            totals[(line.service, line.item)] += line.usd
        return dict(totals)

    def total_by_tag(self, key: str) -> dict[str, float]:
        """Dollar totals grouped by the value of tag ``key``.

        Lines without the tag are grouped under ``"(untagged)"``.
        """
        totals: dict[str, float] = collections.defaultdict(float)
        for line in self.lines:
            tag_value = dict(line.tags).get(key, "(untagged)")
            totals[tag_value] += line.usd
        return dict(totals)

    def filtered(self, service: str | None = None, **tags: str) -> list[CostLine]:
        """Lines matching a service and/or exact tag values."""
        result = []
        for line in self.lines:
            if service is not None and line.service != service:
                continue
            line_tags = dict(line.tags)
            if any(line_tags.get(key) != value for key, value in tags.items()):
                continue
            result.append(line)
        return result

    def snapshot(self) -> int:
        """Opaque marker for :meth:`since` (current line count)."""
        return len(self.lines)

    def since(self, marker: int) -> "CostMeter":
        """A new meter containing only lines recorded after ``marker``."""
        view = CostMeter()
        view.lines = self.lines[marker:]
        return view

    def report(self) -> str:
        """Human-readable itemized report."""
        rows = [f"{'service':<12} {'item':<22} {'quantity':>14} {'usd':>12}"]
        rows.append("-" * 64)
        quantities: dict[tuple[str, str], float] = collections.defaultdict(float)
        for line in self.lines:
            quantities[(line.service, line.item)] += line.quantity
        for (service, item), usd in sorted(self.total_by_item().items()):
            quantity = quantities[(service, item)]
            rows.append(f"{service:<12} {item:<22} {quantity:>14.3f} {usd:>12.6f}")
        rows.append("-" * 64)
        rows.append(f"{'TOTAL':<50} {self.total_usd:>12.6f}")
        return "\n".join(rows)
