"""Calibrated performance/pricing profiles for the simulated cloud.

A :class:`CloudProfile` bundles every tunable constant of the simulated
region: object-storage latency/throughput/pricing, FaaS startup and
billing, VM catalog behaviour.  The defaults (:func:`ibm_us_east`) are
calibrated to public IBM Cloud characteristics circa 2021 — the setting
of the paper — and validated against its Table 1 (see EXPERIMENTS.md).

Everything is a plain frozen-ish dataclass; experiments tweak profiles
with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigError

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclasses.dataclass(slots=True)
class LatencyModel:
    """Lognormal latency with a deterministic fallback.

    ``mean`` is the arithmetic mean in seconds, ``sigma`` the lognormal
    shape parameter; ``sigma=0`` makes the latency deterministic, which
    tests use for exact assertions.
    """

    mean: float
    sigma: float = 0.35

    def sample(self, rng) -> float:
        """Draw one latency value (seconds)."""
        if self.mean < 0:
            raise ConfigError(f"latency mean must be >= 0, got {self.mean}")
        if self.sigma <= 0:
            return self.mean
        # Parameterize so the arithmetic mean equals ``mean``:
        # mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        import math

        mu = math.log(self.mean) - (self.sigma**2) / 2.0
        return rng.lognormvariate(mu, self.sigma)


@dataclasses.dataclass(slots=True)
class ObjectStoreProfile:
    """Model parameters for the COS-like object store."""

    #: First-byte latency for reads (GET/HEAD/LIST).
    read_latency: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.025)
    )
    #: First-byte latency for writes (PUT/DELETE).
    write_latency: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.045)
    )
    #: Per-connection streaming bandwidth (bytes/s).
    per_connection_bandwidth: float = 95.0 * MB
    #: Aggregate account bandwidth (bytes/s) — the "huge aggregated
    #: bandwidth" of the paper; shared max-min across all connections.
    aggregate_bandwidth: float = 12.0 * GB
    #: Sustained request rate before throttling kicks in (requests/s).
    ops_per_second: float = 3000.0
    #: Burst allowance (requests) above the sustained rate.
    ops_burst: float = 3000.0
    #: When a request would wait longer than this for rate-limit tokens,
    #: the store fails it with ``SlowDown`` (clients then back off and
    #: retry).  ``None`` disables explicit throttling errors.
    slowdown_after_s: float | None = 30.0
    #: Class A request price (PUT/COPY/LIST/DELETE), per request.
    class_a_price_usd: float = 0.005 / 1000.0
    #: Class B request price (GET/HEAD), per request.
    class_b_price_usd: float = 0.0004 / 1000.0
    #: Storage price per GB-hour (from $0.0223/GB-month).
    storage_gb_hour_usd: float = 0.0223 / (30 * 24)


@dataclasses.dataclass(slots=True)
class FaasProfile:
    """Model parameters for the serverless functions platform."""

    #: Cold-start delay (container provision + runtime init).
    cold_start: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.55, 0.25)
    )
    #: Warm-start dispatch delay.
    warm_start: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.025, 0.2)
    )
    #: Control-plane overhead per invocation (scheduling, HTTP).
    invoke_overhead: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.06, 0.3)
    )
    #: Idle container keep-alive before eviction (seconds).
    keep_alive_s: float = 600.0
    #: Account-wide concurrent executions limit.
    account_concurrency: int = 1000
    #: Memory size granting a full vCPU (IBM CF scales CPU with memory).
    cpu_full_share_mb: int = 2048
    #: Per-function-instance network bandwidth to storage (bytes/s).
    instance_bandwidth: float = 85.0 * MB
    #: Price per GB-second of execution.
    gb_second_usd: float = 0.000017
    #: Billing granularity (seconds); durations round up to a multiple.
    billing_granularity_s: float = 0.1
    #: Default function timeout (seconds).
    default_timeout_s: float = 600.0


@dataclasses.dataclass(frozen=True, slots=True)
class InstanceType:
    """One VM flavour in the catalog."""

    name: str
    vcpus: int
    memory_gb: int
    nic_bandwidth: float  # bytes/s
    hourly_usd: float

    @property
    def per_second_usd(self) -> float:
        return self.hourly_usd / 3600.0


def _bx2(name: str, vcpus: int, memory_gb: int, hourly_usd: float) -> InstanceType:
    # IBM VPC gen2: ~2 Gbps of NIC bandwidth per vCPU, capped at 16 Gbps
    # for this size range.
    nic_gbps = min(2 * vcpus, 16)
    return InstanceType(name, vcpus, memory_gb, nic_gbps * GB / 8, hourly_usd)


#: IBM VPC bx2 (balanced) instance family, us-east on-demand pricing (2021).
BX2_CATALOG: dict[str, InstanceType] = {
    instance.name: instance
    for instance in (
        _bx2("bx2-2x8", 2, 8, 0.096),
        _bx2("bx2-4x16", 4, 16, 0.192),
        _bx2("bx2-8x32", 8, 32, 0.384),
        _bx2("bx2-16x64", 16, 64, 0.768),
        _bx2("bx2-32x128", 32, 128, 1.536),
        _bx2("bx2-48x192", 48, 192, 2.304),
    )
}


@dataclasses.dataclass(slots=True)
class VmProfile:
    """Model parameters for the VM (virtual server instance) service."""

    #: Provision + boot + agent-ready time.  The paper's end-to-end
    #: latencies include startup, and Lithops standalone mode must wait
    #: for the VM to accept work.
    boot: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(52.0, 0.10)
    )
    #: Per-vCPU sustained processing bonus vs a 2048 MB function (1.0 =
    #: identical per-core speed).
    relative_core_speed: float = 1.0
    #: Boot volume size charged while the instance runs (GB).
    boot_volume_gb: float = 100.0
    #: Block storage price per GB-hour (from ~$0.13/GB-month tiered).
    volume_gb_hour_usd: float = 0.13 / (30 * 24)
    #: Minimum billed runtime (seconds).
    minimum_billed_s: float = 60.0
    #: Available instance catalog.
    catalog: dict[str, InstanceType] = dataclasses.field(
        default_factory=lambda: dict(BX2_CATALOG)
    )
    #: Request latency of the in-memory partition relay software a VM can
    #: host (one in-VPC TCP round trip plus dispatch; functions and the
    #: relay share a zone, so this sits between the cache's sub-ms and
    #: the object store's tens of ms).
    relay_request_latency: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.0005, 0.25)
    )
    #: Sustained request rate of one relay server (requests/s).  A
    #: single-purpose in-memory server saturates its NIC long before its
    #: request loop, so this is generously above the cache's per-node
    #: ceiling.
    relay_ops_per_second: float = 150_000.0
    #: Burst allowance (requests) above the sustained relay rate.
    relay_ops_burst: float = 50_000.0
    #: Fraction of instance memory the relay may fill with partitions
    #: (the rest is OS + runtime overhead).
    relay_usable_memory_fraction: float = 0.85

    def relay_usable_bytes(self, instance_type: InstanceType) -> float:
        """Logical bytes of partitions a relay on ``instance_type`` holds.

        The single source of this formula: the runtime capacity
        (:class:`~repro.cloud.vm.relay.PartitionRelay`) and the planner
        feasibility checks must never disagree on it.
        """
        return instance_type.memory_gb * GB * self.relay_usable_memory_fraction


@dataclasses.dataclass(frozen=True, slots=True)
class CacheNodeType:
    """One cache-cluster node flavour in the catalog."""

    name: str
    memory_gb: float
    nic_bandwidth: float  # bytes/s
    hourly_usd: float

    @property
    def per_second_usd(self) -> float:
        return self.hourly_usd / 3600.0


def _r5(name: str, memory_gb: float, nic_gbps: float, hourly_usd: float) -> CacheNodeType:
    return CacheNodeType(name, memory_gb, nic_gbps * GB / 8, hourly_usd)


#: ElastiCache-for-Redis r5 node family, us-east on-demand pricing (2021).
#: The paper names AWS ElastiCache as the faster-but-costlier alternative
#: to object storage; this catalog backs the third data-exchange strategy.
CACHE_R5_CATALOG: dict[str, CacheNodeType] = {
    node.name: node
    for node in (
        _r5("cache.r5.large", 13.07, 6.0, 0.216),
        _r5("cache.r5.xlarge", 26.32, 10.0, 0.431),
        _r5("cache.r5.2xlarge", 52.26, 10.0, 0.862),
        _r5("cache.r5.4xlarge", 105.81, 10.0, 1.724),
    )
}

#: Redis refuses writes when full ("noeviction") — the safe default for
#: shuffle data, where silently dropping a partition corrupts the sort.
NOEVICTION = "noeviction"
#: Evict the least-recently-used key to make room (Redis "allkeys-lru").
ALLKEYS_LRU = "allkeys-lru"


@dataclasses.dataclass(slots=True)
class MemStoreProfile:
    """Model parameters for the in-memory key-value store (cache) service.

    Calibrated to AWS ElastiCache for Redis: sub-millisecond request
    latency, ~100 k ops/s per node, node-hour pricing — the opposite
    trade-off from object storage on every axis the paper discusses.
    """

    #: Request latency for reads (GET and the per-batch cost of MGET).
    read_latency: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.0008, 0.25)
    )
    #: Request latency for writes (SET / per-batch MSET / DELETE).
    write_latency: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(0.0009, 0.25)
    )
    #: Per-connection streaming bandwidth (bytes/s).
    per_connection_bandwidth: float = 300.0 * MB
    #: Sustained request rate per node (requests/s).
    ops_per_node: float = 90_000.0
    #: Burst allowance (requests) above the sustained per-node rate.
    ops_burst: float = 30_000.0
    #: Fraction of node memory usable for data (rest is Redis overhead).
    usable_memory_fraction: float = 0.8
    #: Cluster creation latency.  ElastiCache clusters take minutes to
    #: come up — the "always-on" argument cuts the other way here, so
    #: experiments provision the cluster off the clock (warm mode) and
    #: expose cold provisioning as an ablation.
    provision: LatencyModel = dataclasses.field(
        default_factory=lambda: LatencyModel(180.0, 0.15)
    )
    #: Minimum billed node runtime (seconds).
    minimum_billed_s: float = 60.0
    #: What happens when a node is full: ``noeviction`` (writes fail) or
    #: ``allkeys-lru`` (least-recently-used keys are dropped).
    eviction_policy: str = NOEVICTION
    #: Available node catalog.
    catalog: dict[str, CacheNodeType] = dataclasses.field(
        default_factory=lambda: dict(CACHE_R5_CATALOG)
    )


@dataclasses.dataclass(slots=True)
class CloudProfile:
    """Everything the simulated region needs to know."""

    region: str = "us-east"
    objectstore: ObjectStoreProfile = dataclasses.field(
        default_factory=ObjectStoreProfile
    )
    faas: FaasProfile = dataclasses.field(default_factory=FaasProfile)
    vm: VmProfile = dataclasses.field(default_factory=VmProfile)
    memstore: MemStoreProfile = dataclasses.field(default_factory=MemStoreProfile)
    #: Real-to-logical byte multiplier.  Experiments generate
    #: ``logical_size / logical_scale`` real bytes; the store and compute
    #: models charge time for ``real * logical_scale`` bytes.  Request
    #: *counts* are unaffected, preserving ops/s effects.
    logical_scale: float = 1.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical parameters."""
        if self.logical_scale <= 0:
            raise ConfigError("logical_scale must be positive")
        if self.objectstore.ops_per_second <= 0:
            raise ConfigError("objectstore.ops_per_second must be positive")
        if self.faas.account_concurrency < 1:
            raise ConfigError("faas.account_concurrency must be >= 1")
        if not self.vm.catalog:
            raise ConfigError("vm.catalog must not be empty")
        if self.vm.relay_ops_per_second <= 0:
            raise ConfigError("vm.relay_ops_per_second must be positive")
        if self.vm.relay_ops_burst < 1:
            raise ConfigError(
                "vm.relay_ops_burst must be >= 1 (single requests must "
                "fit the burst bucket)"
            )
        if not 0 < self.vm.relay_usable_memory_fraction <= 1:
            raise ConfigError(
                "vm.relay_usable_memory_fraction must be in (0, 1]"
            )
        if self.memstore.ops_per_node <= 0:
            raise ConfigError("memstore.ops_per_node must be positive")
        if not 0 < self.memstore.usable_memory_fraction <= 1:
            raise ConfigError("memstore.usable_memory_fraction must be in (0, 1]")
        if self.memstore.eviction_policy not in (NOEVICTION, ALLKEYS_LRU):
            raise ConfigError(
                f"unknown eviction policy {self.memstore.eviction_policy!r}; "
                f"expected {NOEVICTION!r} or {ALLKEYS_LRU!r}"
            )
        if not self.memstore.catalog:
            raise ConfigError("memstore.catalog must not be empty")


def ibm_us_east(logical_scale: float = 1.0, deterministic: bool = False) -> CloudProfile:
    """The calibrated profile used by the paper reproduction.

    Parameters
    ----------
    logical_scale:
        See :attr:`CloudProfile.logical_scale`.
    deterministic:
        Zero out all latency jitter (``sigma = 0``); used by tests that
        assert exact timings.
    """
    profile = CloudProfile(region="us-east", logical_scale=logical_scale)
    if deterministic:
        _zero_jitter(profile)
    profile.validate()
    return profile


def _m5(name: str, vcpus: int, memory_gb: int, nic_gbps: float,
        hourly_usd: float) -> InstanceType:
    return InstanceType(name, vcpus, memory_gb, nic_gbps * GB / 8, hourly_usd)


#: AWS EC2 m5 (general purpose) family, us-east-1 on-demand pricing
#: (2021).  NIC figures are sustained baselines, not "up to" bursts.
M5_CATALOG: dict[str, InstanceType] = {
    instance.name: instance
    for instance in (
        _m5("m5.large", 2, 8, 0.75, 0.096),
        _m5("m5.xlarge", 4, 16, 1.25, 0.192),
        _m5("m5.2xlarge", 8, 32, 2.5, 0.384),
        _m5("m5.4xlarge", 16, 64, 5.0, 0.768),
        _m5("m5.8xlarge", 32, 128, 10.0, 1.536),
    )
}


def aws_us_east(logical_scale: float = 1.0, deterministic: bool = False) -> CloudProfile:
    """An AWS-flavoured region profile (Lambda + S3 + EC2 m5 + ElastiCache).

    Lithops is multi-cloud (the paper's reference [3]); this profile lets
    every experiment re-run against public AWS characteristics circa
    2021: faster function cold starts and 1 ms billing granularity, a
    higher request ceiling on the object store, and quicker-booting but
    otherwise comparable VMs.  Absolute numbers shift; the paper's
    qualitative story should not — benchmark S11 checks exactly that.
    """
    profile = CloudProfile(region="aws-us-east-1", logical_scale=logical_scale)

    store = profile.objectstore
    store.read_latency = LatencyModel(0.020)
    store.write_latency = LatencyModel(0.030)
    store.per_connection_bandwidth = 90.0 * MB
    store.aggregate_bandwidth = 25.0 * GB
    store.ops_per_second = 5500.0  # S3 per-prefix GET ceiling
    store.ops_burst = 5500.0
    store.class_a_price_usd = 0.005 / 1000.0
    store.class_b_price_usd = 0.0004 / 1000.0
    store.storage_gb_hour_usd = 0.023 / (30 * 24)

    faas = profile.faas
    faas.cold_start = LatencyModel(0.30, 0.30)
    faas.warm_start = LatencyModel(0.010, 0.2)
    faas.invoke_overhead = LatencyModel(0.05, 0.3)
    faas.keep_alive_s = 420.0
    faas.cpu_full_share_mb = 1769  # Lambda grants one full vCPU here
    faas.instance_bandwidth = 70.0 * MB
    faas.gb_second_usd = 0.0000166667
    faas.billing_granularity_s = 0.001
    faas.default_timeout_s = 900.0

    vm = profile.vm
    vm.boot = LatencyModel(40.0, 0.10)
    vm.volume_gb_hour_usd = 0.10 / (30 * 24)  # gp2
    vm.catalog = dict(M5_CATALOG)

    if deterministic:
        _zero_jitter(profile)
    profile.validate()
    return profile


#: Region profiles by name (the Lithops multi-cloud story).
PROVIDER_PROFILES: dict[str, t.Callable[..., CloudProfile]] = {
    "ibm-us-east": ibm_us_east,
    "aws-us-east": aws_us_east,
}


def profile_named(
    provider: str, logical_scale: float = 1.0, deterministic: bool = False
) -> CloudProfile:
    """Build a provider profile by name.

    Raises :class:`ConfigError` for unknown providers.
    """
    try:
        factory = PROVIDER_PROFILES[provider]
    except KeyError:
        raise ConfigError(
            f"unknown provider {provider!r}; available: "
            f"{sorted(PROVIDER_PROFILES)}"
        ) from None
    return factory(logical_scale=logical_scale, deterministic=deterministic)


def _zero_jitter(profile: CloudProfile) -> None:
    """Make every latency model deterministic (``sigma = 0``)."""
    for latency in (
        profile.objectstore.read_latency,
        profile.objectstore.write_latency,
        profile.faas.cold_start,
        profile.faas.warm_start,
        profile.faas.invoke_overhead,
        profile.vm.boot,
        profile.vm.relay_request_latency,
        profile.memstore.read_latency,
        profile.memstore.write_latency,
        profile.memstore.provision,
    ):
        latency.sigma = 0.0
