"""The simulated in-memory key-value store (AWS ElastiCache-like).

The paper positions object storage against "other alternatives such as
AWS ElastiCache": lower latency and far higher request throughput, but
provisioned (node-hour billed) rather than pay-as-you-go, and bounded by
cluster memory.  This service models exactly those trade-offs so the
experiments can run a third data-exchange strategy next to the paper's
two:

* **sub-millisecond requests** — per-request latency is ~30x below the
  object store's first-byte latency;
* **high per-node ops/s** — a per-node token bucket at ~90 k requests/s
  (vs a few thousand for the whole object-storage account);
* **bounded memory** — every value is charged against its shard node's
  capacity; a full node either refuses writes (``noeviction``) or drops
  least-recently-used keys (``allkeys-lru``);
* **node-hour billing** — cost accrues per node from provision to
  terminate, whether or not requests flow (the "always-on" cost the
  paper credits object storage for avoiding).

Keys shard across nodes by CRC32 (stable across runs and processes, so
simulations stay deterministic).  Batched MSET/MGET pay one request
latency per node touched — the pipelining that makes caches attractive
for W² all-to-all traffic.
"""

from __future__ import annotations

import itertools
import typing as t
import zlib

from repro.cas import cas_enabled, sha256_hex
from repro.cloud.billing import CostMeter
from repro.cloud.memstore.errors import (
    CacheKeyMissing,
    ClusterAlreadyTerminated,
    ClusterNotRunning,
    UnknownCacheNodeType,
    UnknownCluster,
)
from repro.cloud.memstore.node import CacheNode
from repro.cloud.profiles import CacheNodeType, MemStoreProfile
from repro.errors import SimulationError
from repro.obs.metrics import registry
from repro.obs.trace import NOOP_SPAN
from repro.sim import SimEvent, Simulator


class MemStoreService:
    """Provisioning control plane for cache clusters."""

    def __init__(
        self,
        sim: Simulator,
        profile: MemStoreProfile,
        meter: CostMeter,
        logical_scale: float = 1.0,
        name: str = "memstore",
    ):
        self.sim = sim
        self.profile = profile
        self.meter = meter
        self.logical_scale = logical_scale
        self.name = name
        self._ids = itertools.count(1)
        self._rng = sim.rng.stream(f"{name}.provision")
        self._rng_read = sim.rng.stream(f"{name}.read_latency")
        self._rng_write = sim.rng.stream(f"{name}.write_latency")
        self.clusters: dict[str, MemStoreCluster] = {}

    def node_type(self, type_name: str) -> CacheNodeType:
        try:
            return self.profile.catalog[type_name]
        except KeyError:
            raise UnknownCacheNodeType(type_name, list(self.profile.catalog)) from None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def provision(self, type_name: str, nodes: int = 1) -> SimEvent:
        """Create a cluster; the event succeeds with it once it is ready.

        Cluster creation takes minutes (``profile.provision``), which is
        why experiments that model an always-on cache provision it off
        the clock — see :func:`provision_ready`.
        """
        cluster = self._make_cluster(type_name, nodes)
        return self.sim.process(
            self._boot(cluster), name=f"{self.name}.boot.{cluster.cluster_id}"
        ).completion

    def provision_ready(self, type_name: str, nodes: int = 1) -> "MemStoreCluster":
        """A cluster that is already running (pre-provisioned, warm mode).

        Billing still starts now: the cluster accrues node-seconds from
        this call until :meth:`MemStoreCluster.terminate`.
        """
        cluster = self._make_cluster(type_name, nodes)
        cluster.state = "running"
        cluster.ready_at = self.sim.now
        return cluster

    def _make_cluster(self, type_name: str, nodes: int) -> "MemStoreCluster":
        if nodes < 1:
            raise SimulationError(f"cluster needs >= 1 node, got {nodes}")
        node_type = self.node_type(type_name)
        cluster = MemStoreCluster(self, f"cache-{next(self._ids)}", node_type, nodes)
        self.clusters[cluster.cluster_id] = cluster
        return cluster

    def _boot(self, cluster: "MemStoreCluster") -> t.Generator:
        delay = self.profile.provision.sample(self._rng)
        self.sim.timeline.record(
            self.sim.now,
            "memstore",
            "provision",
            cluster=cluster.cluster_id,
            type=cluster.node_type.name,
            nodes=len(cluster.nodes),
            delay=delay,
        )
        yield self.sim.timeout(delay)
        cluster.state = "running"
        cluster.ready_at = self.sim.now
        return cluster

    def cluster(self, cluster_id: str) -> "MemStoreCluster":
        """Resolve a cluster id (as carried inside worker payloads)."""
        try:
            return self.clusters[cluster_id]
        except KeyError:
            raise UnknownCluster(cluster_id) from None

    def terminate_all(self) -> None:
        """Terminate any clusters still running (end-of-run cleanup)."""
        for cluster in self.clusters.values():
            if cluster.state != "terminated":
                cluster.terminate()

    # ------------------------------------------------------------------
    # billing
    # ------------------------------------------------------------------
    def _bill_cluster(self, cluster: "MemStoreCluster") -> None:
        lifetime = (cluster.terminated_at or self.sim.now) - cluster.provisioned_at
        billed = max(lifetime, self.profile.minimum_billed_s)
        for node in cluster.nodes:
            self.meter.charge(
                self.sim.now,
                "memstore",
                "node_second",
                billed,
                billed * cluster.node_type.per_second_usd,
                cluster=cluster.cluster_id,
                node=node.node_id,
                type=cluster.node_type.name,
            )


class MemStoreCluster:
    """One provisioned cache cluster: N shard nodes behind one keyspace."""

    def __init__(
        self,
        service: MemStoreService,
        cluster_id: str,
        node_type: CacheNodeType,
        nodes: int,
    ):
        self.service = service
        self.sim = service.sim
        self.cluster_id = cluster_id
        self.node_type = node_type
        self.state = "provisioning"
        self.provisioned_at = self.sim.now
        self.ready_at: float | None = None
        self.terminated_at: float | None = None
        self.nodes = [
            CacheNode(
                self.sim,
                f"{cluster_id}.n{index}",
                node_type,
                service.profile,
            )
            for index in range(nodes)
        ]
        #: Append-only ``(key, sha256, logical)`` log of dedup-eligible
        #: pipelined writes, for run-manifest construction.
        self.cas_log: list[tuple[str, str, float]] = []

    # ------------------------------------------------------------------
    def ensure_running(self) -> None:
        if self.state != "running":
            raise ClusterNotRunning(self.cluster_id, self.state)

    def node_for(self, key: str) -> CacheNode:
        """The shard node owning ``key`` (stable CRC32 placement)."""
        index = zlib.crc32(key.encode("utf-8")) % len(self.nodes)
        return self.nodes[index]

    def client(
        self, connection_bandwidth: float | None = None, owner=None
    ) -> "CacheClient":
        """A request client, optionally capped by the caller's NIC.

        ``owner`` (a :class:`~repro.cloud.faas.context.FunctionContext`)
        makes the client's request processes attempt-scoped: they are
        interrupted when the owning activation is killed, instead of
        draining as orphans.
        """
        return CacheClient(self, connection_bandwidth, owner=owner)

    def terminate(self) -> None:
        """Stop the cluster and bill its node lifetimes."""
        if self.state == "terminated":
            raise ClusterAlreadyTerminated(self.cluster_id)
        self.state = "terminated"
        self.terminated_at = self.sim.now
        # Rendezvous readers still parked on unset keys would wait
        # forever on a dead cluster; fail them like a dropped connection.
        for node in self.nodes:
            node.fail_watchers(ClusterNotRunning(self.cluster_id, "terminated"))
        self.service._bill_cluster(self)
        self.sim.timeline.record(
            self.sim.now,
            "memstore",
            "terminate",
            cluster=self.cluster_id,
            type=self.node_type.name,
            nodes=len(self.nodes),
        )

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> float:
        """Total usable logical capacity across all nodes."""
        return sum(node.capacity_bytes for node in self.nodes)

    @property
    def used_logical(self) -> float:
        return sum(node.used_logical for node in self.nodes)

    @property
    def key_count(self) -> int:
        return sum(node.key_count for node in self.nodes)

    def stats_totals(self) -> dict[str, float]:
        """Summed per-node counters."""
        totals: dict[str, float] = {}
        for node in self.nodes:
            for field, value in node.stats.as_dict().items():
                totals[field] = totals.get(field, 0.0) + value
        return totals

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        """Dedup-eligible writes whose key starts with ``prefix``."""
        return [entry for entry in self.cas_log if entry[0].startswith(prefix)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemStoreCluster {self.cluster_id} {self.node_type.name}x"
            f"{len(self.nodes)} {self.state}>"
        )


class CacheClient:
    """Request interface to one cluster; all methods return SimEvents.

    ``connection_bandwidth`` caps this client's aggregate transfer rate
    (the caller's NIC); batched operations split it across the node
    streams they open concurrently.
    """

    def __init__(
        self,
        cluster: MemStoreCluster,
        connection_bandwidth: float | None,
        owner=None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.connection_bandwidth = connection_bandwidth
        #: Owning activation context (tracks request processes), if any.
        self.owner = owner
        self._service = cluster.service
        self._profile = cluster.service.profile
        self._scale = cluster.service.logical_scale

    # ------------------------------------------------------------------
    # single-key operations
    # ------------------------------------------------------------------
    def set(self, key: str, data: bytes, logical_size: float | None = None) -> SimEvent:
        """Store ``key``; event → ``None``.  Fails with CacheOutOfMemory."""
        span = self._span()
        if span.recording:
            span.event("cache.set", cluster=self.cluster.cluster_id, key=key)
        return self._spawn(self._set_op(key, data, logical_size), f"set:{key}")

    def get(self, key: str) -> SimEvent:
        """Fetch ``key``; event → ``bytes``.  Fails with CacheKeyMissing."""
        span = self._span()
        if span.recording:
            span.event("cache.get", cluster=self.cluster.cluster_id, key=key)
        return self._spawn(self._get_op(key), f"get:{key}")

    def get_wait(self, key: str) -> SimEvent:
        """Fetch ``key``, *waiting* until it is stored; event → ``bytes``.

        The memstore-notification read of the streaming shuffle: where
        :meth:`get` fails an absent key with :class:`CacheKeyMissing`,
        this parks the reader on the owning node's set notification and
        transfers the value once a writer publishes it.
        """
        span = self._span()
        if span.recording:
            span.event(
                "cache.get_wait", cluster=self.cluster.cluster_id, key=key
            )
        return self._spawn(self._get_wait_op(key), f"get_wait:{key}")

    def delete(self, key: str) -> SimEvent:
        """Remove ``key``; event → whether it existed."""
        return self._spawn(self._delete_op(key), f"delete:{key}")

    def exists(self, key: str) -> SimEvent:
        """Membership check; event → ``bool``."""
        return self._spawn(self._exists_op(key), f"exists:{key}")

    # ------------------------------------------------------------------
    # batched (pipelined) operations
    # ------------------------------------------------------------------
    def mset(
        self,
        items: t.Sequence[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None = None,
    ) -> SimEvent:
        """Store many keys, pipelined per shard node; event → ``None``.

        Each node touched pays *one* write latency for its whole batch
        (plus one rate-limit token per key) — the reason a cache absorbs
        W² all-to-all writes that would drown object storage in PUTs.
        """
        span = self._span()
        if span.recording:
            span.event(
                "cache.mset", cluster=self.cluster.cluster_id, keys=len(items)
            )
        return self._spawn(self._mset_op(list(items), logical_sizes), "mset")

    def mget(self, keys: t.Sequence[str]) -> SimEvent:
        """Fetch many keys, pipelined per shard node; event → payload list.

        Payloads come back in input-key order.  Fails with
        :class:`CacheKeyMissing` naming the first absent key.
        """
        span = self._span()
        if span.recording:
            span.event(
                "cache.mget", cluster=self.cluster.cluster_id, keys=len(keys)
            )
        return self._spawn(self._mget_op(list(keys)), "mget")

    def _span(self):
        """The owning attempt's span (noop for driver-side clients).

        ``owner`` only promises ``track()``; spanless owners (bare
        process trackers) fall back to the no-op span.
        """
        span = getattr(self.owner, "span", None)
        if span is not None:
            return span
        return NOOP_SPAN

    def _spawn(self, generator: t.Generator, label: str) -> SimEvent:
        process = self.sim.process(
            generator, name=f"{self.cluster.cluster_id}.{label}"
        )
        if self.owner is not None:
            self.owner.track(process)
        return process.completion

    # ------------------------------------------------------------------
    # operation bodies
    # ------------------------------------------------------------------
    def _logical(self, data: bytes, logical_size: float | None) -> float:
        if logical_size is not None:
            return logical_size
        return len(data) * self._scale

    @staticmethod
    def _consume_ops(node, amount: float) -> t.Generator:
        """Take ``amount`` rate-limit tokens, in bucket-sized chunks.

        A pipelined batch may exceed the bucket's burst capacity; the
        requests then drain at the sustained rate instead of failing.
        """
        remaining = amount
        while remaining > 0:
            take = min(remaining, node.ops.capacity)
            yield node.ops.consume(take)
            remaining -= take

    def _flow_cap(self, streams: int = 1) -> float:
        cap = self._profile.per_connection_bandwidth
        if self.connection_bandwidth is not None:
            cap = min(cap, self.connection_bandwidth / max(1, streams))
        return cap

    def _set_op(self, key: str, data: bytes, logical_size: float | None) -> t.Generator:
        self.cluster.ensure_running()
        node = self.cluster.node_for(key)
        yield node.ops.consume(1.0)
        yield self.sim.timeout(
            self._profile.write_latency.sample(self._service._rng_write)
        )
        logical = self._logical(data, logical_size)
        if logical > 0:
            yield node.link.transfer(logical, self._flow_cap())
        node.store(key, data, logical)
        self.sim.timeline.record(
            self.sim.now, "memstore", "set",
            cluster=self.cluster.cluster_id, key=key, logical=logical,
        )
        return None

    def _get_op(self, key: str) -> t.Generator:
        self.cluster.ensure_running()
        node = self.cluster.node_for(key)
        yield node.ops.consume(1.0)
        yield self.sim.timeout(
            self._profile.read_latency.sample(self._service._rng_read)
        )
        entry = node.fetch(key)
        if entry is None:
            raise CacheKeyMissing(key)
        if entry.logical > 0:
            yield node.link.transfer(entry.logical, self._flow_cap())
        self.sim.timeline.record(
            self.sim.now, "memstore", "get",
            cluster=self.cluster.cluster_id, key=key, logical=entry.logical,
        )
        return entry.data

    def _get_wait_op(self, key: str) -> t.Generator:
        self.cluster.ensure_running()
        node = self.cluster.node_for(key)
        yield node.ops.consume(1.0)
        yield self.sim.timeout(
            self._profile.read_latency.sample(self._service._rng_read)
        )
        waited = False
        while True:
            # contains() is stats-free: a rendezvous read that arrives
            # early is a counted *wait*, not a phantom cache miss per
            # park/wake re-check.
            if node.contains(key):
                entry = node.fetch(key)
                if entry is not None:
                    break
            if node.was_evicted(key):
                # The value existed and was LRU-evicted: it is gone for
                # good (committed stream chunks are never re-published).
                # Parking would hang the reader forever; fail like the
                # staged path's plain GET does.
                raise CacheKeyMissing(key)
            if not waited:
                waited = True
                node.stats.rendezvous_waits += 1
            watcher = node.watch(key)
            try:
                yield watcher
            except BaseException:
                node.unwatch(key, watcher)
                raise
        if entry.logical > 0:
            yield node.link.transfer(entry.logical, self._flow_cap())
        self.sim.timeline.record(
            self.sim.now, "memstore", "get_wait",
            cluster=self.cluster.cluster_id, key=key, logical=entry.logical,
        )
        return entry.data

    def _delete_op(self, key: str) -> t.Generator:
        self.cluster.ensure_running()
        node = self.cluster.node_for(key)
        yield node.ops.consume(1.0)
        yield self.sim.timeout(
            self._profile.write_latency.sample(self._service._rng_write)
        )
        return node.remove(key)

    def _exists_op(self, key: str) -> t.Generator:
        self.cluster.ensure_running()
        node = self.cluster.node_for(key)
        yield node.ops.consume(1.0)
        yield self.sim.timeout(
            self._profile.read_latency.sample(self._service._rng_read)
        )
        return node.contains(key)

    def _group_by_node(
        self, keys: t.Sequence[str]
    ) -> dict[int, list[tuple[int, str]]]:
        """Map node index → list of ``(position, key)`` preserving order."""
        groups: dict[int, list[tuple[int, str]]] = {}
        for position, key in enumerate(keys):
            node_index = zlib.crc32(key.encode("utf-8")) % len(self.cluster.nodes)
            groups.setdefault(node_index, []).append((position, key))
        return groups

    def _mset_op(
        self,
        items: list[tuple[str, bytes]],
        logical_sizes: t.Sequence[float] | None,
    ) -> t.Generator:
        self.cluster.ensure_running()
        if not items:
            return None
        if logical_sizes is not None and len(logical_sizes) != len(items):
            raise SimulationError(
                "mset: logical_sizes length does not match items"
            )
        groups = self._group_by_node([key for key, _data in items])
        streams = len(groups)

        def write_group(node_index: int, members: list[tuple[int, str]]) -> t.Generator:
            node = self.cluster.nodes[node_index]
            yield from self._consume_ops(node, float(len(members)))
            yield self.sim.timeout(
                self._profile.write_latency.sample(self._service._rng_write)
            )
            cas = cas_enabled()
            logicals: list[float] = []
            shas: list[str | None] = []
            for position, _key in members:
                _item_key, data = items[position]
                logicals.append(
                    logical_sizes[position]
                    if logical_sizes is not None
                    else self._logical(data, None)
                )
                shas.append(sha256_hex(data) if cas and data else None)
            # Content dedup: values already resident on this shard ride
            # as references — only novel bytes cross the wire.
            deduped = [
                sha is not None and node.content_resident(sha) for sha in shas
            ]
            wire_logical = sum(
                logical for logical, skip in zip(logicals, deduped) if not skip
            )
            if wire_logical > 0:
                yield node.link.transfer(wire_logical, self._flow_cap(streams))
            for (position, key), logical, sha, was_dedup in zip(
                members, logicals, shas, deduped
            ):
                _item_key, data = items[position]
                if was_dedup and not node.content_resident(sha):
                    # The referent was LRU-evicted (tombstoned in
                    # ``_evicted_keys``) after the residency check —
                    # transparently re-send the bytes instead of
                    # surfacing a missing-content failure.
                    node.stats.dedup_restores += 1
                    if logical > 0:
                        yield node.link.transfer(logical, self._flow_cap(streams))
                    was_dedup = False
                node.store(key, data, logical, sha)
                if was_dedup:
                    node.stats.dedup_hits += 1
                    node.stats.dedup_bytes += logical
                    registry().counter(
                        "repro_dedup_bytes_total",
                        "Wire bytes saved by content-addressed dedup",
                    ).inc(logical, substrate="cache")
                if sha is not None:
                    self.cluster.cas_log.append((key, sha, logical))

        writers = [
            self.sim.process(
                write_group(node_index, members),
                name=f"{self.cluster.cluster_id}.mset.n{node_index}",
            )
            for node_index, members in groups.items()
        ]
        if self.owner is not None:
            for process in writers:
                self.owner.track(process)
        yield self.sim.all_of([process.completion for process in writers])
        self.sim.timeline.record(
            self.sim.now, "memstore", "mset",
            cluster=self.cluster.cluster_id, keys=len(items), nodes=streams,
        )
        return None

    def _mget_op(self, keys: list[str]) -> t.Generator:
        self.cluster.ensure_running()
        if not keys:
            return []
        groups = self._group_by_node(keys)
        streams = len(groups)
        results: list[bytes | None] = [None] * len(keys)

        def read_group(node_index: int, members: list[tuple[int, str]]) -> t.Generator:
            node = self.cluster.nodes[node_index]
            yield from self._consume_ops(node, float(len(members)))
            yield self.sim.timeout(
                self._profile.read_latency.sample(self._service._rng_read)
            )
            entries = []
            for _position, key in members:
                entry = node.fetch(key)
                if entry is None:
                    raise CacheKeyMissing(key)
                entries.append(entry)
            total_logical = sum(entry.logical for entry in entries)
            if total_logical > 0:
                yield node.link.transfer(total_logical, self._flow_cap(streams))
            for (position, _key), entry in zip(members, entries):
                results[position] = entry.data

        readers = [
            self.sim.process(
                read_group(node_index, members),
                name=f"{self.cluster.cluster_id}.mget.n{node_index}",
            )
            for node_index, members in groups.items()
        ]
        if self.owner is not None:
            for process in readers:
                self.owner.track(process)
        yield self.sim.all_of([process.completion for process in readers])
        self.sim.timeline.record(
            self.sim.now, "memstore", "mget",
            cluster=self.cluster.cluster_id, keys=len(keys), nodes=streams,
        )
        return t.cast(list, results)
