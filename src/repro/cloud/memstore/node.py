"""One node of the simulated cache cluster.

A :class:`CacheNode` owns a shard of the key space: a bounded in-memory
byte store with LRU bookkeeping, a per-node request-rate token bucket,
and a per-node NIC modeled as a fair-share link.  The clustering and the
client-facing request flow live in :mod:`repro.cloud.memstore.service`;
the node is pure capacity + bookkeeping.

Real payload bytes are stored verbatim.  Capacity accounting uses
*logical* bytes (real bytes times the experiment's ``logical_scale``) so
scaled-down runs hit memory limits at the same logical dataset sizes as
full-scale ones.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.cloud.memstore.errors import CacheOutOfMemory
from repro.cloud.profiles import (
    ALLKEYS_LRU,
    NOEVICTION,
    GB,
    CacheNodeType,
    MemStoreProfile,
)
from repro.sim import FairShareLink, KeyedWatch, SimEvent, Simulator, TokenBucket


@dataclasses.dataclass(slots=True)
class _Entry:
    """One stored value: real payload plus its logical size.

    ``sha`` is the value's content address when the write was
    dedup-eligible; it keys the node's refcounted content index.
    """

    data: bytes
    logical: float
    sha: str | None = None


class CacheNodeStats:
    """Per-node counters exposed for planners, reports and tests."""

    def __init__(self) -> None:
        self.sets = 0
        self.gets = 0
        self.deletes = 0
        self.misses = 0
        self.evictions = 0
        self.oom_errors = 0
        #: GETs that arrived before their key and parked on the set
        #: notification (the streaming shuffle's rendezvous reads).
        self.rendezvous_waits = 0
        self.bytes_in = 0.0  # logical bytes written
        self.bytes_out = 0.0  # logical bytes read
        #: Writes whose value was already resident (content dedup) and
        #: therefore skipped the wire transfer.
        self.dedup_hits = 0
        #: Dedup'd writes whose referent was evicted between the
        #: residency check and the store — transparently re-sent.
        self.dedup_restores = 0
        self.dedup_bytes = 0.0  # logical wire bytes dedup skipped

    def as_dict(self) -> dict[str, float]:
        return dict(vars(self))


class CacheNode:
    """One shard: bounded LRU byte store + request-rate + NIC models."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        node_type: CacheNodeType,
        profile: MemStoreProfile,
    ):
        self.sim = sim
        self.node_id = node_id
        self.node_type = node_type
        self.profile = profile
        #: Logical bytes this node can hold.
        self.capacity_bytes = (
            node_type.memory_gb * GB * profile.usable_memory_fraction
        )
        self.used_logical = 0.0
        #: Insertion/access-ordered entries; the front is least recent.
        self._entries: collections.OrderedDict[str, _Entry] = collections.OrderedDict()
        self.ops = TokenBucket(
            sim,
            rate=profile.ops_per_node,
            capacity=profile.ops_burst,
            name=f"{node_id}.ops",
        )
        self.link = FairShareLink(
            sim, capacity=node_type.nic_bandwidth, name=f"{node_id}.nic"
        )
        #: Set-notification watchers: readers parked until a key lands.
        self._watchers = KeyedWatch(sim, name=f"{node_id}.watch")
        #: Tombstones of LRU-evicted keys: a rendezvous read that arrives
        #: after the eviction must fail (the value is gone and committed
        #: stream chunks are never re-published), not park forever.
        #: Cleared when the key is stored again.  Deliberately
        #: *unbounded*: a rotation cap would let a late reader park on a
        #: long-ago-evicted key and hang silently, and the set is
        #: anyway bounded by the run's total evictions (a few dozen
        #: bytes each in a run-scoped simulation) — correctness over
        #: memory here.
        self._evicted_keys: set[str] = set()
        #: Refcounted content index: sha256 → number of resident
        #: entries holding those bytes.  Identical values are counted,
        #: not re-stored on the wire; eviction and deletion decrement,
        #: so residency here always mirrors ``_entries`` exactly.
        self._content: collections.Counter[str] = collections.Counter()
        self.stats = CacheNodeStats()

    def _content_drop(self, entry: _Entry) -> None:
        if entry.sha is None:
            return
        remaining = self._content[entry.sha] - 1
        if remaining > 0:
            self._content[entry.sha] = remaining
        else:
            del self._content[entry.sha]

    def content_resident(self, sha: str) -> bool:
        """Whether any resident entry holds bytes with this address."""
        return self._content.get(sha, 0) > 0

    # ------------------------------------------------------------------
    # bookkeeping (synchronous; the service layer pays latency/bandwidth)
    # ------------------------------------------------------------------
    def store(self, key: str, data: bytes, logical: float, sha: str | None = None) -> int:
        """Insert or replace ``key``; returns how many keys were evicted.

        Raises :class:`CacheOutOfMemory` when the value cannot fit — a
        value larger than the node, or a full node under ``noeviction``.
        """
        if logical > self.capacity_bytes:
            self.stats.oom_errors += 1
            raise CacheOutOfMemory(self.node_id, logical, self.capacity_bytes)
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.used_logical -= previous.logical
            self._content_drop(previous)

        evicted = 0
        while self.used_logical + logical > self.capacity_bytes:
            if self.profile.eviction_policy == NOEVICTION:
                # Put the displaced entry back: a refused write must not
                # lose the previous value of the key.
                if previous is not None:
                    self._entries[key] = previous
                    self.used_logical += previous.logical
                    if previous.sha is not None:
                        self._content[previous.sha] += 1
                self.stats.oom_errors += 1
                raise CacheOutOfMemory(
                    self.node_id, self.used_logical + logical, self.capacity_bytes
                )
            assert self.profile.eviction_policy == ALLKEYS_LRU
            victim_key, victim = self._entries.popitem(last=False)
            self.used_logical -= victim.logical
            evicted += 1
            self._evicted_keys.add(victim_key)
            self._content_drop(victim)

        self._entries[key] = _Entry(bytes(data), logical, sha)
        if sha is not None:
            self._content[sha] += 1
        self._evicted_keys.discard(key)
        self.used_logical += logical
        self.stats.sets += 1
        self.stats.bytes_in += logical
        self.stats.evictions += evicted
        self._watchers.notify(key)
        return evicted

    # ------------------------------------------------------------------
    # set notification (the streaming shuffle's rendezvous reads)
    # ------------------------------------------------------------------
    def watch(self, key: str) -> SimEvent:
        """An event that succeeds the next time ``key`` is stored."""
        return self._watchers.watch(key)

    def was_evicted(self, key: str) -> bool:
        """Whether ``key`` was LRU-evicted and not stored since.

        A rendezvous read checks this before parking: parking on an
        evicted key would hang forever where a plain GET raises
        :class:`~repro.cloud.memstore.errors.CacheKeyMissing`.
        """
        return key in self._evicted_keys

    def unwatch(self, key: str, event: SimEvent) -> None:
        """Drop a watcher (an interrupted reader cleans up after itself)."""
        self._watchers.unwatch(key, event)

    def fail_watchers(self, exc: BaseException) -> None:
        """Fail every parked watcher (the cluster is going away)."""
        self._watchers.fail_all(lambda _key: exc)

    def fetch(self, key: str) -> _Entry | None:
        """Look up ``key``, refreshing its LRU position.  None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.gets += 1
        self.stats.bytes_out += entry.logical
        return entry

    def remove(self, key: str) -> bool:
        """Delete ``key`` if present; returns whether it existed."""
        entry = self._entries.pop(key, None)
        self.stats.deletes += 1
        if entry is None:
            return False
        self.used_logical -= entry.logical
        self._content_drop(entry)
        return True

    def contains(self, key: str) -> bool:
        """Membership check without touching LRU order or stats."""
        return key in self._entries

    @property
    def key_count(self) -> int:
        return len(self._entries)

    @property
    def fill_fraction(self) -> float:
        """Used capacity as a fraction of usable memory (0..1)."""
        return self.used_logical / self.capacity_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheNode {self.node_id} {self.node_type.name} "
            f"keys={self.key_count} fill={self.fill_fraction:.1%}>"
        )
