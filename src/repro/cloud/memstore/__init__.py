"""Simulated in-memory key-value store (AWS ElastiCache-like).

The third data-exchange substrate of the comparison: sub-millisecond
requests and ~100 k ops/s per node, but provisioned capacity billed by
the node-hour — the alternative the paper names when discussing object
storage's latency and throughput limits.
"""

from repro.cloud.memstore.errors import (
    CacheKeyMissing,
    CacheOutOfMemory,
    ClusterAlreadyTerminated,
    ClusterNotRunning,
    MemStoreError,
    UnknownCacheNodeType,
    UnknownCluster,
)
from repro.cloud.memstore.node import CacheNode, CacheNodeStats
from repro.cloud.memstore.service import CacheClient, MemStoreCluster, MemStoreService

__all__ = [
    "CacheClient",
    "CacheKeyMissing",
    "CacheNode",
    "CacheNodeStats",
    "CacheOutOfMemory",
    "ClusterAlreadyTerminated",
    "ClusterNotRunning",
    "MemStoreCluster",
    "MemStoreError",
    "MemStoreService",
    "UnknownCacheNodeType",
    "UnknownCluster",
]
