"""Exceptions raised by the in-memory key-value store service."""

from __future__ import annotations

from repro.errors import StorageError


class MemStoreError(StorageError):
    """Base class for cache-service failures."""


class UnknownCacheNodeType(MemStoreError):
    """A requested node type is not in the catalog."""

    def __init__(self, type_name: str, available: list[str]):
        super().__init__(
            f"unknown cache node type {type_name!r}; available: {sorted(available)}"
        )
        self.type_name = type_name
        self.available = list(available)


class CacheKeyMissing(MemStoreError):
    """GET on a key the cluster does not hold (possibly evicted)."""

    def __init__(self, key: str):
        super().__init__(f"cache key not found: {key!r}")
        self.key = key


class CacheOutOfMemory(MemStoreError):
    """A write did not fit and the eviction policy forbids making room."""

    def __init__(self, node_id: str, needed: float, capacity: float):
        super().__init__(
            f"cache node {node_id} out of memory: need {needed:.0f} logical "
            f"bytes, capacity {capacity:.0f}"
        )
        self.node_id = node_id
        self.needed = needed
        self.capacity = capacity


class ClusterNotRunning(MemStoreError):
    """An operation reached a cluster that is not in the running state."""

    def __init__(self, cluster_id: str, state: str):
        super().__init__(f"cache cluster {cluster_id} is {state}, not running")
        self.cluster_id = cluster_id
        self.state = state


class ClusterAlreadyTerminated(MemStoreError):
    """``terminate()`` called twice on the same cluster."""

    def __init__(self, cluster_id: str):
        super().__init__(f"cache cluster {cluster_id} already terminated")
        self.cluster_id = cluster_id


class UnknownCluster(MemStoreError):
    """A cluster id does not resolve to a provisioned cluster."""

    def __init__(self, cluster_id: str):
        super().__init__(f"unknown cache cluster: {cluster_id!r}")
        self.cluster_id = cluster_id
