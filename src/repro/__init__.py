"""repro — reproduction of "A Milestone for FaaS Pipelines" (Middleware '21).

A simulation-backed reimplementation of the paper's full stack:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.cloud` — object storage, FaaS platform, VM service,
  in-memory cache service, billing, per-provider profiles (IBM + AWS);
* :mod:`repro.storage` — Lithops-like storage client API;
* :mod:`repro.executor` — Lithops-like ``FunctionExecutor`` (+ VM mode,
  crash retries, speculative execution);
* :mod:`repro.shuffle` — Primula-like shuffle/sort through object
  storage or a cache cluster, GroupBy/OrderBy operators, analytic
  planners and the probe-based on-the-fly tuner;
* :mod:`repro.methcomp` — METHCOMP genomics workload (data + codec);
* :mod:`repro.workflows` — declarative DAG pipelines with cost tracking
  and Gantt timelines;
* :mod:`repro.core` — the paper's comparison: object-storage- vs VM- vs
  cache-driven data exchange for the METHCOMP pipeline;
* :mod:`repro.experiments` — regenerators for Table 1, Figure 1 and the
  supplementary sweeps S1-S11.

Quickstart::

    from repro.core import ExperimentConfig, run_table1
    results = run_table1(ExperimentConfig())
    print(results.to_table())
"""

from repro._version import __version__

__all__ = ["__version__"]
