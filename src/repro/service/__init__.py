"""Long-running multi-tenant exchange service (driver-side control plane)."""

from repro.service.exchange_service import (
    ExchangeService,
    JobHandle,
    ServiceSaturated,
)

__all__ = [
    "ExchangeService",
    "JobHandle",
    "ServiceSaturated",
]
