"""Multi-tenant exchange service: many sorts, one autoscaled substrate.

Every experiment so far provisions its exchange substrate *per job*: a
sort shows up, a relay fleet boots (or a warm one is dedicated), the
sort runs, the fleet dies.  That is how the paper's one-shot pipelines
work, but it is not how a shared service would: per-job provisioning
pays every fleet's minimum billed seconds, leaves instances idle
between a tenant's jobs, and makes concurrent tenants trivially
isolated only because nothing is ever shared.

:class:`ExchangeService` is the opposite deployment shape — a
long-running driver-side control plane that admits sort jobs from many
tenants against **one shared, autoscaling relay fleet**:

* **admission control** — a bounded FIFO queue with per-tenant
  fair-share token buckets (the per-VM ``FairShareLink`` discipline,
  lifted to the fleet): a noisy tenant's burst queues behind its own
  refill rate while other tenants' jobs skip ahead, so no tenant can
  starve another, and a full queue rejects at submit time
  (:class:`ServiceSaturated`) instead of queueing unboundedly;
* **tenant fencing** — each job runs under scope ``tenant/job-id``
  stamped on every worker's relay client;
  :meth:`ExchangeService.cancel_tenant` fences exactly those scopes
  (:meth:`~repro.cloud.vm.relay.PartitionRelay.cancel_scope`), so a
  tenant's cancel storm can never reclaim another tenant's
  reservations;
* **autoscaling** — the fleet is resized from observed demand (queued
  plus running logical bytes, skew-aware) by
  :func:`~repro.shuffle.adaptive.plan_fleet_scale`.  Scaling rotates
  **generations**: a new warm fleet serves subsequently dispatched
  jobs while the old one drains its running jobs and terminates —
  rotating instead of mutating keeps every in-flight sort's key→shard
  rendezvous stable.  Instances are billed per second from provision
  to terminate, so right-sizing is directly visible in dollars;
* **cost attribution** — every job's function invocations carry
  ``tenant``/``job`` billing tags
  (:class:`~repro.executor.FunctionExecutor` ``billing_tags``), fleet
  generations tag their instance-second lines at terminate, and
  :meth:`ExchangeService.tenant_costs` apportions each generation's
  dollars over the tenants' byte-second usage of it — the sum over
  tenants equals the fleet total to the cent.

Jobs run in consume mode by default: reducers' pulls take crash-safe
read-leases (reinstated if the attempt dies, applied at activation
commit), so the shared fleet's memory self-reclaims between jobs
without sacrificing retry correctness.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import typing as t

from repro.cloud.environment import Cloud
from repro.cloud.vm.fleet import RelayFleet, fleet_ready
from repro.errors import ReproError, ShuffleError
from repro.obs.metrics import registry as metrics_registry
from repro.executor.executor import FunctionExecutor
from repro.shuffle.adaptive import FleetScaleDecision, plan_fleet_scale
from repro.shuffle.records import RecordCodec
from repro.shuffle.relay import ShardedRelayShuffleSort
from repro.shuffle.relayplanner import (
    RelayShuffleCostModel,
    SHARD_IMBALANCE_HEADROOM,
    required_relay_fleet,
)
from repro.sim import SimEvent, TokenBucket


class ServiceSaturated(ReproError):
    """The service's admission queue is full; resubmit later."""


@dataclasses.dataclass
class JobHandle:
    """One submitted sort job, observable through its whole lifecycle."""

    job_id: str
    tenant: str
    bucket: str
    key: str
    logical_bytes: float
    workers: int | None
    out_bucket: str
    #: ``queued`` → ``running`` → ``done`` | ``failed`` | ``cancelled``.
    state: str
    submitted_at: float
    done: SimEvent
    started_at: float | None = None
    finished_at: float | None = None
    result: t.Any = None
    error: BaseException | None = None
    #: sha256 (truncated) over the sorted runs, for parity assertions.
    output_digest: str | None = None
    generation_id: int | None = None

    @property
    def scope(self) -> str:
        """Fencing scope: tenant-qualified so cancels stay tenant-local."""
        return f"{self.tenant}/{self.job_id}"

    @property
    def out_prefix(self) -> str:
        """Key-prefix namespace of this job's exchange traffic."""
        return f"svc/{self.job_id}"

    @property
    def queue_wait_s(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def latency_s(self) -> float | None:
        """Submit-to-finish wall time (queue wait included)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


@dataclasses.dataclass
class _Generation:
    """One fleet incarnation; jobs pin the generation they started on."""

    gen_id: int
    fleet: RelayFleet
    shards: int
    provisioned_at: float
    refs: int = 0
    retired: bool = False
    terminated_at: float | None = None
    #: Per-tenant byte-seconds of fleet occupancy, for cost apportioning.
    tenant_byte_s: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def tag(self) -> str:
        return f"svc-gen-{self.gen_id}"


class ExchangeService:
    """Admit many tenants' sorts onto one shared autoscaling relay fleet.

    Parameters
    ----------
    cloud:
        The region everything runs in.
    codec:
        Record format of every submitted job's input object.
    instance_type:
        Relay VM flavour; ``None`` picks the catalog's cheapest flavour
        able to hold ``expected_job_bytes`` (the flavour stays pinned —
        shard count is the scaling axis).
    expected_job_bytes:
        Sizing hint used only to resolve ``instance_type`` when that is
        ``None``.
    min_shards, max_shards:
        Fleet size bounds; the service starts at ``min_shards``.
    queue_limit:
        Admission bound — :meth:`submit` raises
        :class:`ServiceSaturated` when this many jobs are queued.
    tenant_rate_per_s, tenant_burst:
        Per-tenant token-bucket refill rate (jobs/second) and burst
        capacity: a tenant submitting faster than the refill rate
        queues behind its own bucket while others skip ahead.
    consume:
        Run jobs in consume mode (crash-safe read-leases) so the shared
        fleet's memory self-reclaims; on by default.
    relay_cost:
        Base cost model copied per job (``consume`` is overridden from
        the flag above); also carries ``expected_skew``/``rebalance``.
    partition_skew:
        Max-over-mean partition bytes the autoscaler sizes for.
    scale_down_margin:
        Hysteresis of :func:`~repro.shuffle.adaptive.plan_fleet_scale`.
    """

    def __init__(
        self,
        cloud: Cloud,
        codec: RecordCodec,
        *,
        instance_type: str | None = None,
        expected_job_bytes: float = 256e6,
        min_shards: int = 1,
        max_shards: int = 8,
        queue_limit: int = 32,
        tenant_rate_per_s: float = 0.05,
        tenant_burst: float = 2.0,
        memory_mb: int = 2048,
        staging_bucket: str = "svc-staging",
        consume: bool = True,
        relay_cost: RelayShuffleCostModel | None = None,
        partition_skew: float = 1.0,
        scale_down_margin: float = 0.5,
        samplers: int = 8,
        max_workers: int = 256,
    ):
        if queue_limit < 1:
            raise ShuffleError(f"queue_limit must be >= 1, got {queue_limit}")
        if tenant_rate_per_s <= 0:
            raise ShuffleError(
                f"tenant_rate_per_s must be positive, got {tenant_rate_per_s}"
            )
        self.cloud = cloud
        self.sim = cloud.sim
        self.codec = codec
        self.expected_job_bytes = expected_job_bytes
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.queue_limit = queue_limit
        self.tenant_rate_per_s = tenant_rate_per_s
        self.tenant_burst = tenant_burst
        self.memory_mb = memory_mb
        self.staging_bucket = staging_bucket
        self.consume = consume
        self.relay_cost = (
            relay_cost if relay_cost is not None else RelayShuffleCostModel()
        )
        self.partition_skew = partition_skew
        self.scale_down_margin = scale_down_margin
        self.samplers = samplers
        self.max_workers = max_workers
        if instance_type is None:
            instance_type, _shards = required_relay_fleet(
                max(1.0, expected_job_bytes),
                cloud.profile,
                max_shards=max_shards,
                partition_skew=partition_skew,
            )
        self.instance_type = instance_type

        self._queue: collections.deque[JobHandle] = collections.deque()
        self._running: dict[str, JobHandle] = {}
        self._buckets: dict[str, t.Any] = {}
        self._generations: list[_Generation] = []
        self._current: _Generation | None = None
        self._job_seq = 0
        self._gen_seq = 0
        self._started = False
        self._stopped = False
        self._wake_event: SimEvent | None = None
        #: One dict per rotation: time, direction, shard counts, demand.
        self.scale_events: list[dict] = []
        #: All handles ever submitted, in submit order.
        self.jobs: list[JobHandle] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Provision the initial fleet generation and start dispatching."""
        if self._started:
            raise ShuffleError("ExchangeService already started")
        self._started = True
        self._provision_generation(self.min_shards)
        self.sim.process(self._dispatch_loop(), name="svc.dispatch")

    def shutdown(self) -> None:
        """Stop dispatching and terminate every live fleet generation.

        Queued jobs are cancelled; running jobs should be drained first
        (:meth:`drain`) — shutting down under them tears their substrate
        away.
        """
        self._stopped = True
        while self._queue:
            self._finish(self._queue.popleft(), "cancelled")
        for generation in self._generations:
            if generation.terminated_at is None:
                self._terminate_generation(generation)
        self._wake()

    def drain(self) -> SimEvent:
        """Event that fires once every admitted job has left the system."""

        def waiter() -> t.Generator:
            while self._queue or self._running:
                pending = [job.done for job in self._queue]
                pending += [job.done for job in self._running.values()]
                yield self.sim.any_of(pending)
            return None

        return self.sim.process(waiter(), name="svc.drain").completion

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        bucket: str,
        key: str,
        logical_bytes: float,
        workers: int | None = None,
        out_bucket: str | None = None,
    ) -> JobHandle:
        """Admit one sort job; returns its handle immediately.

        ``logical_bytes`` is the tenant's declared exchange size (the
        resource request every cluster scheduler asks for); the sort's
        own preflight still validates the real object against the
        fleet.  Raises :class:`ServiceSaturated` when the queue is
        full, and :class:`~repro.errors.ShuffleError` when no fleet
        within ``max_shards`` could ever hold the job.
        """
        if not self._started or self._stopped:
            raise ShuffleError("ExchangeService is not running")
        if logical_bytes <= 0:
            raise ShuffleError(
                f"logical_bytes must be positive, got {logical_bytes}"
            )
        if len(self._queue) >= self.queue_limit:
            raise ServiceSaturated(
                f"admission queue is full ({self.queue_limit} jobs); "
                f"tenant {tenant!r} must resubmit later"
            )
        # Fail fast on jobs no feasible fleet holds (raises ShuffleError).
        required_relay_fleet(
            logical_bytes,
            self.cloud.profile,
            instance_type_name=self.instance_type,
            max_shards=self.max_shards,
            partition_skew=self.partition_skew,
        )
        self._job_seq += 1
        job = JobHandle(
            job_id=f"job-{self._job_seq}",
            tenant=tenant,
            bucket=bucket,
            key=key,
            logical_bytes=float(logical_bytes),
            workers=workers,
            out_bucket=out_bucket if out_bucket is not None else bucket,
            state="queued",
            submitted_at=self.sim.now,
            done=SimEvent(self.sim, name=f"svc.job.{self._job_seq}.done"),
        )
        self.jobs.append(job)
        self._queue.append(job)
        self.sim.timeline.record(
            self.sim.now, "service", "submit",
            job=job.job_id, tenant=tenant, bytes=logical_bytes,
            queue_depth=len(self._queue),
        )
        reg = metrics_registry()
        reg.counter(
            "repro_service_jobs_submitted_total",
            "Jobs accepted by the admission queue.",
        ).inc(tenant=tenant)
        self._publish_admission_metrics()
        self._maybe_scale("submit")
        self._wake()
        return job

    def _publish_admission_metrics(self) -> None:
        """Refresh the admission-control gauges in the metrics registry."""
        reg = metrics_registry()
        depth = reg.gauge(
            "repro_service_admission_queue_depth",
            "Jobs waiting in the service admission queue.",
        )
        depth.set(float(len(self._queue)))
        depth.max(float(len(self._queue)), peak="true")
        tokens = reg.gauge(
            "repro_service_tenant_tokens",
            "Per-tenant admission token-bucket level.",
        )
        for tenant, bucket in self._buckets.items():
            tokens.set(bucket.tokens, tenant=tenant)

    def cancel_tenant(self, tenant: str) -> dict:
        """Cancel everything one tenant has in the system.

        Queued jobs leave the queue unbilled; running jobs have their
        scope fenced fleet-wide — every reservation those attempts hold
        is reclaimed and their stragglers bounce off the fence — while
        other tenants' jobs keep every byte they reserved.
        """
        cancelled_queued = [job for job in self._queue if job.tenant == tenant]
        for job in cancelled_queued:
            self._queue.remove(job)
            self._finish(job, "cancelled")
        reclaimed = 0.0
        fenced = []
        for job in list(self._running.values()):
            if job.tenant != tenant:
                continue
            generation = self._generation_by_id(job.generation_id)
            reclaimed += generation.fleet.cancel_scope(job.scope)
            fenced.append(job.job_id)
        self.sim.timeline.record(
            self.sim.now, "service", "cancel_tenant",
            tenant=tenant, queued=len(cancelled_queued),
            running=len(fenced), reclaimed_bytes=reclaimed,
        )
        self._maybe_scale("cancel")
        self._wake()
        return {
            "tenant": tenant,
            "cancelled_queued": len(cancelled_queued),
            "fenced_running": fenced,
            "reclaimed_bytes": reclaimed,
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def current_shards(self) -> int:
        return self._current.shards if self._current is not None else 0

    def fleet_cost_usd(self) -> float:
        """Total dollars of every generation's tagged instance lines."""
        total = 0.0
        for generation in self._generations:
            total += sum(
                line.usd
                for line in self.cloud.meter.filtered(
                    service="vm", fleet=generation.tag
                )
            )
        return total

    def tenant_costs(self) -> dict[str, dict[str, float]]:
        """Per-tenant dollars: tagged function lines + fleet share.

        The function (and per-invocation storage) side is exact — every
        activation's gb-seconds carry the tenant's billing tag.  Each
        fleet generation's instance dollars are apportioned over the
        tenants' byte-seconds of occupancy on that generation; a
        generation nobody used (pure idle capacity) is split evenly so
        the sum over tenants always equals the fleet total.
        """
        tenants = sorted({job.tenant for job in self.jobs})
        out = {
            tenant: {"faas_usd": 0.0, "fleet_usd": 0.0, "total_usd": 0.0}
            for tenant in tenants
        }
        for tenant in tenants:
            out[tenant]["faas_usd"] = sum(
                line.usd
                for line in self.cloud.meter.filtered(tenant=tenant)
            )
        for generation in self._generations:
            gen_usd = sum(
                line.usd
                for line in self.cloud.meter.filtered(
                    service="vm", fleet=generation.tag
                )
            )
            if gen_usd == 0.0:
                continue
            weights = generation.tenant_byte_s
            total_weight = sum(weights.values())
            if total_weight > 0:
                for tenant, weight in weights.items():
                    out.setdefault(
                        tenant,
                        {"faas_usd": 0.0, "fleet_usd": 0.0, "total_usd": 0.0},
                    )
                    out[tenant]["fleet_usd"] += gen_usd * weight / total_weight
            elif tenants:
                for tenant in tenants:
                    out[tenant]["fleet_usd"] += gen_usd / len(tenants)
        for entry in out.values():
            entry["total_usd"] = entry["faas_usd"] + entry["fleet_usd"]
        return out

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.sim,
                rate=self.tenant_rate_per_s,
                capacity=self.tenant_burst,
                name=f"svc.tenant.{tenant}",
            )
            self._buckets[tenant] = bucket
        return bucket

    def _admission_budget(self) -> float:
        """Aggregate logical bytes the current generation safely admits."""
        assert self._current is not None
        capacity = self._current.fleet.capacity_bytes
        margin = SHARD_IMBALANCE_HEADROOM * max(1.0, self.partition_skew)
        return capacity / margin

    def _inflight_bytes(self) -> float:
        current = self._current
        return sum(
            job.logical_bytes
            for job in self._running.values()
            if current is not None and job.generation_id == current.gen_id
        )

    def _pick_dispatchable(self) -> JobHandle | None:
        """First FIFO job whose tenant has a token and whose bytes fit.

        Skip-ahead keeps a token-less tenant's backlog from head-of-line
        blocking everyone else; FIFO among token-holders plus bounded
        refill rates bound every tenant's wait.
        """
        budget = self._admission_budget() - self._inflight_bytes()
        for job in self._queue:
            # Tolerance mirrors TokenBucket._pump's: an analytically
            # refilled bucket lands epsilon short of 1.0, and a strict
            # check would spin on a zero-advance timeout.
            if self._bucket_for(job.tenant).tokens < 1.0 - 1e-9:
                continue
            if self._running and job.logical_bytes > budget:
                continue
            return job
        return None

    def _dispatch_loop(self) -> t.Generator:
        while not self._stopped:
            job = self._pick_dispatchable()
            if job is not None:
                self._queue.remove(job)
                yield self._bucket_for(job.tenant).consume(1.0)
                generation = self._current
                assert generation is not None
                generation.refs += 1
                job.generation_id = generation.gen_id
                job.state = "running"
                job.started_at = self.sim.now
                self._running[job.job_id] = job
                self.sim.process(
                    self._run_job(job, generation),
                    name=f"svc.{job.job_id}",
                )
                continue
            waits = [self._wait_signal()]
            delays = [
                self._bucket_for(job.tenant).estimated_wait(1.0)
                for job in self._queue
            ]
            positive = [delay for delay in delays if delay > 0]
            if positive:
                # Floor the nap: a sub-millisecond refill shortfall must
                # still advance simulated time or the loop livelocks.
                waits.append(self.sim.timeout(max(min(positive), 1e-3)))
            yield self.sim.any_of(waits)

    def _run_job(self, job: JobHandle, generation: _Generation) -> t.Generator:
        executor = FunctionExecutor(
            self.cloud,
            runtime_memory_mb=self.memory_mb,
            bucket=self.staging_bucket,
            billing_tags={"tenant": job.tenant, "job": job.job_id},
        )
        cost = dataclasses.replace(self.relay_cost, consume=self.consume)
        operator = ShardedRelayShuffleSort(
            executor, self.codec, generation.fleet, cost=cost
        )
        operator.backend.tenant = job.scope
        try:
            result = yield operator.sort(
                job.bucket,
                job.key,
                out_bucket=job.out_bucket,
                out_prefix=job.out_prefix,
                workers=job.workers,
                samplers=self.samplers,
                max_workers=self.max_workers,
            )
        except Exception as exc:
            job.error = exc
            state = (
                "cancelled"
                if generation.fleet.scope_fenced(job.scope)
                else "failed"
            )
        else:
            job.result = result
            digest = hashlib.sha256()
            for run in result.runs:
                digest.update(self.cloud.store.peek(run.bucket, run.key))
            job.output_digest = digest.hexdigest()[:16]
            state = "done"
        finally:
            # A failed/cancelled sort never reached extra_report: retire
            # its namespaced router and close its peak epoch so a
            # long-lived fleet's per-job state stays bounded.
            backend = operator.backend
            if backend.rebalance_assignments is not None:
                generation.fleet.set_router(None, namespace=job.out_prefix)
            if backend._peak_token is not None:
                try:
                    generation.fleet.end_peak_epoch(backend._peak_token)
                except Exception:
                    pass
                backend._peak_token = None
            busy_s = self.sim.now - (job.started_at or self.sim.now)
            generation.tenant_byte_s[job.tenant] = (
                generation.tenant_byte_s.get(job.tenant, 0.0)
                + job.logical_bytes * busy_s
            )
            del self._running[job.job_id]
            generation.refs -= 1
            self._retire_if_drained(generation)
        self._finish(job, state)
        self._maybe_scale("complete")
        self._wake()

    def _finish(self, job: JobHandle, state: str) -> None:
        job.state = state
        job.finished_at = self.sim.now
        self.sim.timeline.record(
            self.sim.now, "service", "job_" + state,
            job=job.job_id, tenant=job.tenant,
            latency_s=job.latency_s, queue_wait_s=job.queue_wait_s,
        )
        reg = metrics_registry()
        reg.counter(
            "repro_service_jobs_total",
            "Service jobs by terminal state.",
        ).inc(state=state, tenant=job.tenant)
        if job.queue_wait_s is not None:
            reg.histogram(
                "repro_service_queue_wait_seconds",
                "Admission-to-dispatch wait per job.",
            ).observe(job.queue_wait_s)
        if job.latency_s is not None:
            reg.histogram(
                "repro_service_job_latency_seconds",
                "Submit-to-finish latency per job (queue wait included).",
            ).observe(job.latency_s)
        self._publish_admission_metrics()
        if not job.done.triggered:
            job.done.succeed(job)

    # ------------------------------------------------------------------
    # autoscaling (fleet generations)
    # ------------------------------------------------------------------
    def _provision_generation(self, shards: int) -> _Generation:
        fleet = fleet_ready(self.cloud.vms, self.instance_type, shards)
        generation = _Generation(
            gen_id=self._gen_seq,
            fleet=fleet,
            shards=shards,
            provisioned_at=self.sim.now,
        )
        self._gen_seq += 1
        self._generations.append(generation)
        self._current = generation
        return generation

    def _terminate_generation(self, generation: _Generation) -> None:
        if generation.terminated_at is not None:
            return
        generation.terminated_at = self.sim.now
        # Tag the terminate-time instance lines with the generation, so
        # fleet dollars are attributable straight off the meter.
        self.cloud.meter.push_tag("fleet", generation.tag)
        try:
            generation.fleet.terminate()
        finally:
            self.cloud.meter.pop_tag("fleet")

    def _retire_if_drained(self, generation: _Generation) -> None:
        if (
            generation.retired
            and generation.refs == 0
            and generation.terminated_at is None
        ):
            self._terminate_generation(generation)

    def _demand_bytes(self) -> float:
        return sum(job.logical_bytes for job in self._queue) + sum(
            job.logical_bytes for job in self._running.values()
        )

    def _maybe_scale(self, trigger: str) -> None:
        if self._stopped or self._current is None:
            return
        decision = plan_fleet_scale(
            self._demand_bytes(),
            self.cloud.profile,
            self._current.shards,
            self.instance_type,
            min_shards=self.min_shards,
            max_shards=self.max_shards,
            partition_skew=self.partition_skew,
            scale_down_margin=self.scale_down_margin,
        )
        if decision is None or decision.shards == self._current.shards:
            return
        self._rotate(decision, trigger)

    def _rotate(self, decision: FleetScaleDecision, trigger: str) -> None:
        old = self._current
        assert old is not None
        old.retired = True
        generation = self._provision_generation(decision.shards)
        self.scale_events.append(
            {
                "time": self.sim.now,
                "direction": decision.direction,
                "from_shards": old.shards,
                "to_shards": decision.shards,
                "trigger": trigger,
                "queue_depth": len(self._queue),
                "demand_bytes": self._demand_bytes(),
                "reason": decision.reason,
            }
        )
        self.sim.timeline.record(
            self.sim.now, "service", "scale_" + decision.direction,
            from_shards=old.shards, to_shards=decision.shards,
            generation=generation.gen_id, trigger=trigger,
        )
        reg = metrics_registry()
        reg.counter(
            "repro_service_scale_events_total",
            "Fleet generation rotations by direction and trigger.",
        ).inc(direction=decision.direction, trigger=trigger)
        reg.gauge(
            "repro_service_fleet_shards",
            "Relay shards in the current fleet generation.",
        ).set(float(decision.shards))
        # An idle old generation terminates immediately; otherwise it
        # drains its running jobs first (their shard rendezvous must
        # stay stable) and terminates on the last job's exit.
        self._retire_if_drained(old)

    def _generation_by_id(self, gen_id: int | None) -> _Generation:
        for generation in self._generations:
            if generation.gen_id == gen_id:
                return generation
        raise ShuffleError(f"unknown fleet generation {gen_id!r}")

    # ------------------------------------------------------------------
    # dispatcher wake plumbing
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        if self._wake_event is not None and not self._wake_event.triggered:
            self._wake_event.succeed(None)

    def _wait_signal(self) -> SimEvent:
        self._wake_event = SimEvent(self.sim, name="svc.wake")
        return self._wake_event
