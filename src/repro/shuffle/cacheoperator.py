"""High-level cache-mediated shuffle/sort operator.

:class:`CacheShuffleSort` is the generic
:class:`~repro.shuffle.operator.ShuffleSort` driving a
:class:`CacheExchange`: the all-to-all rides a provisioned in-memory
key-value cluster (the ElastiCache-style alternative the paper
mentions).  Input splits are read from object storage and sorted runs
are written back to it, so the operator is a drop-in replacement inside
the pipelines: only the intermediate-data substrate changes.
"""

from __future__ import annotations

from repro.cloud.memstore.service import MemStoreCluster
from repro.cloud.profiles import CloudProfile
from repro.errors import ShuffleError
from repro.shuffle.cacheplanner import CacheShuffleCostModel, plan_cache_shuffle
from repro.shuffle.cachestages import cache_shuffle_mapper, cache_shuffle_reducer
from repro.shuffle.exchange import ExchangeBackend
from repro.shuffle.operator import ShuffleSort
from repro.shuffle.planner import ShufflePlan
from repro.shuffle.records import RecordCodec
from repro.storage import paths


class CacheExchange(ExchangeBackend):
    """Exchange partitions through a provisioned in-memory cache cluster."""

    name = "cache"
    process_label = "cacheshuffle"
    default_out_prefix = "cache-shuffle"

    def __init__(self, cluster: MemStoreCluster, cost: CacheShuffleCostModel | None = None):
        self.cluster = cluster
        self.cost = cost if cost is not None else CacheShuffleCostModel()
        self._peak_fill = 0.0
        self._stats_baseline: dict[str, float] = {}

    def validate(self, logical_size: float) -> None:
        self.cluster.ensure_running()
        if logical_size > self.cluster.capacity_bytes:
            raise ShuffleError(
                f"shuffle data ({logical_size:.0f} logical bytes) exceeds "
                f"cluster capacity ({self.cluster.capacity_bytes:.0f}); "
                "provision more or larger cache nodes"
            )
        # The cluster may be reused across sorts (its lifecycle belongs
        # to the caller); report per-sort deltas, not lifetime totals.
        self._stats_baseline = self.cluster.stats_totals()

    def plan(
        self, logical_size: float, profile: CloudProfile, max_workers: int
    ) -> ShufflePlan:
        return plan_cache_shuffle(
            logical_size,
            profile,
            self.cluster.node_type.name,
            len(self.cluster.nodes),
            self.cost,
            max_workers=max_workers,
        )

    def mapper_stage(self):
        return cache_shuffle_mapper

    def reducer_stage(self):
        return cache_shuffle_reducer

    def mapper_task(
        self, base: dict, mapper_id: int, out_bucket: str, out_prefix: str
    ) -> dict:
        base.update(
            cluster_id=self.cluster.cluster_id,
            cache_prefix=out_prefix,
            mapper_id=mapper_id,
        )
        return base

    def reducer_task(
        self,
        reducer_id: int,
        workers: int,
        map_tasks: list[dict],
        map_results: list[dict],
        out_bucket: str,
        out_prefix: str,
        codec: RecordCodec,
    ) -> dict:
        return {
            "cluster_id": self.cluster.cluster_id,
            "cache_prefix": out_prefix,
            "reducer_id": reducer_id,
            "mappers": workers,
            "out_bucket": out_bucket,
            "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
            "codec": codec,
            "sort_throughput": self.cost.sort_throughput,
            "cleanup": self.cost.cleanup,
        }

    def on_map_done(self, map_results: list[dict]) -> None:
        self._peak_fill = max(node.fill_fraction for node in self.cluster.nodes)

    def provisioned_rate_usd_per_s(self) -> float:
        return len(self.cluster.nodes) * self.cluster.node_type.per_second_usd

    def minimum_billed_s(self) -> float:
        return self.cluster.service.profile.minimum_billed_s

    def extra_report(self) -> dict:
        totals = self.cluster.stats_totals()
        baseline = self._stats_baseline
        return {
            "cluster_id": self.cluster.cluster_id,
            "nodes": len(self.cluster.nodes),
            "node_type": self.cluster.node_type.name,
            "peak_fill_fraction": self._peak_fill,
            "cache_sets": int(totals["sets"] - baseline.get("sets", 0)),
            "cache_gets": int(totals["gets"] - baseline.get("gets", 0)),
            "evictions": int(totals["evictions"] - baseline.get("evictions", 0)),
            "dedup_hits": int(totals["dedup_hits"] - baseline.get("dedup_hits", 0)),
            "dedup_restores": int(
                totals["dedup_restores"] - baseline.get("dedup_restores", 0)
            ),
            "dedup_bytes": totals["dedup_bytes"] - baseline.get("dedup_bytes", 0.0),
        }

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        return self.cluster.cas_entries(prefix)


class CacheShuffleSort(ShuffleSort):
    """Sort a storage object with W functions exchanging via a cache.

    Parameters
    ----------
    executor:
        A :class:`~repro.executor.FunctionExecutor`.
    codec:
        Record format of the input object.
    cluster:
        A *running* :class:`~repro.cloud.memstore.MemStoreCluster` that
        will hold the shuffle's intermediate partitions.  Lifecycle
        (provision/terminate) belongs to the caller: whether the cluster
        is billed per run or amortized always-on is an experiment
        decision, not an operator one.
    cost:
        Cost-model constants; also control sampling and cleanup.
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        cluster: MemStoreCluster,
        cost: CacheShuffleCostModel | None = None,
    ):
        super().__init__(executor, codec, backend=CacheExchange(cluster, cost))
        self.cluster = cluster
