"""High-level cache-mediated shuffle/sort operator.

:class:`CacheShuffleSort` mirrors :class:`~repro.shuffle.operator.ShuffleSort`
but routes the all-to-all through a provisioned in-memory key-value
cluster (the ElastiCache-style alternative the paper mentions).  Input
splits are read from object storage and sorted runs are written back to
it, so the operator is a drop-in replacement inside the pipelines: only
the intermediate-data substrate changes.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cloud.memstore.service import MemStoreCluster
from repro.errors import ShuffleError
from repro.shuffle.cacheplanner import CacheShuffleCostModel, plan_cache_shuffle
from repro.shuffle.cachestages import cache_shuffle_mapper, cache_shuffle_reducer
from repro.shuffle.operator import ShuffleResult, SortedRun, _sample_window_bytes, _split
from repro.shuffle.planner import ShufflePlan
from repro.shuffle.records import RecordCodec
from repro.shuffle.sampler import choose_boundaries
from repro.shuffle.stages import shuffle_sampler
from repro.sim import SimEvent
from repro.storage import paths


@dataclasses.dataclass(frozen=True, slots=True)
class CacheShuffleReport:
    """Extra execution metadata specific to the cache substrate."""

    cluster_id: str
    nodes: int
    node_type: str
    peak_fill_fraction: float
    cache_sets: int
    cache_gets: int
    evictions: int


class CacheShuffleSort:
    """Sort a storage object with W functions exchanging via a cache.

    Parameters
    ----------
    executor:
        A :class:`~repro.executor.FunctionExecutor`.
    codec:
        Record format of the input object.
    cluster:
        A *running* :class:`~repro.cloud.memstore.MemStoreCluster` that
        will hold the shuffle's intermediate partitions.  Lifecycle
        (provision/terminate) belongs to the caller: whether the cluster
        is billed per run or amortized always-on is an experiment
        decision, not an operator one.
    cost:
        Cost-model constants; also control sampling and cleanup.
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        cluster: MemStoreCluster,
        cost: CacheShuffleCostModel | None = None,
    ):
        self.executor = executor
        self.sim = executor.sim
        self.codec = codec
        self.cluster = cluster
        self.cost = cost if cost is not None else CacheShuffleCostModel()

    # ------------------------------------------------------------------
    def sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str | None = None,
        out_prefix: str = "cache-shuffle",
        workers: int | None = None,
        samplers: int = 8,
        max_workers: int = 256,
    ) -> SimEvent:
        """Sort ``bucket/key``; event → :class:`ShuffleResult`.

        With ``workers=None`` the cache-shuffle planner picks the count.
        The report attached to the result (``result.planned``) is the
        planner curve when planning ran, else ``None``.
        """
        return self.sim.process(
            self._sort(
                bucket,
                key,
                out_bucket if out_bucket is not None else bucket,
                out_prefix,
                workers,
                samplers,
                max_workers,
            ),
            name=f"cacheshuffle.sort:{key}",
        ).completion

    # ------------------------------------------------------------------
    def _sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str,
        out_prefix: str,
        pinned_workers: int | None,
        samplers: int,
        max_workers: int,
    ) -> t.Generator:
        started_at = self.sim.now
        self.cluster.ensure_running()
        meta = yield self.executor.storage.head_object(bucket, key)
        real_size = meta.size
        logical_size = meta.logical_size
        if real_size == 0:
            raise ShuffleError(f"cannot shuffle empty object {bucket}/{key}")
        if logical_size > self.cluster.capacity_bytes:
            raise ShuffleError(
                f"shuffle data ({logical_size:.0f} logical bytes) exceeds "
                f"cluster capacity ({self.cluster.capacity_bytes:.0f}); "
                "provision more or larger cache nodes"
            )

        # --- plan ------------------------------------------------------
        plan: ShufflePlan | None = None
        if pinned_workers is not None:
            workers = pinned_workers
        else:
            plan = plan_cache_shuffle(
                logical_size,
                self.executor.cloud.profile,
                self.cluster.node_type.name,
                len(self.cluster.nodes),
                self.cost,
                max_workers=max_workers,
            )
            workers = plan.workers
        if workers < 1:
            raise ShuffleError(f"workers must be >= 1, got {workers}")

        # --- sample (identical to the COS shuffle) -----------------------
        sampler_count = max(1, min(samplers, workers))
        sample_splits = _split(real_size, sampler_count)
        window = _sample_window_bytes(real_size, sampler_count, self.cost.sample_bytes)
        sample_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": real_size,
                "sample_bytes": window,
                "sample_keys": self.cost.sample_keys,
                "codec": self.codec,
                "sampler_id": index,
            }
            for index, (start, end) in enumerate(sample_splits)
        ]
        sample_futures = yield self.executor.map(shuffle_sampler, sample_tasks)
        sample_results = yield self.executor.get_result(sample_futures)
        pooled_keys = [k for result in sample_results for k in result["keys"]]
        if not pooled_keys:
            raise ShuffleError(f"sampling found no records in {bucket}/{key}")
        boundaries = choose_boundaries(pooled_keys, workers)

        # --- map: partitions into the cache ------------------------------
        map_splits = _split(real_size, workers)
        map_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": real_size,
                "peek_bytes": self.cost.peek_bytes,
                "boundaries": boundaries,
                "codec": self.codec,
                "cluster_id": self.cluster.cluster_id,
                "cache_prefix": out_prefix,
                "mapper_id": mapper_id,
                "partition_throughput": self.cost.partition_throughput,
            }
            for mapper_id, (start, end) in enumerate(map_splits)
        ]
        map_futures = yield self.executor.map(cache_shuffle_mapper, map_tasks)
        map_results = yield self.executor.get_result(map_futures)
        peak_fill = max(node.fill_fraction for node in self.cluster.nodes)

        # --- reduce: MGET from the cache, runs to object storage ---------
        reduce_tasks = [
            {
                "cluster_id": self.cluster.cluster_id,
                "cache_prefix": out_prefix,
                "reducer_id": reducer_id,
                "mappers": workers,
                "out_bucket": out_bucket,
                "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
                "codec": self.codec,
                "sort_throughput": self.cost.sort_throughput,
                "cleanup": self.cost.cleanup,
            }
            for reducer_id in range(workers)
        ]
        reduce_futures = yield self.executor.map(cache_shuffle_reducer, reduce_tasks)
        reduce_results = yield self.executor.get_result(reduce_futures)

        runs = tuple(
            SortedRun(
                bucket=out_bucket,
                key=result["output_key"],
                records=result["records"],
                size_bytes=result["bytes"],
            )
            for result in reduce_results
        )
        total_records = sum(run.records for run in runs)
        mapped_records = sum(result["records"] for result in map_results)
        if total_records != mapped_records:
            raise ShuffleError(
                f"shuffle lost records: mapped {mapped_records}, "
                f"reduced {total_records}"
            )
        totals = self.cluster.stats_totals()
        self.report = CacheShuffleReport(
            cluster_id=self.cluster.cluster_id,
            nodes=len(self.cluster.nodes),
            node_type=self.cluster.node_type.name,
            peak_fill_fraction=peak_fill,
            cache_sets=int(totals["sets"]),
            cache_gets=int(totals["gets"]),
            evictions=int(totals["evictions"]),
        )
        return ShuffleResult(
            runs=runs,
            workers=workers,
            planned=plan,
            boundaries=tuple(boundaries),
            total_records=total_records,
            duration_s=self.sim.now - started_at,
        )
