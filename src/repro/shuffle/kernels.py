"""Vectorized record kernels: the shuffle's data-plane fast path.

Every byte of a simulated shuffle used to be touched by per-record pure
Python: ``codec.split`` built one ``bytes`` object per record,
``partition_index`` ran once per record, and reducers sorted Python
lists of byte strings.  This module moves the four hot operations onto
numpy, keeping the scalar path as a byte-identical fallback:

* **key extraction** — a codec that can describe its record layout
  (:meth:`~repro.shuffle.records.RecordCodec.vector_layout`) and an
  order-preserving integer encoding of its keys (a :class:`KeySpec`)
  gets its keys decoded in one shot (``np.frombuffer`` views, no
  per-record objects);
* **partitioning** — ``np.searchsorted`` over the boundary array
  replaces per-record ``partition_index``; a stable ``np.argsort`` on
  the partition ids then gathers the records into per-partition
  segments with a single fancy-index copy (the gathered buffer *is*
  the write-combined object — partitions are ``memoryview`` slices of
  it, joined exactly once);
* **sampling** — window decode in bulk
  (:func:`window_keys`) and vectorized partition-mass counting
  (:func:`partition_counts`) behind
  :func:`~repro.shuffle.sampler.estimate_partition_weights`;
* **merging** — the reducer's sort is a stable ``np.argsort`` over the
  concatenated key array plus one ``take``-ordered gather
  (:func:`sort_buffer`).

Correctness contract
--------------------
The vectorized kernels are **byte-identical** to the scalar codecs.
This rests on two invariants:

1. a :class:`KeySpec` encodes keys into ``uint64`` *strictly
   monotonically and injectively* — equal keys map to equal integers,
   ``a < b`` implies ``enc(a) < enc(b)`` — so ``searchsorted`` agrees
   with ``bisect_right`` and a stable integer argsort agrees with a
   stable sort on the original keys;
2. a vectorizable codec's ``join`` is plain concatenation (true of
   every built-in codec), so the single gathered buffer equals the
   scalar path's per-partition joins.

Anything the kernels cannot prove vectorizable — an opaque ``key_fn``,
a boundary value outside the encoding's domain, a malformed decimal
field — falls back to the scalar path *silently and per call*, so
custom codecs keep working unchanged.  Set ``REPRO_KERNELS=scalar`` to
force the scalar path everywhere (the parity suites and the S14 bench
use this to compare the two paths).
"""

from __future__ import annotations

import bisect
import dataclasses
import os
import time
import typing as t

from repro.errors import ShuffleError

try:  # numpy is a hard dependency of the fast path only: without it
    import numpy as np  # every kernel degrades to the scalar codecs.
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None  # type: ignore[assignment]

#: Kernel labels surfaced in stage results and ``ExchangeReport`` extras.
KERNEL_SCALAR = "scalar"
KERNEL_VECTORIZED = "vectorized"

#: Environment switch: ``REPRO_KERNELS=scalar`` disables the fast path.
KERNEL_MODE_ENV = "REPRO_KERNELS"

_U64_MAX = 2**64 - 1


def kernels_enabled() -> bool:
    """Whether the vectorized path may be used at all."""
    if np is None:
        return False
    return os.environ.get(KERNEL_MODE_ENV, "auto") != "scalar"


class KernelFallback(Exception):
    """Raised inside a kernel when the input escapes the vectorizable
    domain (e.g. a boundary value the key encoding cannot represent);
    callers catch it and run the scalar path."""


# ----------------------------------------------------------------------
# key encodings
# ----------------------------------------------------------------------
class KeySpec:
    """An order-preserving injective ``uint64`` encoding of record keys.

    ``decode`` bulk-extracts the encoded key of every record in a
    buffer; ``to_u64``/``from_u64`` map individual key values (range
    boundaries, group keys) in and out of the encoded space.  Specs are
    picklable: they travel to workers inside codec objects.
    """

    #: True when the encoded integer *is* the scalar key (no
    #: ``from_u64`` mapping needed — saves a per-key call in samplers).
    identity: t.ClassVar[bool] = False

    def decode(self, data, starts, ends):
        """``uint64`` key per record, or ``None`` when undecodable."""
        raise NotImplementedError

    def to_u64(self, key) -> int | None:
        """Encode one scalar key; ``None`` when out of domain."""
        raise NotImplementedError

    def from_u64(self, value: int):
        """Invert :meth:`to_u64` (exact on every decoded value)."""
        raise NotImplementedError


class PrefixKeySpec(KeySpec):
    """Big-endian unsigned prefix of each record (``FixedWidthCodec``)."""

    identity = True

    def __init__(self, key_bytes: int):
        if not 1 <= key_bytes <= 8:
            raise ShuffleError(
                f"prefix keys must be 1..8 bytes to fit uint64, got {key_bytes}"
            )
        self.key_bytes = key_bytes

    def decode(self, data, starts, ends):
        count = len(starts)
        if count == 0:
            return np.empty(0, dtype=np.uint64)
        if int((ends - starts).min()) < self.key_bytes:
            return None  # a record shorter than its key prefix
        # Right-align the key bytes in an 8-byte big-endian word.
        padded = np.zeros((count, 8), dtype=np.uint8)
        stride = int(ends[0] - starts[0])
        tiling = (
            int(starts[0]) == 0
            and int(ends[-1]) == len(data)
            and bool((ends - starts == stride).all())
            and bool((starts[1:] == ends[:-1]).all())
        )
        if tiling:
            # Records tile the buffer (the FixedWidthCodec layout):
            # a strided column slice beats the fancy-index gather ~4x.
            prefix = data.reshape(count, stride)[:, : self.key_bytes]
        else:
            gather = starts[:, None] + np.arange(self.key_bytes, dtype=np.int64)
            prefix = data[gather]
        padded[:, 8 - self.key_bytes :] = prefix
        return padded.view(">u8").ravel().astype(np.uint64)

    def to_u64(self, key) -> int | None:
        if type(key) is not int or not 0 <= key <= _U64_MAX:
            return None
        return key

    def from_u64(self, value: int) -> int:
        return value


class DecimalFieldKeySpec(KeySpec):
    """ASCII-decimal field of a delimited line (``LineRecordCodec``).

    Matches a ``key_fn`` of the form ``int(line.split(sep)[field])`` for
    newline-terminated records.  Lines whose field is missing, empty,
    non-digit, or longer than 18 digits make ``decode`` return ``None``
    (scalar fallback) — the kernel never guesses.
    """

    identity = True
    #: Widest decimal field decoded vectorized; 18 digits < 2**63 so the
    #: digit matmul can never overflow uint64.
    MAX_DIGITS = 18

    def __init__(self, field: int = 0, sep: bytes = b"\t"):
        if field < 0:
            raise ShuffleError(f"field must be >= 0, got {field}")
        if len(sep) != 1:
            raise ShuffleError(f"sep must be a single byte, got {sep!r}")
        self.field = field
        self.sep = sep

    def decode(self, data, starts, ends):
        spans = field_spans(data, starts, ends, self.sep, self.field)
        if spans is None:
            return None
        return decimal_field_values(data, *spans)

    def to_u64(self, key) -> int | None:
        if type(key) is not int or not 0 <= key <= _U64_MAX:
            return None
        return key

    def from_u64(self, value: int) -> int:
        return value


class ReversedKeySpec(KeySpec):
    """Order-reversing wrapper: encodes ``ReversedKey`` values so that
    descending sorts ride the same ascending integer kernels
    (``enc(k) = 2**64 - 1 - inner_enc(k.inner)``)."""

    identity = False

    def __init__(self, inner: KeySpec):
        self.inner = inner

    def decode(self, data, starts, ends):
        values = self.inner.decode(data, starts, ends)
        if values is None:
            return None
        return np.invert(values)  # uint64 bitwise-not == U64_MAX - v

    def to_u64(self, key) -> int | None:
        inner_key = getattr(key, "inner", None)
        if inner_key is None:
            return None
        encoded = self.inner.to_u64(inner_key)
        if encoded is None:
            return None
        return _U64_MAX - encoded

    def from_u64(self, value: int):
        # Imported here: orderby imports records which imports kernels.
        from repro.shuffle.orderby import ReversedKey

        return ReversedKey(self.inner.from_u64(_U64_MAX - value))


# ----------------------------------------------------------------------
# shared vector helpers (used by KeySpecs here and in methcomp)
# ----------------------------------------------------------------------
def field_spans(data, starts, ends, sep: bytes, field: int):
    """Per-record ``[field_start, field_end)`` of a delimited field.

    ``ends`` includes the record's trailing newline; the field never
    does.  Returns ``None`` when any record has too few separators.
    """
    seps = np.flatnonzero(data == sep[0])
    # Sentinel past the buffer end so "no further separator" indexes
    # safely and loses every min() below.
    padded = np.concatenate([seps, [len(data)]])
    field_starts = starts
    for _ in range(field):
        nxt = padded[np.searchsorted(seps, field_starts)]
        field_starts = nxt + 1
    next_sep = padded[np.searchsorted(seps, field_starts)]
    field_ends = np.minimum(next_sep, ends - 1)  # strip trailing newline
    if bool((field_starts > ends - 1).any()):
        return None  # a record ran out of separators before the field
    return field_starts, field_ends


def decimal_field_values(data, field_starts, field_ends):
    """Bulk-parse unsigned ASCII decimals; ``None`` on any malformed one."""
    count = len(field_starts)
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    widths = (field_ends - field_starts).astype(np.int64)
    if bool((widths <= 0).any()):
        return None  # empty field
    max_width = int(widths.max())
    if max_width > DecimalFieldKeySpec.MAX_DIGITS:
        return None
    # Right-aligned digit matrix: column j of row i is the digit at
    # position field_start + j - (max_width - width_i), masked where the
    # (shorter) field has no digit there.
    columns = np.arange(max_width, dtype=np.int64)
    pad = (max_width - widths)[:, None]
    positions = field_starts[:, None] + columns[None, :] - pad
    valid = columns[None, :] >= pad
    digits = data[np.where(valid, positions, field_starts[:, None])].astype(
        np.int64
    ) - ord("0")
    if bool(((digits < 0) | (digits > 9))[valid].any()):
        return None  # sign, decimal point, or other non-digit byte
    digits = np.where(valid, digits, 0).astype(np.uint64)
    powers = (10 ** np.arange(max_width - 1, -1, -1, dtype=np.uint64)).astype(
        np.uint64
    )
    return digits @ powers


def fixed_layout(buffer_len: int, record_size: int):
    """Record offsets of a fixed-width buffer (raises like ``split``)."""
    if buffer_len % record_size != 0:
        raise ShuffleError(
            f"buffer length {buffer_len} is not a multiple of record "
            f"size {record_size}"
        )
    starts = np.arange(0, buffer_len, record_size, dtype=np.int64)
    return starts, starts + record_size


def line_layout(data):
    """Record offsets of a newline-terminated buffer (one per line)."""
    newlines = np.flatnonzero(data == ord("\n"))
    if newlines.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ends = newlines + 1
    starts = np.concatenate([[0], ends[:-1]])
    return starts.astype(np.int64), ends.astype(np.int64)


# ----------------------------------------------------------------------
# outcomes
# ----------------------------------------------------------------------
@dataclasses.dataclass
class PartitionOutcome:
    """One buffer partitioned into per-range segments.

    ``combined`` is the concatenation of every partition segment in
    partition order — exactly the write-combined mapper object — and
    ``offsets[r]`` is partition ``r``'s ``(start, end)`` inside it, so
    per-partition payloads are zero-copy slices materialized only when
    a substrate needs discrete values (:meth:`segments`).
    """

    combined: bytes
    offsets: list[tuple[int, int]]
    partition_records: list[int]
    records: int
    kernel: str
    elapsed_s: float = 0.0

    @property
    def partition_sizes(self) -> list[int]:
        return [end - start for start, end in self.offsets]

    def segment(self, index: int) -> bytes:
        start, end = self.offsets[index]
        return self.combined[start:end]

    def segments(self) -> list[bytes]:
        view = memoryview(self.combined)
        return [bytes(view[start:end]) for start, end in self.offsets]


@dataclasses.dataclass
class SortOutcome:
    """One buffer's records in key order (optionally truncated)."""

    output: bytes
    records: int
    kernel: str
    elapsed_s: float = 0.0


# ----------------------------------------------------------------------
# the record view: one decode, many kernels
# ----------------------------------------------------------------------
class RecordView:
    """A buffer decoded once into offset + key arrays.

    Built by :func:`record_view`; every kernel below operates on slices
    of the same arrays, so chunked operators (streaming, online) decode
    a split once and partition it span by span.
    """

    __slots__ = ("buffer", "data", "starts", "ends", "lengths", "keys", "spec",
                 "count", "_fixed_size")

    def __init__(self, buffer, data, starts, ends, keys, spec: KeySpec):
        self.buffer = buffer
        self.data = data
        self.starts = starts
        self.ends = ends
        self.lengths = ends - starts
        self.keys = keys
        self.spec = spec
        self.count = len(starts)
        # Records tiling the buffer at one width gather via a cheap
        # reshape instead of the repeat/arange index build.
        self._fixed_size = 0
        if self.count and len(buffer) == self.count * int(self.lengths[0]):
            size = int(self.lengths[0])
            if bool((self.lengths == size).all()):
                self._fixed_size = size

    # -- helpers -------------------------------------------------------
    def _bounds_u64(self, boundaries: t.Sequence[t.Any]):
        encoded = []
        for boundary in boundaries:
            value = self.spec.to_u64(boundary)
            if value is None:
                raise KernelFallback(f"boundary {boundary!r} not encodable")
            encoded.append(value)
        return np.asarray(encoded, dtype=np.uint64)

    def can_partition(self, boundaries: t.Sequence[t.Any]) -> bool:
        """Whether every boundary maps into the key encoding."""
        try:
            self._bounds_u64(boundaries)
        except KernelFallback:
            return False
        return True

    def _gather(self, order, lo: int = 0) -> bytes:
        """Bytes of the records ``order`` (indices relative to ``lo``)."""
        if len(order) == 0:
            return b""
        if self._fixed_size:
            size = self._fixed_size
            matrix = self.data.reshape(self.count, size)
            # np.take beats fancy row indexing ~4x on this gather.
            return np.take(matrix, order + lo, axis=0).tobytes()
        sel_starts = self.starts[order + lo]
        sel_lengths = self.lengths[order + lo]
        total = int(sel_lengths.sum())
        if total == 0:
            return b""
        # Narrow byte indices halve the memory traffic of the repeat/
        # arange build — the dominant cost of a variable-length gather.
        dtype = np.int32 if len(self.data) < 1 << 31 else np.int64
        out_starts = np.concatenate([[0], np.cumsum(sel_lengths)[:-1]])
        index = np.repeat(
            (sel_starts - out_starts).astype(dtype), sel_lengths
        ) + np.arange(total, dtype=dtype)
        return np.take(self.data, index).tobytes()

    def span_bytes(self, lo: int, hi: int) -> int:
        """Total bytes of records ``[lo, hi)``."""
        return int(self.ends[hi - 1] - self.starts[lo]) if hi > lo else 0

    @staticmethod
    def _stable_key_order(keys):
        """Stable sort permutation of ``keys``, the fast way.

        ``kind="stable"`` on uint64 is an 8-pass radix sort — ~5x the
        cost of the default introsort on this data.  So: unstable sort
        first, then repair ties (stability only matters *within* runs
        of equal keys, where the stable order is ascending original
        index — ascending permutation values).  Tie repair packs
        ``(run id, index)`` into one uint64 and value-sorts it, so the
        common few-ties case costs one extra comparison pass.
        """
        order = np.argsort(keys)
        sorted_keys = np.take(keys, order)
        changes = sorted_keys[1:] != sorted_keys[:-1]
        if bool(changes.all()):  # all keys distinct: nothing to repair
            return order
        if len(keys) >= 1 << 32:  # packing needs 32-bit ids + indices
            return np.argsort(keys, kind="stable")
        run_ids = np.zeros(len(keys), dtype=np.uint64)
        np.cumsum(changes, out=run_ids[1:])
        packed = (run_ids << np.uint64(32)) | order.astype(np.uint64)
        packed.sort()
        return (packed & np.uint64(0xFFFFFFFF)).astype(np.int64)

    # -- kernels -------------------------------------------------------
    def partition(
        self, boundaries: t.Sequence[t.Any], lo: int = 0, hi: int | None = None
    ) -> PartitionOutcome:
        """Range-partition records ``[lo, hi)`` (default: all).

        Stable-sorts by partition id, so record order inside a
        partition is scan order — byte-identical to the scalar append
        loop.
        """
        hi = self.count if hi is None else hi
        bounds = self._bounds_u64(boundaries)
        parts = len(boundaries) + 1
        keys = self.keys[lo:hi]
        if bounds.size:
            ids = np.searchsorted(bounds, keys, side="right")
        else:
            ids = np.zeros(len(keys), dtype=np.int64)
        # Stable argsort on integers is a radix sort whose cost scales
        # with the dtype width; partition ids fit a byte or two, so
        # narrowing before the sort is a ~6x win on the sort itself.
        if parts <= 1 << 8:
            order = np.argsort(ids.astype(np.uint8), kind="stable")
        elif parts <= 1 << 16:
            order = np.argsort(ids.astype(np.uint16), kind="stable")
        else:
            order = np.argsort(ids, kind="stable")
        combined = self._gather(order, lo)
        counts = np.bincount(ids, minlength=parts).astype(np.int64)
        if self._fixed_size:
            sizes = counts * self._fixed_size
        else:
            sizes = np.bincount(
                ids, weights=self.lengths[lo:hi], minlength=parts
            ).astype(np.int64)
        cuts = np.concatenate([[0], np.cumsum(sizes)]).tolist()
        return PartitionOutcome(
            combined=combined,
            offsets=[(cuts[i], cuts[i + 1]) for i in range(parts)],
            partition_records=counts.tolist(),
            records=hi - lo,
            kernel=KERNEL_VECTORIZED,
        )

    def sorted_output(
        self, record_limit: int | None = None, lo: int = 0, hi: int | None = None
    ) -> SortOutcome:
        """Records ``[lo, hi)`` in key order (stable), optionally top-N."""
        hi = self.count if hi is None else hi
        order = self._stable_key_order(self.keys[lo:hi])
        if record_limit is not None:
            order = order[:record_limit]
        return SortOutcome(
            output=self._gather(order, lo),
            records=len(order),
            kernel=KERNEL_VECTORIZED,
        )

    def chunk_spans(self, chunk_bytes: int) -> list[tuple[int, int]]:
        """Greedy record spans of ~``chunk_bytes`` each.

        Replicates the scalar accumulate-until-threshold loop exactly
        (a chunk closes on the first record that reaches the
        threshold), via one ``searchsorted`` per chunk.
        """
        if self.count == 0:
            return []
        cumulative = np.cumsum(self.lengths)
        spans: list[tuple[int, int]] = []
        lo = 0
        base = 0
        while lo < self.count:
            cut = int(np.searchsorted(cumulative, base + chunk_bytes, side="left"))
            cut = min(cut, self.count - 1)
            spans.append((lo, cut + 1))
            base = int(cumulative[cut])
            lo = cut + 1
        return spans

    def key_objects(self) -> list:
        """Scalar key values, identical to ``[codec.key(r) for r in
        codec.split(buffer)]``."""
        values = self.keys.tolist()
        if self.spec.identity:
            return values
        from_u64 = self.spec.from_u64
        return [from_u64(value) for value in values]

    def group_runs(self) -> list[tuple[t.Any, list[bytes]]]:
        """Records grouped by key, groups in ascending key order.

        Record order inside a group is scan order (stable sort), and
        group keys are decoded back to scalar values — exactly what the
        scalar dict-grouping reducer iterates.
        """
        if self.count == 0:
            return []
        order = self._stable_key_order(self.keys)
        sorted_keys = self.keys[order]
        breaks = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        run_edges = np.concatenate([[0], breaks, [self.count]]).tolist()
        starts = self.starts[order].tolist()
        ends = self.ends[order].tolist()
        view = memoryview(self.buffer)
        runs: list[tuple[t.Any, list[bytes]]] = []
        for run_start, run_end in zip(run_edges, run_edges[1:]):
            key = self.spec.from_u64(int(sorted_keys[run_start]))
            runs.append(
                (
                    key,
                    [
                        bytes(view[starts[i] : ends[i]])
                        for i in range(run_start, run_end)
                    ],
                )
            )
        return runs


def record_view(codec, buffer) -> RecordView | None:
    """Decode ``buffer`` through ``codec``'s vector hooks, or ``None``.

    ``None`` means "use the scalar path": numpy missing, kernels
    disabled, the codec has no vector layout/spec, or the keys escaped
    the spec's domain.  Layout errors that the scalar ``split`` would
    raise (misaligned fixed-width buffer, missing trailing newline)
    propagate as the same :class:`~repro.errors.ShuffleError`.
    """
    if not kernels_enabled():
        return None
    spec = codec.vector_spec()
    if spec is None:
        return None
    layout = codec.vector_layout(buffer)
    if layout is None:
        return None
    starts, ends = layout
    data = np.frombuffer(buffer, dtype=np.uint8)
    keys = spec.decode(data, starts, ends)
    if keys is None:
        return None
    return RecordView(buffer, data, starts, ends, keys, spec)


# ----------------------------------------------------------------------
# stage-facing entry points (vectorized with scalar fallback)
# ----------------------------------------------------------------------
def partition_buffer(
    codec, buffer, boundaries: t.Sequence[t.Any], *, force_scalar: bool = False
) -> PartitionOutcome:
    """Partition every record of ``buffer`` by range boundaries.

    The single partitioning entry point of every mapper stage: tries
    the vectorized kernel, falls back to the scalar
    split/partition_index/join loop, and reports which path ran
    (``outcome.kernel``) plus the real interpreter seconds it took
    (``outcome.elapsed_s`` — wall time, not simulated time)."""
    started = time.perf_counter()
    if not force_scalar:
        view = record_view(codec, buffer)
        if view is not None:
            try:
                outcome = view.partition(boundaries)
            except KernelFallback:
                pass
            else:
                outcome.elapsed_s = time.perf_counter() - started
                return outcome
    records = codec.split(buffer)
    partitions: list[list[bytes]] = [[] for _ in range(len(boundaries) + 1)]
    for record in records:
        partitions[
            bisect.bisect_right(boundaries, codec.key(record))
        ].append(record)
    segments = [codec.join(bucket) for bucket in partitions]
    offsets: list[tuple[int, int]] = []
    cursor = 0
    for segment in segments:
        offsets.append((cursor, cursor + len(segment)))
        cursor += len(segment)
    return PartitionOutcome(
        combined=b"".join(segments),
        offsets=offsets,
        partition_records=[len(bucket) for bucket in partitions],
        records=len(records),
        kernel=KERNEL_SCALAR,
        elapsed_s=time.perf_counter() - started,
    )


def sort_buffer(
    codec, buffer, record_limit: int | None = None, *, force_scalar: bool = False
) -> SortOutcome:
    """Sort every record of ``buffer`` by key (the reducer-side merge).

    Stable in both paths, so equal-key records keep arrival order and
    the output is byte-identical either way."""
    started = time.perf_counter()
    if not force_scalar:
        view = record_view(codec, buffer)
        if view is not None:
            outcome = view.sorted_output(record_limit)
            outcome.elapsed_s = time.perf_counter() - started
            return outcome
    records = codec.split(buffer)
    records.sort(key=codec.key)
    if record_limit is not None:
        records = records[:record_limit]
    return SortOutcome(
        output=codec.join(records),
        records=len(records),
        kernel=KERNEL_SCALAR,
        elapsed_s=time.perf_counter() - started,
    )


def window_keys(
    codec, window, is_first: bool, global_start: int, *, force_scalar: bool = False
) -> tuple[list, int, str]:
    """Keys of the complete records in a sampler window.

    Returns ``(keys, records_seen, kernel)``; the key list is identical
    to ``[codec.key(r) for r in codec.sample_window(...)]`` so pooled
    samples — and therefore the chosen boundaries — do not depend on
    which path ran."""
    if not force_scalar:
        aligned = codec.align_window(window, is_first, global_start)
        if aligned is not None:
            view = record_view(codec, aligned)
            if view is not None:
                return view.key_objects(), view.count, KERNEL_VECTORIZED
    records = codec.sample_window(window, is_first, global_start)
    return [codec.key(record) for record in records], len(records), KERNEL_SCALAR


def grouped_records(
    codec, buffer, *, force_scalar: bool = False
) -> tuple[list[tuple[t.Any, list[bytes]]], int, str]:
    """Records of ``buffer`` grouped by key, ascending key order.

    Returns ``(groups, total_records, kernel)``.  The grouped view the
    GroupBy reducer iterates: identical to building a dict keyed by
    ``codec.key`` and walking ``sorted(groups)``."""
    if not force_scalar:
        view = record_view(codec, buffer)
        if view is not None:
            return view.group_runs(), view.count, KERNEL_VECTORIZED
    records = codec.split(buffer)
    groups: dict[t.Any, list[bytes]] = {}
    for record in records:
        groups.setdefault(codec.key(record), []).append(record)
    return (
        [(key, groups[key]) for key in sorted(groups)],
        len(records),
        KERNEL_SCALAR,
    )


def partition_counts(keys: t.Sequence[t.Any], boundaries: t.Sequence[t.Any]):
    """Vectorized per-partition sample counts, or ``None`` to fall back.

    Only plain non-negative ``int`` keys/boundaries (the fixed-width
    and decimal-line key domains) take the numpy path; anything else —
    tuples, ``ReversedKey``, negative or >64-bit values — returns
    ``None`` and the caller counts with ``bisect``."""
    if not kernels_enabled():
        return None
    if not all(type(key) is int for key in keys):
        return None
    if not all(type(boundary) is int for boundary in boundaries):
        return None
    try:
        key_array = np.asarray(keys, dtype=np.uint64)
        bound_array = np.asarray(boundaries, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError):
        return None
    ids = np.searchsorted(bound_array, key_array, side="right")
    return np.bincount(ids, minlength=len(boundaries) + 1).tolist()


# ----------------------------------------------------------------------
# per-phase profiling counters → ExchangeReport extras
# ----------------------------------------------------------------------
def _phase_stats(results: t.Iterable[dict]) -> tuple[str, float] | None:
    """Fold worker kernel telemetry into ``(kernel_label, records_per_sec)``."""
    kinds: set[str] = set()
    records = 0
    seconds = 0.0
    for result in results:
        kernel = result.get("kernel")
        if not kernel:
            continue
        kinds.add(kernel)
        records += result.get("kernel_records", 0)
        seconds += result.get("kernel_s", 0.0)
    if not kinds:
        return None
    label = kinds.pop() if len(kinds) == 1 else "mixed"
    return label, (records / seconds if seconds > 0 else 0.0)


def kernel_report_extras(
    map_results: t.Iterable[dict], reduce_results: t.Iterable[dict]
) -> dict[str, t.Any]:
    """Uniform kernel counters for ``ExchangeReport.extra``.

    ``records_per_sec`` measures *real interpreter throughput* of the
    record kernels (wall seconds, not simulated time) — the quantity
    the vectorized path exists to improve — and ``kernel`` names which
    path ran (``scalar`` | ``vectorized`` | ``mixed``)."""
    extras: dict[str, t.Any] = {}
    map_stats = _phase_stats(map_results)
    reduce_stats = _phase_stats(reduce_results)
    if map_stats is not None:
        extras["map_kernel"], extras["map_records_per_sec"] = map_stats
    if reduce_stats is not None:
        extras["reduce_kernel"], extras["reduce_records_per_sec"] = reduce_stats
    kinds = {
        stats[0] for stats in (map_stats, reduce_stats) if stats is not None
    }
    if kinds:
        extras["kernel"] = kinds.pop() if len(kinds) == 1 else "mixed"
        total_records = sum(
            result.get("kernel_records", 0)
            for results in (map_results, reduce_results)
            for result in results
        )
        total_seconds = sum(
            result.get("kernel_s", 0.0)
            for results in (map_results, reduce_results)
            for result in results
        )
        extras["records_per_sec"] = (
            total_records / total_seconds if total_seconds > 0 else 0.0
        )
    return extras
