"""Content-addressed exchange: run manifests, replay, lineage cache.

Builds on :mod:`repro.cas` to exploit the repo's byte-determinism
invariant three ways:

* **RunManifest** — every sort emits a hash-chained manifest
  ``inputs → decision → exchange chunks → outputs``.  Each link hashes
  the previous link plus the new section, so a single flipped byte in
  any section breaks every later link.  The chain re-derives offline
  from the manifest alone (``repro-experiments replay-verify``) and,
  when a live store is at hand, the output section re-verifies against
  the actual artifact bytes.
* **LineageCache** — keyed by ``hash(input manifest, plan fingerprint)``;
  a warm re-run of an unchanged (input, plan) pair returns the prior
  output manifest at control-plane cost, without provisioning anything.
  The cache is attached to the object store instance so independent
  simulated clouds never share lineage.

All hashing is interpreter-side (free); only the lineage *lookup*
charges simulated cost (one HEAD on the input).
"""

from __future__ import annotations

import dataclasses
import json
import typing as t

from repro.cas import content_hash, sha256_hex

MANIFEST_VERSION = 1

# Chain section order is load-bearing: h0 covers inputs, each later
# link covers its section plus the previous link.
_SECTIONS = ("inputs", "decision", "chunks", "outputs")


def derive_chain(
    inputs: dict,
    decision: dict,
    chunks: t.Sequence[dict],
    outputs: t.Sequence[dict],
) -> dict:
    h0 = content_hash(inputs)
    h1 = content_hash([h0, decision])
    h2 = content_hash([h1, list(chunks)])
    h3 = content_hash([h2, list(outputs)])
    return {
        "h0": h0,
        "h1": h1,
        "h2": h2,
        "h3": h3,
        "manifest": content_hash([h0, h1, h2, h3]),
    }


@dataclasses.dataclass
class RunManifest:
    """Hash-chained record of one sort run.

    ``chunks`` entries are ``{"key", "sha256", "logical"}`` for every
    exchange chunk the substrate committed (sorted by key so the chain
    is order-independent of wave scheduling); ``outputs`` entries are
    ``{"key", "sha256"}`` over the sorted runs in partition order.
    """

    inputs: dict
    decision: dict
    chunks: list
    outputs: list
    chain: dict
    version: int = MANIFEST_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "inputs": dict(self.inputs),
            "decision": dict(self.decision),
            "chunks": [dict(entry) for entry in self.chunks],
            "outputs": [dict(entry) for entry in self.outputs],
            "chain": dict(self.chain),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        return cls(
            inputs=dict(payload["inputs"]),
            decision=dict(payload["decision"]),
            chunks=[dict(entry) for entry in payload["chunks"]],
            outputs=[dict(entry) for entry in payload["outputs"]],
            chain=dict(payload["chain"]),
            version=int(payload.get("version", MANIFEST_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))


def build_run_manifest(
    *,
    inputs: dict,
    decision: dict,
    chunks: t.Iterable[tuple[str, str, float]],
    outputs: t.Sequence[dict],
) -> RunManifest:
    """Assemble a manifest from raw sections and seal the chain."""
    chunk_entries = [
        {"key": key, "sha256": sha, "logical": float(logical)}
        for key, sha, logical in sorted(chunks)
    ]
    output_entries = [dict(entry) for entry in outputs]
    chain = derive_chain(inputs, decision, chunk_entries, output_entries)
    return RunManifest(
        inputs=dict(inputs),
        decision=dict(decision),
        chunks=chunk_entries,
        outputs=output_entries,
        chain=chain,
    )


def verify_manifest(
    manifest: "RunManifest | dict",
    *,
    store: t.Any = None,
) -> list[str]:
    """Re-derive the hash chain; return a list of problems (empty = PASS).

    Offline mode (``store=None``) checks internal consistency only:
    every chain link must match a fresh derivation from the embedded
    sections, so tampering with any section (or the chain itself) is
    loud.  With a ``store``, each output artifact is additionally
    peeked and re-hashed against its recorded content address, so a
    mutated *stored* artifact also fails.
    """
    if isinstance(manifest, RunManifest):
        manifest = manifest.to_dict()
    problems: list[str] = []
    for section in _SECTIONS + ("chain",):
        if section not in manifest:
            problems.append(f"missing section: {section}")
    if problems:
        return problems
    derived = derive_chain(
        manifest["inputs"],
        manifest["decision"],
        manifest["chunks"],
        manifest["outputs"],
    )
    for link, expected in derived.items():
        recorded = manifest["chain"].get(link)
        if recorded != expected:
            problems.append(
                f"chain link {link} mismatch: manifest={recorded} derived={expected}"
            )
    if store is not None:
        bucket = manifest["inputs"].get("bucket")
        for entry in manifest["outputs"]:
            data = _peek(store, entry.get("bucket", bucket), entry["key"])
            if data is None:
                problems.append(f"output missing from store: {entry['key']}")
            elif sha256_hex(data) != entry["sha256"]:
                problems.append(f"output bytes tampered: {entry['key']}")
    return problems


def _peek(store: t.Any, bucket: str, key: str) -> bytes | None:
    # peek raises NoSuchKey/NoSuchBucket on absence; absence is a
    # verification verdict here, not an error.
    try:
        return store.peek(bucket, key)
    except Exception:
        return None


def verify_manifest_file(path: str) -> list[str]:
    """Offline replay-verify of a manifest JSON file (the CLI path)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return verify_manifest(payload)


# --------------------------------------------------------------------------
# Lineage cache


@dataclasses.dataclass
class LineageEntry:
    key: str
    artifact: dict
    hits: int = 0


class LineageCache:
    """(input, plan) → prior output manifest, per simulated cloud."""

    def __init__(self) -> None:
        self._entries: dict[str, LineageEntry] = {}

    @staticmethod
    def fingerprint(input_meta: dict, plan: dict) -> str:
        return content_hash({"input": input_meta, "plan": plan})

    def get(self, key: str) -> LineageEntry | None:
        return self._entries.get(key)

    def put(self, key: str, artifact: dict) -> None:
        self._entries[key] = LineageEntry(key=key, artifact=dict(artifact))

    def __len__(self) -> int:
        return len(self._entries)


def lineage_cache_for(store: t.Any) -> LineageCache:
    """The store-scoped lineage cache (created lazily).

    Keyed off the object store *instance* — the artifact bytes live
    there, so a fresh cloud naturally starts cold and two concurrent
    clouds can never cross-hit.
    """
    cache = getattr(store, "_repro_lineage_cache", None)
    if cache is None:
        cache = LineageCache()
        store._repro_lineage_cache = cache
    return cache


def lineage_outputs_present(store: t.Any, artifact: dict) -> bool:
    """Cheap residency check before honouring a lineage hit.

    ``peek`` is interpreter-side and free; if any prior output was
    deleted or overwritten with different bytes the hit degrades to a
    miss instead of returning a stale manifest.
    """
    runs = artifact.get("runs") or []
    if not runs:
        return False
    for run in runs:
        if _peek(store, run["bucket"], run["key"]) is None:
            return False
    return True
