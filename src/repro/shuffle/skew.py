"""Skewed shuffle workloads: Zipf, heavy-duplicate and sorted-runs keys.

Every sweep historically sorted uniform random keys, so range
boundaries landed near-equal partitions and the fleet's hash routing
never saw a hot shard.  Real pipelines are not so kind: key popularity
is Zipf-ish, ETL inputs arrive in partially sorted runs, and duplicate
keys are indivisible — a reducer owns *all* of a key's records, however
hot the key.  This module is the single place the repository generates
such workloads:

* :class:`SkewSpec` — the distribution knobs, shared by the fixed-width
  payload builders here, the bedMethyl dataset generator
  (:func:`repro.methcomp.datagen.generate_skewed_bed_bytes`) and the
  experiment harness (``ExperimentConfig.key_distribution``);
* :func:`skewed_keys` — a deterministic stream of integer keys drawn
  from the spec's distribution;
* :func:`skewed_fixed_payload` — ready-to-shuffle fixed-width records
  (``FixedWidthCodec(record_size=16, key_bytes=8)``) for the parity,
  chaos and routing tests.

Distributions (``KEY_DISTRIBUTIONS``):

``uniform``
    Independent keys uniform over the key space — the historical
    baseline every other distribution is contrasted with.
``zipf``
    ``distinct_keys`` duplicate values whose frequencies follow a
    Zipf(``zipf_s``) law over popularity rank.  The rank→key mapping is
    a deterministic shuffle of evenly spread values, so the hot keys
    land in different parts of the key space instead of piling up at
    zero.  Duplicates are the point: a hot key's mass cannot be split
    by better boundaries, so it stresses routing and the straggler
    term, not just the sampler.
``heavy-dup``
    ``distinct_keys`` duplicate values with *uniform* frequencies —
    boundary-duplication stress without rank skew.
``sorted-runs``
    Uniform keys pre-sorted in runs of ``run_length`` — the
    partially-ordered input shape of incremental ETL.  Key mass is
    uniform but each input split covers few ranges, so per-(mapper,
    partition) segment sizes are extremely uneven.
``late-hot``
    Uniform keys for the leading ``1 - late_hot_fraction`` of the
    stream, then a single hot key claiming ``late_hot_share`` of the
    tail.  Pre-flight samples (and even strided ones) see a uniform
    workload; the hot partition only *emerges* mid-stream — the
    adversarial input for online re-selection and chunk-grain
    rerouting (Benchmark S12).
"""

from __future__ import annotations

import dataclasses
import itertools
import random
import typing as t

from repro.errors import ShuffleError

#: Key distributions understood by :func:`skewed_keys` (and everything
#: built on it: dataset stages, ``ExperimentConfig``, the S11 sweep).
KEY_DISTRIBUTIONS = ("uniform", "zipf", "heavy-dup", "sorted-runs", "late-hot")


@dataclasses.dataclass(frozen=True, slots=True)
class SkewSpec:
    """Knobs of a skewed key workload."""

    #: One of :data:`KEY_DISTRIBUTIONS`.
    distribution: str = "zipf"
    #: Zipf exponent (``zipf`` only): frequency of rank ``r`` is
    #: proportional to ``1 / r**zipf_s``.  Larger is hotter.
    zipf_s: float = 1.2
    #: Distinct key values of the duplicate-heavy distributions
    #: (``zipf``/``heavy-dup``).
    distinct_keys: int = 64
    #: Ascending-run length of ``sorted-runs``.
    run_length: int = 256
    #: Trailing fraction of the stream where ``late-hot``'s hot key
    #: lives.  Everything before it is plain uniform.
    late_hot_fraction: float = 0.25
    #: Probability a tail record *is* the hot key (``late-hot`` only);
    #: the rest of the tail stays uniform.
    late_hot_share: float = 0.8
    #: Keys are integers in ``[0, key_space)``.
    key_space: int = 1 << 48

    def validate(self) -> None:
        if self.distribution not in KEY_DISTRIBUTIONS:
            raise ShuffleError(
                f"unknown key distribution {self.distribution!r}; expected "
                f"one of {KEY_DISTRIBUTIONS}"
            )
        if self.zipf_s <= 0:
            raise ShuffleError(f"zipf_s must be positive, got {self.zipf_s}")
        if self.distinct_keys < 1:
            raise ShuffleError(
                f"distinct_keys must be >= 1, got {self.distinct_keys}"
            )
        if self.run_length < 1:
            raise ShuffleError(f"run_length must be >= 1, got {self.run_length}")
        if not 0.0 < self.late_hot_fraction <= 1.0:
            raise ShuffleError(
                "late_hot_fraction must be in (0, 1], got "
                f"{self.late_hot_fraction}"
            )
        if not 0.0 < self.late_hot_share <= 1.0:
            raise ShuffleError(
                f"late_hot_share must be in (0, 1], got {self.late_hot_share}"
            )
        if self.key_space < 1:
            raise ShuffleError(f"key_space must be >= 1, got {self.key_space}")


def zipf_weights(count: int, exponent: float) -> list[float]:
    """Normalized Zipf frequencies for ranks ``1..count``."""
    if count < 1:
        raise ShuffleError(f"count must be >= 1, got {count}")
    if exponent <= 0:
        raise ShuffleError(f"exponent must be positive, got {exponent}")
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def _spread_values(distinct: int, key_space: int, rng: random.Random) -> list[int]:
    """``distinct`` evenly spread key values in rank order.

    Values are spaced across the key space (so range boundaries can
    separate them) and then deterministically shuffled, so popularity
    rank is independent of key *order* — the hot key is somewhere in
    the middle of the range, as in real data, not always the minimum.
    """
    step = max(1, key_space // distinct)
    values = [(index * step + step // 2) % key_space for index in range(distinct)]
    rng.shuffle(values)
    return values


def skewed_keys(count: int, spec: SkewSpec, rng: random.Random) -> list[int]:
    """``count`` integer keys drawn from the spec's distribution."""
    spec.validate()
    if count < 0:
        raise ShuffleError(f"count must be >= 0, got {count}")
    if spec.distribution == "uniform":
        return [rng.randrange(spec.key_space) for _ in range(count)]
    if spec.distribution == "zipf":
        values = _spread_values(spec.distinct_keys, spec.key_space, rng)
        cumulative = list(
            itertools.accumulate(zipf_weights(spec.distinct_keys, spec.zipf_s))
        )
        return rng.choices(values, cum_weights=cumulative, k=count)
    if spec.distribution == "heavy-dup":
        values = _spread_values(spec.distinct_keys, spec.key_space, rng)
        return [values[rng.randrange(spec.distinct_keys)] for _ in range(count)]
    if spec.distribution == "late-hot":
        hot_key = _spread_values(1, spec.key_space, rng)[0]
        head = count - int(count * spec.late_hot_fraction)
        keys = [rng.randrange(spec.key_space) for _ in range(head)]
        keys.extend(
            hot_key
            if rng.random() < spec.late_hot_share
            else rng.randrange(spec.key_space)
            for _ in range(count - head)
        )
        return keys
    # sorted-runs: uniform mass, locally ascending order.
    keys = [rng.randrange(spec.key_space) for _ in range(count)]
    for start in range(0, count, spec.run_length):
        keys[start : start + spec.run_length] = sorted(
            keys[start : start + spec.run_length]
        )
    return keys


def skewed_fixed_payload(
    count: int, spec: SkewSpec, seed: int, record_size: int = 16
) -> bytes:
    """A fixed-width record payload whose 8-byte keys follow ``spec``.

    Shuffle-ready with ``FixedWidthCodec(record_size=16, key_bytes=8)``
    — the synthetic payload shape the parity/chaos suites use, now with
    a pluggable key distribution.
    """
    if record_size < 8:
        raise ShuffleError(f"record_size must be >= 8, got {record_size}")
    rng = random.Random(seed)
    return b"".join(
        key.to_bytes(8, "big") + bytes(record_size - 8)
        for key in skewed_keys(count, spec, rng)
    )
