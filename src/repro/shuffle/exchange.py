"""The unified exchange-substrate interface of the shuffle operator.

The paper's headline comparison is *where the all-to-all happens*:
object storage, an in-memory cache cluster, or a VM relay.  Everything
else about the shuffle — sampling, range partitioning, the map/reduce
orchestration, the sorted-run artifact — is substrate-independent, so
the generic :class:`~repro.shuffle.operator.ShuffleSort` drives one
:class:`ExchangeBackend` and the substrates differ only in:

* **feasibility** (:meth:`ExchangeBackend.validate`) — provisioned
  substrates have finite memory; object storage does not;
* **planning** (:meth:`ExchangeBackend.plan`) — each substrate has its
  own analytic cost model picking the worker count;
* **worker stages and task payloads** — how a mapper publishes its
  partitions and how a reducer collects its range;
* **reporting** (:meth:`ExchangeBackend.report`) — every backend emits
  one uniform :class:`ExchangeReport` carrying the substrate decision
  inputs (predicted vs actual runtime, provisioned-infrastructure cost)
  plus substrate-specific extras (cache fill, relay backpressure, ...)
  reachable as plain attributes.

Fault handling and speculation are substrate-independent by design:
every worker talks to its substrate through clients bound to the
activation's *attempt id*
(:attr:`~repro.cloud.faas.context.FunctionContext.attempt_id`), so when
the platform kills an attempt — crash, timeout, or a lost speculative
race — the substrate reclaims that attempt's in-flight state and fences
the attempt out.  Object storage is idempotent by content (a retried
mapper overwrites the same keys); the cache and relay rely on the
attempt-scoped cancellation above.  All three therefore support
executor retries *and* speculative backup tasks
(:attr:`ExchangeBackend.supports_speculation`).

Backends: :class:`ObjectStoreExchange` (here),
:class:`~repro.shuffle.cacheoperator.CacheExchange`,
:class:`~repro.shuffle.relay.RelayExchange` and
:class:`~repro.shuffle.relay.ShardedRelayExchange` — each with a
pipelined *streaming* twin in :mod:`repro.shuffle.streaming`, where the
reduce wave overlaps the map wave behind the substrate's per-partition
readiness protocol.
"""

from __future__ import annotations

import abc
import dataclasses
import typing as t

from repro.cloud.profiles import CloudProfile
from repro.obs.metrics import publish_exchange_report
from repro.shuffle.planner import ShuffleCostModel, ShufflePlan, plan_shuffle
from repro.shuffle.records import RecordCodec
from repro.shuffle.stages import shuffle_mapper, shuffle_reducer
from repro.storage import paths

#: Field names an ``extra`` entry may never shadow.
_COMMON_FIELDS = (
    "substrate",
    "workers",
    "predicted_s",
    "actual_s",
    "provisioned_usd",
    "overlap_s",
    "buffer_high_watermark_bytes",
    "partition_skew",
    "extra",
)


@dataclasses.dataclass(frozen=True)
class ExchangeReport:
    """Uniform per-sort execution report, identical across substrates.

    The common fields are exactly the inputs of the adaptive substrate
    decision — what the planner predicted, what actually happened, and
    what the provisioned infrastructure cost over the sort — so sweeps
    and the workflow engine can compare substrates without
    per-substrate special cases.  Substrate-specific metadata lives in
    ``extra`` and is reachable as plain attributes
    (``report.backpressure_waits``) for ergonomic call sites.

    Every constructed report also publishes into the process-wide
    metrics registry (:mod:`repro.obs.metrics`), so the report is a
    per-sort *view* and the registry holds the cross-run aggregate —
    one series namespace (``repro_exchange_*``) whichever construction
    path built the report.  Construction asserts that no ``extra`` key
    shadows a common field: shadowing would make ``as_dict()`` and the
    attribute passthrough silently disagree.
    """

    substrate: str
    workers: int
    #: Planner-predicted sort time; ``None`` when the caller pinned the
    #: worker count (no plan was computed).
    predicted_s: float | None
    #: Measured wall-clock of the sort.
    actual_s: float
    #: Provisioned-infrastructure dollars over ``actual_s`` — with the
    #: provider's minimum billed window applied, matching both what the
    #: cost meter actually charges and how ``choose_exchange_substrate``
    #: prices the same configuration; 0 for pay-as-you-go COS.
    provisioned_usd: float
    #: Wall-clock seconds the map and reduce waves ran concurrently — 0
    #: for a staged sort (the reduce wave starts after the map barrier),
    #: positive for the streaming execution mode.  Uniform so sweeps can
    #: report the streaming benefit without per-mode special cases.
    overlap_s: float = 0.0
    #: Peak logical bytes parked in reducer-side stream buffers (0 for
    #: staged sorts, which fetch everything in one batch).
    buffer_high_watermark_bytes: float = 0.0
    #: Max-over-mean reducer output bytes, measured on the sorted runs
    #: (1.0 is perfectly balanced).  Uniform across substrates — the
    #: same dataset and boundaries must report the same skew whichever
    #: substrate carried the exchange — so sweeps can contrast the
    #: skew-aware planner's straggler term with what actually happened.
    partition_skew: float = 1.0
    #: Substrate-specific metadata (fill fractions, request counters...).
    extra: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        shadowed = [key for key in self.extra if key in _COMMON_FIELDS]
        if shadowed:
            raise ValueError(
                f"exchange report extra keys shadow common fields: {shadowed}"
            )
        publish_exchange_report(self)

    def __getattr__(self, name: str) -> t.Any:
        # Convenience passthrough: substrate extras read like fields.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self.__dict__["extra"][name]
        except KeyError:
            raise AttributeError(
                f"{self.substrate!r} exchange report has no field {name!r}"
            ) from None

    def as_dict(self) -> dict[str, t.Any]:
        """Common fields + extras, flattened (extras never shadow)."""
        out: dict[str, t.Any] = {
            "substrate": self.substrate,
            "workers": self.workers,
            "predicted_s": self.predicted_s,
            "actual_s": self.actual_s,
            "provisioned_usd": self.provisioned_usd,
            "overlap_s": self.overlap_s,
            "buffer_high_watermark_bytes": self.buffer_high_watermark_bytes,
            "partition_skew": self.partition_skew,
        }
        for key, value in self.extra.items():
            out.setdefault(key, value)
        return out

    def describe(self) -> str:
        """Fixed-width field table — the uniform printer sweeps use.

        Common fields first (the substrate-decision inputs), extras
        after in insertion order, one ``name  value`` row each.
        """
        rows = list(self.as_dict().items())
        width = max(len(name) for name, _value in rows)
        lines = [f"exchange report ({self.substrate}):"]
        for name, value in rows:
            if isinstance(value, float):
                rendered = f"{value:.6g}"
            else:
                rendered = str(value)
            lines.append(f"  {name.ljust(width)}  {rendered}")
        return "\n".join(lines)


class ExchangeBackend(abc.ABC):
    """One intermediate-data substrate, as seen by the shuffle operator.

    The operator calls ``validate`` → ``plan`` → ``mapper_task``\\* →
    ``on_map_done`` → ``reducer_task``\\* → ``report`` over each sort; a
    backend may serve several sequential sorts (a reused operator), so
    per-sort bookkeeping (stat baselines, peaks) belongs in
    ``validate``.  The ``cost`` attribute must expose the shared
    workload constants (``peek_bytes``, ``sample_bytes``,
    ``sample_keys``, ``partition_throughput``, ``sort_throughput``).
    """

    #: Substrate name as it appears in sweeps and reports.
    name: t.ClassVar[str]
    #: Execution mode: "staged" (map barrier before the reduce wave) or
    #: "streaming" (pipelined waves, see :mod:`repro.shuffle.streaming`).
    mode: t.ClassVar[str] = "staged"
    #: Prefix of the operator's simulation process names.
    process_label: t.ClassVar[str]
    #: Default output prefix of :meth:`ShuffleSort.sort`.
    default_out_prefix: t.ClassVar[str]
    #: Whether speculative backup tasks are safe on this substrate.
    #: True for all built-ins since attempt-scoped cancellation fences
    #: losing attempts out of stateful substrates.
    supports_speculation: t.ClassVar[bool] = True

    cost: t.Any

    def bind_executor(self, executor: t.Any) -> None:
        """Hook at operator construction, giving the backend a handle on
        the driving executor (and through it the simulated cloud).  The
        object-storage substrate uses it to read the store's dedup
        counters into its report; the default is a no-op."""

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        """Content-address log of this sort's exchange chunks under
        ``prefix`` — ``(key, sha256, logical_bytes)`` triples, one per
        dedup-eligible commit — feeding the verifiable
        :class:`~repro.shuffle.content.RunManifest`.  Backends without a
        content log contribute an empty chunk section (the manifest
        chain still covers inputs, decisions and outputs)."""
        return []

    def begin_sort(self, out_bucket: str, out_prefix: str) -> None:
        """Hook at sort start, before ``validate``, once the operator has
        resolved the output namespace.  Backends that scope shared-
        substrate state per exchange (the sharded fleet's router table is
        keyed by the sort's key-prefix namespace) capture the prefix
        here; the default is a no-op."""

    def validate(self, logical_size: float) -> None:
        """Raise :class:`~repro.errors.ShuffleError` when the shuffle
        cannot fit this substrate; no-op by default."""

    @abc.abstractmethod
    def plan(
        self, logical_size: float, profile: CloudProfile, max_workers: int
    ) -> ShufflePlan:
        """Pick the worker count with this substrate's cost model."""

    @abc.abstractmethod
    def mapper_stage(self) -> t.Callable:
        """The sim-aware generator function run by every mapper."""

    @abc.abstractmethod
    def reducer_stage(self) -> t.Callable:
        """The sim-aware generator function run by every reducer."""

    @abc.abstractmethod
    def mapper_task(
        self, base: dict, mapper_id: int, out_bucket: str, out_prefix: str
    ) -> dict:
        """Complete one mapper payload from the substrate-neutral base."""

    @abc.abstractmethod
    def reducer_task(
        self,
        reducer_id: int,
        workers: int,
        map_tasks: list[dict],
        map_results: list[dict],
        out_bucket: str,
        out_prefix: str,
        codec: RecordCodec,
    ) -> dict:
        """Build one reducer payload (may consult the map results)."""

    def on_boundaries(
        self, boundaries: t.Sequence[t.Any], predicted_partition_bytes: t.Sequence[float]
    ) -> None:
        """Hook after boundary selection, before any exchange traffic.

        ``predicted_partition_bytes`` is the sample-based load estimate
        per partition (logical bytes).  The sharded relay fleet uses it
        to install load-aware shard routing; the default is a no-op.
        """

    def on_map_done(self, map_results: list[dict]) -> None:
        """Hook between the map and reduce waves (e.g. record peak fill)."""

    def provisioned_rate_usd_per_s(self) -> float:
        """Dollars per second of provisioned infrastructure (0 for COS)."""
        return 0.0

    def minimum_billed_s(self) -> float:
        """The provider's minimum billed window for this substrate's
        provisioned infrastructure (0 for pay-as-you-go)."""
        return 0.0

    def extra_report(self) -> dict[str, t.Any]:
        """Substrate-specific additions to the uniform report."""
        return {}

    def report(
        self,
        workers: int,
        plan: ShufflePlan | None,
        duration_s: float,
        overlap_s: float = 0.0,
        buffer_high_watermark_bytes: float = 0.0,
        partition_skew: float = 1.0,
        extra: dict[str, t.Any] | None = None,
    ) -> ExchangeReport:
        """The uniform per-sort report; backends customize via the
        hooks above rather than overriding this.  The operator passes
        the wave-overlap, buffer and partition-skew observations it
        alone can measure (overlap/buffers are zero for staged sorts);
        ``extra`` adds operator-side metadata on top of
        :meth:`extra_report` (operator keys win)."""
        billed_s = max(duration_s, self.minimum_billed_s())
        merged: dict[str, t.Any] = {"mode": self.mode}
        merged.update(self.extra_report())
        if extra:
            merged.update(extra)
        return ExchangeReport(
            substrate=self.name,
            workers=workers,
            predicted_s=plan.predicted_s if plan is not None else None,
            actual_s=duration_s,
            provisioned_usd=self.provisioned_rate_usd_per_s() * billed_s,
            overlap_s=overlap_s,
            buffer_high_watermark_bytes=buffer_high_watermark_bytes,
            partition_skew=partition_skew,
            extra=merged,
        )


class ObjectStoreExchange(ExchangeBackend):
    """The paper's serverless default: all-to-all through object storage.

    Mappers write (write-combined) partition objects, reducers range-GET
    their segments — pay-as-you-go requests, no provisioned capacity,
    but per-request latency and the account ops/s ceiling at high worker
    counts.
    """

    name = "objectstore"
    process_label = "shuffle"
    default_out_prefix = "shuffle-out"

    def __init__(self, cost: ShuffleCostModel | None = None):
        self.cost = cost if cost is not None else ShuffleCostModel()
        self._store = None
        self._dedup_baseline = (0, 0.0)

    def bind_executor(self, executor: t.Any) -> None:
        self._store = executor.cloud.store

    def validate(self, logical_size: float) -> None:
        # Per-sort bookkeeping: dedup counters are reported as deltas
        # over the sort, so a reused operator doesn't double-count.
        if self._store is not None:
            self._dedup_baseline = (
                self._store.stats.dedup_ops,
                self._store.stats.dedup_bytes,
            )

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        if self._store is None:
            return []
        return self._store.cas_entries(prefix)

    def extra_report(self) -> dict[str, t.Any]:
        if self._store is None:
            return {}
        base_ops, base_bytes = self._dedup_baseline
        return {
            "dedup_ops": self._store.stats.dedup_ops - base_ops,
            "dedup_bytes": self._store.stats.dedup_bytes - base_bytes,
        }

    def plan(
        self, logical_size: float, profile: CloudProfile, max_workers: int
    ) -> ShufflePlan:
        return plan_shuffle(logical_size, profile, self.cost, max_workers=max_workers)

    def mapper_stage(self) -> t.Callable:
        return shuffle_mapper

    def reducer_stage(self) -> t.Callable:
        return shuffle_reducer

    def mapper_task(
        self, base: dict, mapper_id: int, out_bucket: str, out_prefix: str
    ) -> dict:
        base.update(
            out_bucket=out_bucket,
            out_key=paths.shuffle_map_output_key(out_prefix, mapper_id),
            write_combining=self.cost.write_combining,
        )
        return base

    def reducer_task(
        self,
        reducer_id: int,
        workers: int,
        map_tasks: list[dict],
        map_results: list[dict],
        out_bucket: str,
        out_prefix: str,
        codec: RecordCodec,
    ) -> dict:
        if self.cost.write_combining:
            segments = [
                (
                    map_tasks[mapper_id]["out_key"],
                    *map_results[mapper_id]["offsets"][reducer_id],
                )
                for mapper_id in range(workers)
            ]
        else:
            segments = [
                (map_results[mapper_id]["partition_keys"][reducer_id], None, None)
                for mapper_id in range(workers)
            ]
        return {
            "out_bucket": out_bucket,
            "segments": segments,
            "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
            "codec": codec,
            "sort_throughput": self.cost.sort_throughput,
            "fetch_parallelism": self.cost.fetch_parallelism,
        }
