"""Worker-side stages of the object-storage shuffle.

Three sim-aware functions executed through a
:class:`~repro.executor.FunctionExecutor` (or the VM-backed standalone
executor — they are substrate-portable):

* :func:`shuffle_sampler` — reads a window of its split and returns a
  key sample for boundary selection;
* :func:`shuffle_mapper` — reads its record-aligned split, partitions
  records by range, and writes **one combined object** (all partitions
  concatenated, plus an offset table returned to the driver).  This is
  the write-combining I/O optimization: ``W`` PUTs per map phase instead
  of ``W²``;
* :func:`shuffle_reducer` — range-GETs its segment from every mapper
  output (batched for latency hiding), sorts the records, and writes one
  sorted run.

All payloads are plain picklable dicts, so the stages ride the normal
executor data path through object storage.
"""

from __future__ import annotations

import typing as t

from repro.shuffle import kernels
from repro.shuffle.records import RecordCodec
from repro.shuffle.sampler import reservoir_sample


def _sample_windows(
    start: int, end: int, sample_bytes: int, strides: int
) -> list[tuple[int, int]]:
    """Byte windows of one sampler's split: ``strides`` spread slices.

    The sampling budget is split over ``strides`` windows placed at the
    starts of equal sub-spans of ``[start, end)`` — a single
    head-of-split window (``strides=1``, the old behaviour) only ever
    sees the *low-key head of each locally-ascending run* on
    ``sorted-runs`` inputs, biasing the weighted boundaries; spreading
    the same bytes restores uniform positional coverage.
    """
    span = end - start
    if strides <= 1 or span <= sample_bytes:
        return [(start, min(end, start + sample_bytes))]
    per_window = max(1, sample_bytes // strides)
    step, remainder = divmod(span, strides)
    windows: list[tuple[int, int]] = []
    cursor = start
    for index in range(strides):
        sub_end = cursor + step + (1 if index < remainder else 0)
        window_end = min(sub_end, cursor + per_window)
        if window_end > cursor:
            windows.append((cursor, window_end))
        cursor = sub_end
    return windows


def shuffle_sampler(ctx, task: dict) -> t.Generator:
    """Sample record keys from one input split.

    Task fields: ``bucket, key, start, end, object_size, sample_bytes,
    sample_keys, codec, seed``, and optional ``sample_strides`` (number
    of windows the sampling budget is spread over — see
    :func:`_sample_windows`).
    """
    codec: RecordCodec = task["codec"]
    strides = max(1, int(task.get("sample_strides", 1)))
    keys: list = []
    records_seen = 0
    for window_start, window_end in _sample_windows(
        task["start"], task["end"], task["sample_bytes"], strides
    ):
        window = yield ctx.storage.get_range(
            task["bucket"], task["key"], window_start, window_end
        )
        # Vectorized window decode when the codec supports it; the key
        # list is identical either way, so the reservoir draws — and
        # therefore the chosen boundaries — do not depend on the path.
        window_keys, window_records, _kernel = kernels.window_keys(
            codec, window, is_first=(window_start == 0), global_start=window_start
        )
        keys.extend(window_keys)
        records_seen += window_records
    rng = ctx.rng(f"sampler-{task.get('sampler_id', 0)}")
    sample = reservoir_sample(keys, task["sample_keys"], rng) if keys else []
    return {"keys": sample, "records_seen": records_seen}


def shuffle_mapper(ctx, task: dict) -> t.Generator:
    """Partition one record-aligned split into range buckets.

    Task fields: ``bucket, key, start, end, object_size, peek_bytes,
    boundaries, codec, out_bucket, out_key, partition_throughput,
    write_combining``.

    With write-combining (Primula's optimization) the mapper PUTs one
    combined object and returns the offset table ``offsets[r] =
    (seg_start, seg_end)`` of reducer ``r``'s segment inside it.
    Without it (the naive all-to-all the paper warns about) the mapper
    PUTs one object per partition — ``W²`` PUTs per map phase overall —
    and returns the per-partition key list instead.
    """
    codec: RecordCodec = task["codec"]
    start, end = task["start"], task["end"]
    object_size = task["object_size"]
    window_end = min(object_size, end + task["peek_bytes"])
    raw = yield ctx.storage.get_range(task["bucket"], task["key"], start, window_end)
    base, tail = raw[: end - start], raw[end - start :]
    owned = codec.extract_split(
        base,
        tail,
        is_first=(start == 0),
        at_end=(end >= object_size),
        global_start=start,
    )

    outcome = kernels.partition_buffer(codec, owned, task["boundaries"])
    yield ctx.compute_bytes(len(owned), task["partition_throughput"])

    if task.get("write_combining", True):
        # One object holding every partition segment — the vectorized
        # kernel's gathered buffer *is* this object (zero extra joins).
        yield ctx.storage.put(
            task["out_bucket"], task["out_key"], outcome.combined, dedup=True
        )
        return {
            "offsets": outcome.offsets,
            "records": outcome.records,
            "partition_records": outcome.partition_records,
            "bytes": len(outcome.combined),
            "out_key": task["out_key"],
            "kernel": outcome.kernel,
            "kernel_records": outcome.records,
            "kernel_s": outcome.elapsed_s,
        }

    # Naive mode: one object per (mapper, partition) pair.
    partition_keys = []
    for reducer_id in range(len(outcome.offsets)):
        partition_key = f"{task['out_key']}.p{reducer_id:05d}"
        partition_keys.append(partition_key)
        yield ctx.storage.put(
            task["out_bucket"], partition_key, outcome.segment(reducer_id), dedup=True
        )
    return {
        "partition_keys": partition_keys,
        "records": outcome.records,
        "partition_records": outcome.partition_records,
        "bytes": len(outcome.combined),
        "out_key": task["out_key"],
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }


def shuffle_reducer(ctx, task: dict) -> t.Generator:
    """Fetch, sort and write one output partition.

    Task fields: ``out_bucket, segments`` (list of ``(key, start, end)``
    into mapper outputs; ``start``/``end`` of ``None`` means a whole
    object, as produced by naive non-write-combined mappers),
    ``output_key, codec, sort_throughput, fetch_parallelism``, and an
    optional ``record_limit`` keeping only the first N sorted records
    (top-k queries truncate their final partition this way).
    """
    codec: RecordCodec = task["codec"]
    segments = [
        (key, start, end)
        for key, start, end in task["segments"]
        if start is None or end > start
    ]
    parallelism = max(1, task["fetch_parallelism"])
    # Split the instance NIC across the concurrent streams so batching
    # hides request latency without inventing bandwidth.
    fetch_storage = ctx.storage
    if parallelism > 1 and ctx.storage.connection_bandwidth is not None:
        fetch_storage = ctx.storage.bounded(
            ctx.storage.connection_bandwidth / parallelism
        )

    chunks: dict[int, bytes] = {}

    def fetch_one(index: int, key: str, seg_start, seg_end) -> t.Generator:
        if seg_start is None:
            chunks[index] = yield fetch_storage.get(task["out_bucket"], key)
        else:
            chunks[index] = yield fetch_storage.get_range(
                task["out_bucket"], key, seg_start, seg_end
            )

    for batch_start in range(0, len(segments), parallelism):
        batch = segments[batch_start : batch_start + parallelism]
        processes = [
            ctx.sim.process(
                fetch_one(batch_start + offset, key, seg_start, seg_end),
                name=f"reducer-fetch-{batch_start + offset}",
            )
            for offset, (key, seg_start, seg_end) in enumerate(batch)
        ]
        if processes:
            yield ctx.sim.all_of([process.completion for process in processes])

    buffer = b"".join(chunks[index] for index in sorted(chunks))
    yield ctx.compute_bytes(len(buffer), task["sort_throughput"])
    outcome = kernels.sort_buffer(codec, buffer, task.get("record_limit"))
    yield ctx.storage.put(
        task["out_bucket"], task["output_key"], outcome.output, dedup=True
    )
    return {
        "records": outcome.records,
        "bytes": len(outcome.output),
        "output_key": task["output_key"],
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }
