"""Analytic model of the cache-mediated shuffle.

Counterpart of :mod:`repro.shuffle.planner` for the third data-exchange
strategy: intermediate partitions flow through the in-memory key-value
store instead of object storage.  The input split read and the final
sorted-run write still go through object storage (the cache only holds
the all-to-all traffic), so those terms are shared with the COS model.

What changes is the all-to-all itself:

* request latency is sub-millisecond and *batched* — a mapper's MSET and
  a reducer's MGET pay one latency per cache node touched, not per key;
* the ops/s ceiling is per node and ~30x higher than the object-storage
  account's, and grows with the cluster size;
* bandwidth is bounded by the cluster's aggregate NIC (nodes x per-node
  line rate), typically far below the object store's aggregate pipe.

The model therefore predicts a much flatter penalty for large worker
counts (the W² request floor almost vanishes) but an earlier bandwidth
ceiling — the shape benchmark S8 checks.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cloud.profiles import CacheNodeType, CloudProfile
from repro.errors import ShuffleError
from repro.shuffle.planner import PlanPoint, ShufflePlan


@dataclasses.dataclass(slots=True)
class CacheShuffleCostModel:
    """Workload-side constants of the cache-shuffle cost model."""

    #: Full-core throughput of the partitioning pass (bytes/s).
    partition_throughput: float = 180e6
    #: Full-core throughput of the reduce-side sort (bytes/s).
    sort_throughput: float = 90e6
    #: Peek window appended to splits for record alignment (bytes).
    peek_bytes: int = 64 * 1024
    #: Bytes each sampler reads for boundary estimation.
    sample_bytes: int = 256 * 1024
    #: Number of key samples kept per sampler.
    sample_keys: int = 512
    #: Sampling windows per sampler, strided across its split (see
    #: :class:`~repro.shuffle.planner.ShuffleCostModel.sample_strides`).
    sample_strides: int = 4
    #: Delete partitions from the cache after the reduce reads them.
    cleanup: bool = False
    #: Expected max-over-mean partition bytes (straggler-reducer term;
    #: 1.0 = balanced key distribution).
    expected_skew: float = 1.0


def predict_cache_shuffle_time(
    logical_bytes: float,
    workers: int,
    profile: CloudProfile,
    node_type: CacheNodeType,
    nodes: int,
    cost: CacheShuffleCostModel,
    skew: float | None = None,
) -> PlanPoint:
    """Evaluate the cache-shuffle analytic model at one worker count.

    ``skew`` is the expected max-over-mean partition bytes (default:
    ``cost.expected_skew``); the straggler reducer's fetch transfer,
    sort CPU and output write scale by it (the map side reads byte-even
    splits and is unaffected).
    """
    if workers < 1:
        raise ShuffleError(f"workers must be >= 1, got {workers}")
    if nodes < 1:
        raise ShuffleError(f"nodes must be >= 1, got {nodes}")
    skew = cost.expected_skew if skew is None else skew
    if skew < 1.0:
        raise ShuffleError(f"skew must be >= 1 (max/mean), got {skew}")
    size = float(logical_bytes)
    store = profile.objectstore
    faas = profile.faas
    cache = profile.memstore
    per_worker = size / workers
    instance_bw = min(faas.instance_bandwidth, store.per_connection_bandwidth)
    cache_bw = min(faas.instance_bandwidth, cache.per_connection_bandwidth)
    cluster_bw = nodes * node_type.nic_bandwidth

    startup = faas.invoke_overhead.mean + faas.cold_start.mean

    # Input split still comes from object storage.
    map_read = (
        max(per_worker / instance_bw, size / store.aggregate_bandwidth)
        + store.read_latency.mean
    )
    partition_cpu = per_worker / cost.partition_throughput

    # All-to-all through the cache: one MSET batch per mapper (one write
    # latency per node touched), one MGET batch per reducer; the W²
    # request floor divides across nodes at their much higher rate.
    cache_transfer = max(per_worker / cache_bw, size / cluster_bw)
    batch_latency_w = min(workers, nodes) * cache.write_latency.mean
    batch_latency_r = min(workers, nodes) * cache.read_latency.mean
    ops_floor = (workers * workers) / (nodes * cache.ops_per_node)
    map_write = max(batch_latency_w + cache_transfer, ops_floor)
    straggler = per_worker * skew
    reduce_fetch = max(
        batch_latency_r + max(straggler / cache_bw, size / cluster_bw), ops_floor
    )

    sort_cpu = straggler / cost.sort_throughput
    # Sorted runs land back in object storage for the encode stage.
    reduce_write = (
        max(straggler / instance_bw, size / store.aggregate_bandwidth)
        + store.write_latency.mean
    )
    driver = 3.0 * workers * (store.write_latency.mean + store.read_latency.mean)

    breakdown = {
        "startup": startup,
        "map_read": map_read,
        "partition_cpu": partition_cpu,
        "map_write": map_write,
        "reduce_fetch": reduce_fetch,
        "sort_cpu": sort_cpu,
        "reduce_write": reduce_write,
        "driver": driver,
    }
    return PlanPoint(workers, sum(breakdown.values()), dict(breakdown))


def plan_cache_shuffle(
    logical_bytes: float,
    profile: CloudProfile,
    node_type_name: str,
    nodes: int,
    cost: CacheShuffleCostModel | None = None,
    max_workers: int = 256,
    candidates: t.Sequence[int] | None = None,
    skew: float | None = None,
) -> ShufflePlan:
    """Pick the worker count minimizing predicted cache-shuffle time."""
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    cost = cost if cost is not None else CacheShuffleCostModel()
    try:
        node_type = profile.memstore.catalog[node_type_name]
    except KeyError:
        raise ShuffleError(
            f"unknown cache node type {node_type_name!r}; available: "
            f"{sorted(profile.memstore.catalog)}"
        ) from None
    pool = (
        list(candidates) if candidates is not None else list(range(1, max_workers + 1))
    )
    if not pool:
        raise ShuffleError("empty candidate worker set")
    curve = tuple(
        predict_cache_shuffle_time(
            logical_bytes, workers, profile, node_type, nodes, cost, skew=skew
        )
        for workers in sorted(set(pool))
    )
    best = min(curve, key=lambda point: (point.total_s, point.workers))
    return ShufflePlan(workers=best.workers, predicted_s=best.total_s, curve=curve)


def required_cache_nodes(
    logical_bytes: float,
    profile: CloudProfile,
    node_type_name: str,
    headroom: float = 1.3,
    partition_skew: float = 1.0,
) -> int:
    """Smallest node count whose usable memory holds the shuffle data.

    ``headroom`` leaves slack for sharding imbalance; the whole dataset
    sits in the cache between the map and reduce waves, so capacity is a
    hard feasibility constraint (unlike object storage, which is
    effectively unbounded — a qualitative difference the comparison
    reports).

    ``partition_skew`` (max-over-mean partition bytes) sizes the cluster
    so the *hottest node's* expected share — ``min(logical, skew *
    logical / nodes)`` under hash slot routing — fits in one node's
    usable memory, mirroring the relay planner's
    :func:`~repro.shuffle.relayplanner.required_relay_fleet`.
    """
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    if headroom < 1.0:
        raise ShuffleError(f"headroom must be >= 1, got {headroom}")
    if partition_skew < 1.0:
        raise ShuffleError(
            f"partition_skew must be >= 1 (max/mean), got {partition_skew}"
        )
    try:
        node_type = profile.memstore.catalog[node_type_name]
    except KeyError:
        raise ShuffleError(
            f"unknown cache node type {node_type_name!r}; available: "
            f"{sorted(profile.memstore.catalog)}"
        ) from None
    per_node = (
        node_type.memory_gb
        * (1 << 30)
        * profile.memstore.usable_memory_fraction
    )
    if per_node >= logical_bytes * headroom:
        return 1
    needed = logical_bytes * headroom * partition_skew
    return max(1, -(-int(needed) // int(per_node)))
