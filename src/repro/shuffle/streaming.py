"""Streaming exchange: backpressure-aware pipelined map→reduce shuffle.

Every substrate in :mod:`repro.shuffle` historically ran *staged*: the
full map wave had to finish before any reducer launched, so even the
fastest substrate paid a hard wave barrier.  This module removes the
barrier.  A :class:`StreamingShuffleSort` launches the reduce wave
concurrently with the map wave; mappers cut their split into chunks and
publish each chunk's partition segments as soon as they are produced,
and reducers *subscribe* to their partition across every mapper,
fetching and pre-sorting chunks while upstream mappers are still
reading input.

The per-partition readiness protocol is substrate-shaped:

* **object storage** — manifest polling.  A mapper PUTs one combined
  chunk object (write-combining, exactly like the staged mapper) plus
  one tiny immutable per-chunk manifest carrying the chunk's offset
  table, and an end-of-stream object with the final chunk count.
  Reducers poll for the next manifest (with gentle backoff) and
  range-GET their segment.  Every object's content is deterministic, so
  crash-retried and speculative mappers overwrite byte-identical data —
  the protocol stays idempotent without coordination.
* **cache** — memstore notification.  Readers park on the owning node's
  set notification (:meth:`~repro.cloud.memstore.service.CacheClient.get_wait`)
  instead of polling; mappers MSET one value per (mapper, reducer,
  chunk) plus a header announcing the chunk count.
* **relay / sharded fleet** — the relay's natural rendezvous semantics:
  :meth:`~repro.cloud.vm.relay.RelayClient.pull_wait` blocks until the
  key commits (attempt-fencing and cancellation included), so a reducer
  simply pulls chunk keys that do not exist yet.

Reducer-side flow control: each reducer owns a **bounded buffer** of
fetched-but-unsorted chunks.  When the buffer is full the reducer stops
fetching (a backpressure wait, counted and timed), resuming as its
sorter drains — on the relay substrate unfetched chunks additionally
occupy relay memory, so the pressure propagates to mappers through the
relay's own admission control.  The incremental sorter charges exactly
the staged reducer's sort CPU, just overlapped with the map wave; the
final merge of the pre-sorted chunk runs is folded into that pass, so
streaming's win is pure overlap and the sorted artifact is
**byte-identical** to the staged one (chunks are reassembled in
(mapper, chunk) order before the final stable sort — the same record
order the staged reducer sees).

Fault handling and speculation are inherited wholesale: streams are
never consumed destructively, every publish is an idempotent overwrite
of deterministic content, and all clients are attempt-scoped — a
crashed or cancelled worker's in-flight transfers are reclaimed and its
zombie requests fenced, exactly as on the staged paths (the chaos and
speculation-parity matrices cover ``streaming_sort`` too).
"""

from __future__ import annotations

import collections
import dataclasses
import time
import typing as t

from repro.cloud.objectstore.errors import NoSuchKey
from repro.cloud.profiles import CloudProfile
from repro.errors import ShuffleError
from repro.shuffle.cacheoperator import CacheExchange
from repro.shuffle.exchange import ExchangeBackend, ObjectStoreExchange
from repro.shuffle.operator import ShuffleResult, ShuffleSort
from repro.shuffle.planner import ShufflePlan, predict_streaming_shuffle_time
from repro.shuffle.relay import RelayExchange, ShardedRelayExchange
from repro.shuffle import kernels
from repro.shuffle.sampler import partition_index, partition_skew_of
from repro.shuffle.records import RecordCodec
from repro.sim import SimEvent
from repro.storage import paths
from repro.storage.serializer import deserialize, serialize


@dataclasses.dataclass(slots=True)
class StreamConfig:
    """Knobs of the streaming exchange (sizes in *logical* bytes)."""

    #: Target logical bytes per mapper chunk (the pipelining grain):
    #: smaller chunks overlap more but pay more per-chunk requests.
    chunk_bytes: float = 32 * (1 << 20)
    #: Reducer-side buffer bound on fetched-but-unsorted chunks;
    #: ``None`` disables backpressure (unbounded buffer).  A single
    #: chunk is always admitted, so a bound below the chunk size
    #: throttles without deadlocking.
    buffer_bytes: float | None = 256 * (1 << 20)
    #: Manifest poll cadence of the object-storage reducer (the other
    #: substrates push notifications and never poll).
    poll_interval_s: float = 0.2


# ----------------------------------------------------------------------
# stream key layout
# ----------------------------------------------------------------------
def stream_chunk_object_key(prefix: str, mapper_id: int, chunk: int) -> str:
    """COS object holding mapper ``mapper_id``'s combined chunk ``chunk``."""
    return f"{prefix}/m{mapper_id:05d}.c{chunk:05d}"


def stream_manifest_key(prefix: str, mapper_id: int, chunk: int) -> str:
    """COS object holding chunk ``chunk``'s offset table (immutable)."""
    return f"{prefix}/m{mapper_id:05d}.mf{chunk:05d}"


def stream_eos_key(prefix: str, mapper_id: int) -> str:
    """COS object announcing mapper ``mapper_id``'s final chunk count."""
    return f"{prefix}/m{mapper_id:05d}.eos"


def stream_header_key(prefix: str, mapper_id: int) -> str:
    """Relay/cache key announcing mapper ``mapper_id``'s chunk count."""
    return f"{prefix}/m{mapper_id:05d}.hdr"


def stream_segment_key(
    prefix: str, mapper_id: int, reducer_id: int, chunk: int
) -> str:
    """Relay/cache key of one (mapper, reducer, chunk) segment."""
    return f"{prefix}/m{mapper_id:05d}.r{reducer_id:05d}.c{chunk:05d}"


# ----------------------------------------------------------------------
# worker-side stream ports (one per substrate kind)
# ----------------------------------------------------------------------
class _ObjectStorePort:
    """Manifest-polling stream port over object storage."""

    def __init__(self, ctx, stream: dict):
        self.ctx = ctx
        self.bucket = stream["bucket"]
        self.prefix = stream["prefix"]
        self.poll_interval = stream["poll_interval"]
        #: Final chunk count per mapper, once the EOS object was read.
        self._eos: dict[int, int] = {}

    # -- mapper side ---------------------------------------------------
    def announce(self, mapper_id: int, chunk_count: int) -> t.Generator:
        return
        yield  # pragma: no cover - generator marker

    def publish(
        self, mapper_id: int, chunk: int, segments: list[bytes]
    ) -> t.Generator:
        combined = b"".join(segments)
        offsets: list[tuple[int, int]] = []
        cursor = 0
        for segment in segments:
            offsets.append((cursor, cursor + len(segment)))
            cursor += len(segment)
        # Data first, then the manifest naming it: any manifest a
        # reducer can read points at a chunk object that already exists.
        yield self.ctx.storage.put(
            self.bucket, stream_chunk_object_key(self.prefix, mapper_id, chunk),
            combined, dedup=True,
        )
        payload = serialize(offsets)
        # Manifests are control-plane metadata: charge their real size,
        # not the experiment's logical scale-up.
        yield self.ctx.storage.put(
            self.bucket, stream_manifest_key(self.prefix, mapper_id, chunk),
            payload, logical_size=len(payload),
        )

    def finish(self, mapper_id: int, chunk_count: int) -> t.Generator:
        payload = serialize(chunk_count)
        yield self.ctx.storage.put(
            self.bucket, stream_eos_key(self.prefix, mapper_id),
            payload, logical_size=len(payload),
        )

    # -- reducer side --------------------------------------------------
    def next_chunk(
        self, mapper_id: int, reducer_id: int, chunk: int
    ) -> t.Generator:
        """The reducer's segment of chunk ``chunk``, or ``None`` at EOS."""
        delay = self.poll_interval
        while True:
            try:
                raw = yield self.ctx.storage.get(
                    self.bucket, stream_manifest_key(self.prefix, mapper_id, chunk)
                )
            except NoSuchKey:
                pass
            else:
                start, end = deserialize(raw)[reducer_id]
                if end <= start:
                    return b""
                return (
                    yield self.ctx.storage.get_range(
                        self.bucket,
                        stream_chunk_object_key(self.prefix, mapper_id, chunk),
                        start,
                        end,
                    )
                )
            if mapper_id not in self._eos:
                try:
                    raw = yield self.ctx.storage.get(
                        self.bucket, stream_eos_key(self.prefix, mapper_id)
                    )
                except NoSuchKey:
                    pass
                else:
                    self._eos[mapper_id] = deserialize(raw)
            count = self._eos.get(mapper_id)
            if count is not None:
                if chunk >= count:
                    return None
                # The manifest exists (it precedes EOS); re-read it now.
                continue
            yield self.ctx.sleep(delay)
            # Gentle backoff keeps W^2 pollers off the ops ceiling while
            # nothing is being produced; reset on progress (new call).
            delay = min(delay * 1.5, self.poll_interval * 4)

    def fetch_chunk(
        self, mapper_id: int, reducer_id: int, chunk: int
    ) -> t.Generator:
        """The reducer's segment of a chunk *known to exist eventually*.

        The online sort's reducers learn the exact chunk grid from a
        control record before fetching, so unlike :meth:`next_chunk`
        there is no EOS protocol — this simply polls the manifest until
        the chunk is published (possibly by a mapper running waves
        later) and range-GETs the segment.
        """
        delay = self.poll_interval
        while True:
            try:
                raw = yield self.ctx.storage.get(
                    self.bucket, stream_manifest_key(self.prefix, mapper_id, chunk)
                )
            except NoSuchKey:
                yield self.ctx.sleep(delay)
                delay = min(delay * 1.5, self.poll_interval * 4)
                continue
            start, end = deserialize(raw)[reducer_id]
            if end <= start:
                return b""
            return (
                yield self.ctx.storage.get_range(
                    self.bucket,
                    stream_chunk_object_key(self.prefix, mapper_id, chunk),
                    start,
                    end,
                )
            )


class _NotifyPort:
    """Shared stream port over a notifying key-value rendezvous.

    The cache and the relay speak the same streaming protocol — a
    header key announcing the chunk count, one value per
    (mapper, reducer, chunk), blocking reads parked on the server's
    publish notification — and differ only in the client verbs.
    Subclasses bind :meth:`_put` / :meth:`_mput` / :meth:`_get_blocking`
    to their service's client; everything else lives here once.
    """

    def __init__(self, ctx, stream: dict):
        self.ctx = ctx
        self.prefix = stream["prefix"]
        self.client = self._make_client(ctx, stream)
        self._headers: dict[int, int] = {}

    # -- service verbs (subclass responsibility) -----------------------
    def _make_client(self, ctx, stream: dict):
        raise NotImplementedError

    def _put(self, key: str, data: bytes) -> SimEvent:
        raise NotImplementedError

    def _mput(self, items: list[tuple[str, bytes]]) -> SimEvent:
        raise NotImplementedError

    def _get_blocking(self, key: str) -> SimEvent:
        raise NotImplementedError

    # -- mapper side ---------------------------------------------------
    def announce(self, mapper_id: int, chunk_count: int) -> t.Generator:
        yield self._put(
            stream_header_key(self.prefix, mapper_id),
            chunk_count.to_bytes(8, "big"),
        )

    def publish(
        self, mapper_id: int, chunk: int, segments: list[bytes]
    ) -> t.Generator:
        yield self._mput(
            [
                (stream_segment_key(self.prefix, mapper_id, reducer_id, chunk),
                 data)
                for reducer_id, data in enumerate(segments)
            ]
        )

    def finish(self, mapper_id: int, chunk_count: int) -> t.Generator:
        return
        yield  # pragma: no cover - generator marker

    # -- reducer side --------------------------------------------------
    def next_chunk(
        self, mapper_id: int, reducer_id: int, chunk: int
    ) -> t.Generator:
        count = self._headers.get(mapper_id)
        if count is None:
            raw = yield self._get_blocking(
                stream_header_key(self.prefix, mapper_id)
            )
            count = int.from_bytes(raw, "big")
            self._headers[mapper_id] = count
        if chunk >= count:
            return None
        return (
            yield self._get_blocking(
                stream_segment_key(self.prefix, mapper_id, reducer_id, chunk)
            )
        )

    def fetch_chunk(
        self, mapper_id: int, reducer_id: int, chunk: int
    ) -> t.Generator:
        """One known (mapper, reducer, chunk) segment, blocking.

        Online-sort counterpart of :meth:`next_chunk`: the chunk grid is
        known from the control record, so no header handshake — park on
        the rendezvous read until the segment is published.
        """
        return (
            yield self._get_blocking(
                stream_segment_key(self.prefix, mapper_id, reducer_id, chunk)
            )
        )


class _CachePort(_NotifyPort):
    """Set-notification stream port over the in-memory cache cluster."""

    def _make_client(self, ctx, stream: dict):
        return ctx.kv(stream["cluster_id"])

    def _put(self, key: str, data: bytes) -> SimEvent:
        return self.client.set(key, data, logical_size=len(data))

    def _mput(self, items: list[tuple[str, bytes]]) -> SimEvent:
        return self.client.mset(items)

    def _get_blocking(self, key: str) -> SimEvent:
        return self.client.get_wait(key)


class _RelayPort(_NotifyPort):
    """Rendezvous stream port over the VM relay (or sharded fleet)."""

    def _make_client(self, ctx, stream: dict):
        return ctx.relay(stream["relay_id"], scope=stream.get("relay_scope"))

    def _put(self, key: str, data: bytes) -> SimEvent:
        return self.client.push(key, data, logical_size=len(data))

    def _mput(self, items: list[tuple[str, bytes]]) -> SimEvent:
        return self.client.mpush(items)

    def _get_blocking(self, key: str) -> SimEvent:
        return self.client.pull_wait(key)


_PORTS = {
    "objectstore": _ObjectStorePort,
    "cache": _CachePort,
    "relay": _RelayPort,
}


def _make_port(ctx, stream: dict):
    try:
        port_class = _PORTS[stream["kind"]]
    except KeyError:
        raise ShuffleError(f"unknown stream port kind {stream['kind']!r}") from None
    return port_class(ctx, stream)


# ----------------------------------------------------------------------
# worker stages (substrate-generic: the port carries the difference)
# ----------------------------------------------------------------------
def streaming_shuffle_mapper(ctx, task: dict) -> t.Generator:
    """Read one split, then partition and publish it chunk by chunk.

    Task fields: the staged mapper base (``bucket, key, start, end,
    object_size, peek_bytes, boundaries, codec, partition_throughput``)
    plus ``mapper_id`` and the ``stream`` port descriptor.  Chunks are
    contiguous record runs of ~``stream.chunk_bytes`` logical bytes, so
    concatenating a partition's chunk segments in order reproduces the
    staged mapper's partition segment byte for byte.
    """
    started_at = ctx.sim.now
    codec: RecordCodec = task["codec"]
    start, end = task["start"], task["end"]
    object_size = task["object_size"]
    window_end = min(object_size, end + task["peek_bytes"])
    raw = yield ctx.storage.get_range(task["bucket"], task["key"], start, window_end)
    base, tail = raw[: end - start], raw[end - start :]
    owned = codec.extract_split(
        base,
        tail,
        is_first=(start == 0),
        at_end=(end >= object_size),
        global_start=start,
    )
    stream = task["stream"]
    chunk_real = max(1, int(stream["chunk_bytes"] / ctx.logical_scale))
    boundaries = task["boundaries"]
    parts = len(boundaries) + 1
    port = _make_port(ctx, stream)
    mapper_id = task["mapper_id"]
    partition_records = [0] * parts
    published_bytes = 0
    kernel_s = time.perf_counter()

    # Vectorized path: decode the split once, then partition each chunk
    # span through the same RecordView — identical chunk cuts and
    # per-chunk segments to the scalar greedy loop below.
    view = kernels.record_view(codec, owned)
    if view is not None and not view.can_partition(boundaries):
        view = None
    if view is not None:
        kernel = kernels.KERNEL_VECTORIZED
        spans = view.chunk_spans(chunk_real)
        kernel_s = time.perf_counter() - kernel_s
        total_records = view.count
        total_chunks = len(spans)
        yield from port.announce(mapper_id, total_chunks)
        for chunk_index, (span_lo, span_hi) in enumerate(spans):
            chunk_started = time.perf_counter()
            outcome = view.partition(boundaries, span_lo, span_hi)
            segments = outcome.segments()
            kernel_s += time.perf_counter() - chunk_started
            yield ctx.compute_bytes(
                view.span_bytes(span_lo, span_hi), task["partition_throughput"]
            )
            for reducer_id, count in enumerate(outcome.partition_records):
                partition_records[reducer_id] += count
            published_bytes += len(outcome.combined)
            yield from port.publish(mapper_id, chunk_index, segments)
    else:
        kernel = kernels.KERNEL_SCALAR
        records = codec.split(owned)
        chunks: list[list[bytes]] = []
        current: list[bytes] = []
        current_bytes = 0
        for record in records:
            current.append(record)
            current_bytes += len(record)
            if current_bytes >= chunk_real:
                chunks.append(current)
                current, current_bytes = [], 0
        if current:
            chunks.append(current)
        kernel_s = time.perf_counter() - kernel_s
        total_records = len(records)
        total_chunks = len(chunks)
        yield from port.announce(mapper_id, total_chunks)
        for chunk_index, chunk_records in enumerate(chunks):
            chunk_started = time.perf_counter()
            partitions: list[list[bytes]] = [[] for _ in range(parts)]
            for record in chunk_records:
                partitions[
                    partition_index(codec.key(record), boundaries)
                ].append(record)
            segments = [codec.join(bucket_records) for bucket_records in partitions]
            kernel_s += time.perf_counter() - chunk_started
            yield ctx.compute_bytes(
                sum(len(record) for record in chunk_records),
                task["partition_throughput"],
            )
            for reducer_id, bucket_records in enumerate(partitions):
                partition_records[reducer_id] += len(bucket_records)
            published_bytes += sum(len(segment) for segment in segments)
            yield from port.publish(mapper_id, chunk_index, segments)

    yield from port.finish(mapper_id, total_chunks)
    return {
        "records": total_records,
        "bytes": published_bytes,
        "chunks": total_chunks,
        "partition_records": partition_records,
        "started_at": started_at,
        "kernel": kernel,
        "kernel_records": total_records,
        "kernel_s": kernel_s,
    }


class _StreamBuffer:
    """The reducer's bounded chunk buffer: admission gate + drain queue.

    Fetchers call :meth:`wait_for_space` before pulling the next chunk
    (the backpressure point — counted and timed) and :meth:`arrived`
    when one lands; the sorter pops :attr:`queue` and calls
    :meth:`drained` after charging the chunk's sort CPU.  A bound below
    one chunk still admits single chunks, so progress is guaranteed.
    """

    def __init__(self, sim, limit: float | None):
        self.sim = sim
        # A non-positive bound means "unbounded" (a literal zero would
        # park every fetcher before the first chunk, with no sorter
        # drain ever able to wake them).
        self.limit = limit if limit is not None and limit > 0 else None
        self.used = 0.0
        self.high_watermark = 0.0
        self.waits = 0
        self.wait_s = 0.0
        self.queue: collections.deque[tuple[int, float]] = collections.deque()
        self._space: SimEvent | None = None
        self._work: SimEvent | None = None

    def _arm(self, attr: str) -> SimEvent:
        event = getattr(self, attr)
        if event is None or event.triggered:
            event = SimEvent(self.sim, name=f"streambuffer.{attr}")
            setattr(self, attr, event)
        return event

    def _fire(self, attr: str) -> None:
        event = getattr(self, attr)
        if event is not None and not event.triggered:
            event.succeed()

    def wait_for_space(self) -> t.Generator:
        while self.limit is not None and self.used >= self.limit:
            self.waits += 1
            started = self.sim.now
            yield self._arm("_space")
            self.wait_s += self.sim.now - started

    def arrived(self, real_len: int, logical: float) -> None:
        self.used += logical
        self.high_watermark = max(self.high_watermark, self.used)
        self.queue.append((real_len, logical))
        self._fire("_work")

    def drained(self, logical: float) -> None:
        self.used -= logical
        self._fire("_space")

    def notify_work(self) -> None:
        self._fire("_work")

    def work_event(self) -> SimEvent:
        return self._arm("_work")


def streaming_shuffle_reducer(ctx, task: dict) -> t.Generator:
    """Subscribe to one partition across all mappers; sort as chunks land.

    Task fields: ``reducer_id, mappers, out_bucket, output_key, codec,
    sort_throughput`` and the ``stream`` port descriptor.  One fetcher
    sub-process per mapper consumes that mapper's stream through the
    bounded buffer; one sorter sub-process drains it, charging the sort
    CPU incrementally (total identical to the staged reducer's single
    pass — the final merge of pre-sorted chunk runs is folded in).  All
    sub-processes register with the activation's cancel scope, so a
    killed attempt tears the whole pipeline down.
    """
    started_at = ctx.sim.now
    codec: RecordCodec = task["codec"]
    stream = task["stream"]
    port = _make_port(ctx, stream)
    reducer_id = task["reducer_id"]
    mappers = task["mappers"]
    buffer = _StreamBuffer(ctx.sim, stream["buffer_bytes"])
    chunks: dict[int, list[bytes]] = {m: [] for m in range(mappers)}
    finished = {"fetchers": 0}

    def consume_stream(mapper_id: int) -> t.Generator:
        chunk_index = 0
        while True:
            yield from buffer.wait_for_space()
            data = yield from port.next_chunk(mapper_id, reducer_id, chunk_index)
            if data is None:
                break
            chunks[mapper_id].append(data)
            buffer.arrived(len(data), len(data) * ctx.logical_scale)
            chunk_index += 1
        finished["fetchers"] += 1
        buffer.notify_work()

    def sorter() -> t.Generator:
        while True:
            if buffer.queue:
                real_len, logical = buffer.queue.popleft()
                if real_len > 0:
                    yield ctx.compute_bytes(real_len, task["sort_throughput"])
                buffer.drained(logical)
                continue
            if finished["fetchers"] == mappers:
                return
            yield buffer.work_event()

    fetchers = [
        ctx.track(
            ctx.sim.process(
                consume_stream(mapper_id), name=f"streamfetch-m{mapper_id}"
            )
        )
        for mapper_id in range(mappers)
    ]
    sort_process = ctx.track(ctx.sim.process(sorter(), name="streamsort"))
    yield ctx.sim.all_of(
        [process.completion for process in fetchers] + [sort_process.completion]
    )

    # Reassemble in (mapper, chunk) order — exactly the record order the
    # staged reducer sees — then the same stable sort: byte parity.
    payload = b"".join(
        segment for mapper_id in range(mappers) for segment in chunks[mapper_id]
    )
    outcome = kernels.sort_buffer(codec, payload)
    yield ctx.storage.put(
        task["out_bucket"], task["output_key"], outcome.output, dedup=True
    )
    return {
        "records": outcome.records,
        "bytes": len(outcome.output),
        "output_key": task["output_key"],
        "buffer_waits": buffer.waits,
        "buffer_wait_s": buffer.wait_s,
        "buffer_high_watermark_bytes": buffer.high_watermark,
        "started_at": started_at,
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }


# ----------------------------------------------------------------------
# streaming exchange backends (one per substrate)
# ----------------------------------------------------------------------
class StreamingExchangeMixin:
    """Turns a staged backend into its streaming twin.

    Planning, validation, feasibility, billing and the uniform report
    are inherited from the staged backend; only the worker stages and
    task payloads change.  ``reducer_task`` deliberately ignores the map
    results — streaming reducers launch before any exist.
    """

    mode = "streaming"
    stream_kind: t.ClassVar[str]
    stream: StreamConfig

    def _stream_route(self, out_bucket: str) -> dict:
        """Substrate routing fields of the stream descriptor."""
        raise NotImplementedError

    def plan(
        self, logical_size: float, profile: CloudProfile, max_workers: int
    ) -> ShufflePlan:
        """Plan with the *streaming* completion-time model.

        The staged backend's curve is transformed point by point through
        :func:`~repro.shuffle.planner.predict_streaming_shuffle_time`
        (this configuration's chunk grain, the substrate's per-chunk
        readiness overhead), and the minimizing worker count is picked
        from the transformed curve — so an auto-planned streaming sort
        sizes its wave for the mode it actually runs, and the report's
        ``predicted_s`` is comparable to its streaming ``actual_s``.
        """
        from repro.shuffle.adaptive import (
            streaming_chunk_count,
            streaming_chunk_overhead_s,
        )

        staged = super().plan(logical_size, profile, max_workers)
        overhead = streaming_chunk_overhead_s(profile, self.name)
        curve = tuple(
            predict_streaming_shuffle_time(
                point,
                streaming_chunk_count(
                    logical_size, point.workers, self.stream.chunk_bytes
                ),
                overhead,
            )
            for point in staged.curve
        )
        best = min(curve, key=lambda point: (point.total_s, point.workers))
        # replace() keeps subclass plans (RelayShufflePlan's shard count
        # and instance type) intact.
        return dataclasses.replace(
            staged, workers=best.workers, predicted_s=best.total_s, curve=curve
        )

    def _stream_payload(self, out_bucket: str, out_prefix: str) -> dict:
        payload = {
            "kind": self.stream_kind,
            "prefix": f"{out_prefix}/stream",
            "chunk_bytes": self.stream.chunk_bytes,
            "buffer_bytes": self.stream.buffer_bytes,
            "poll_interval": self.stream.poll_interval_s,
        }
        payload.update(self._stream_route(out_bucket))
        return payload

    def mapper_stage(self):
        return streaming_shuffle_mapper

    def reducer_stage(self):
        return streaming_shuffle_reducer

    def mapper_task(
        self, base: dict, mapper_id: int, out_bucket: str, out_prefix: str
    ) -> dict:
        base.update(
            mapper_id=mapper_id,
            stream=self._stream_payload(out_bucket, out_prefix),
        )
        return base

    def reducer_task(
        self,
        reducer_id: int,
        workers: int,
        map_tasks: list[dict],
        map_results: list[dict],
        out_bucket: str,
        out_prefix: str,
        codec: RecordCodec,
    ) -> dict:
        return {
            "reducer_id": reducer_id,
            "mappers": workers,
            "out_bucket": out_bucket,
            "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
            "codec": codec,
            "sort_throughput": self.cost.sort_throughput,
            "stream": self._stream_payload(out_bucket, out_prefix),
        }


class StreamingObjectStoreExchange(StreamingExchangeMixin, ObjectStoreExchange):
    """Streaming twin of the COS substrate: manifest-polled chunk objects."""

    stream_kind = "objectstore"
    process_label = "streamshuffle"
    default_out_prefix = "streaming-shuffle"

    def __init__(self, cost=None, stream: StreamConfig | None = None):
        super().__init__(cost)
        self.stream = stream if stream is not None else StreamConfig()

    def _stream_route(self, out_bucket: str) -> dict:
        return {"bucket": out_bucket}


class StreamingCacheExchange(StreamingExchangeMixin, CacheExchange):
    """Streaming twin of the cache substrate: set-notification reads."""

    stream_kind = "cache"
    process_label = "streamcacheshuffle"
    default_out_prefix = "streaming-cache-shuffle"

    def __init__(self, cluster, cost=None, stream: StreamConfig | None = None):
        super().__init__(cluster, cost)
        self.stream = stream if stream is not None else StreamConfig()

    def _stream_route(self, out_bucket: str) -> dict:
        return {"cluster_id": self.cluster.cluster_id}


class StreamingRelayExchange(StreamingExchangeMixin, RelayExchange):
    """Streaming twin of the VM-relay substrate: rendezvous pulls."""

    stream_kind = "relay"
    process_label = "streamrelayshuffle"
    default_out_prefix = "streaming-relay-shuffle"

    def __init__(self, relay, cost=None, stream: StreamConfig | None = None):
        super().__init__(relay, cost)
        self.stream = stream if stream is not None else StreamConfig()

    def _stream_route(self, out_bucket: str) -> dict:
        route = {"relay_id": self.relay.relay_id}
        if self.tenant is not None:
            route["relay_scope"] = self.tenant
        return route


class StreamingShardedRelayExchange(StreamingExchangeMixin, ShardedRelayExchange):
    """Streaming twin of the sharded fleet: rendezvous pulls, CRC-routed."""

    stream_kind = "relay"
    process_label = "streamfleetshuffle"
    default_out_prefix = "streaming-fleet-shuffle"

    def __init__(self, fleet, cost=None, stream: StreamConfig | None = None):
        super().__init__(fleet, cost)
        self.stream = stream if stream is not None else StreamConfig()

    def _stream_route(self, out_bucket: str) -> dict:
        route = {"relay_id": self.relay.relay_id}
        if self.tenant is not None:
            route["relay_scope"] = self.tenant
        return route


#: Substrate name → streaming backend class (driver-side construction).
STREAMING_BACKENDS = {
    "objectstore": StreamingObjectStoreExchange,
    "cache": StreamingCacheExchange,
    "relay": StreamingRelayExchange,
    "sharded-relay": StreamingShardedRelayExchange,
}


# ----------------------------------------------------------------------
# the streaming operator
# ----------------------------------------------------------------------
class StreamingShuffleSort(ShuffleSort):
    """Sort with the reduce wave launched concurrently with the map wave.

    Sampling, planning and the sorted-run artifact are exactly the
    staged operator's; what changes is the orchestration: both waves are
    submitted back to back and the reducers consume partitions through
    the substrate's readiness protocol while mappers are still
    producing.  The resulting :class:`~repro.shuffle.exchange.ExchangeReport`
    carries the measured map/reduce wall-clock ``overlap_s``, the
    reducer buffers' ``buffer_high_watermark_bytes``, and the summed
    backpressure waits.

    Parameters mirror :class:`~repro.shuffle.operator.ShuffleSort`;
    ``backend`` must be one of the streaming backends (default: the
    object-storage one).
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        cost=None,
        backend: ExchangeBackend | None = None,
    ):
        if backend is None:
            backend = StreamingObjectStoreExchange(cost)
            cost = None
        if not isinstance(backend, StreamingExchangeMixin):
            raise ShuffleError(
                f"StreamingShuffleSort needs a streaming backend, got "
                f"{type(backend).__name__}; wrap the substrate in its "
                "Streaming*Exchange twin"
            )
        super().__init__(executor, codec, cost=cost, backend=backend)

    def _sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str,
        out_prefix: str,
        pinned_workers: int | None,
        samplers: int,
        max_workers: int,
    ) -> t.Generator:
        started_at = self.sim.now
        sort_span = self.sim.tracer.span(
            f"sort:{out_prefix}",
            category="sort",
            substrate=self.backend.name,
            mode=self.backend.mode,
        )
        with sort_span:
            self.backend.begin_sort(out_bucket, out_prefix)
            meta = yield from self._preflight(bucket, key)
            real_size = meta.size
            plan, workers = self._plan_workers(
                meta.logical_size, pinned_workers, max_workers
            )
            boundaries = yield from self._sample(
                bucket, key, real_size, meta.logical_size, workers, samplers,
                span=sort_span,
            )
            job = f"{self.backend.process_label}:{out_prefix}@{started_at:.3f}"

            map_tasks = self._map_tasks(
                bucket, key, real_size, boundaries, workers, out_bucket, out_prefix
            )
            reduce_tasks = [
                self.backend.reducer_task(
                    reducer_id, workers, map_tasks, [], out_bucket, out_prefix,
                    self.codec,
                )
                for reducer_id in range(workers)
            ]

            # Both waves in flight at once — this is the whole point.  The
            # map job is submitted first so its invocations enqueue ahead of
            # the reducers on the account concurrency limit (reducers idle
            # at their rendezvous; mappers must never starve behind them).
            # The wave spans overlap on the trace exactly like the waves do.
            self._record_wave(job, "map", "start")
            map_span = self.sim.tracer.span(
                "wave:map", category="wave", parent=sort_span, workers=workers
            )
            reduce_span = None
            try:
                map_futures = yield self.executor.map(
                    self.backend.mapper_stage(), map_tasks, span=map_span
                )
                self._record_wave(job, "reduce", "start")
                reduce_span = self.sim.tracer.span(
                    "wave:reduce", category="wave", parent=sort_span, workers=workers
                )
                reduce_futures = yield self.executor.map(
                    self.backend.reducer_stage(), reduce_tasks, span=reduce_span
                )
                map_results = yield self.executor.get_result(map_futures)
            except BaseException:
                map_span.end("error")
                if reduce_span is not None:
                    reduce_span.end("error")
                raise
            map_ended_at = self.sim.now
            self._record_wave(job, "map", "end")
            map_span.end()
            self.backend.on_map_done(map_results)
            with reduce_span:
                reduce_results = yield self.executor.get_result(reduce_futures)
            self._record_wave(job, "reduce", "end")

            runs, total_records = self._collect_runs(
                map_results, reduce_results, out_bucket
            )
            self.run_manifest = self._build_manifest(
                bucket, key, meta, workers, boundaries, runs, out_prefix
            )
            # Measured wave overlap from the workers' own execution windows
            # (each stage stamps its body start) — not from submission time,
            # which would claim overlap even when reducers queued behind the
            # mappers on the account concurrency limit and never actually
            # ran alongside them.
            map_exec_start = min(result["started_at"] for result in map_results)
            reduce_exec_start = min(
                result["started_at"] for result in reduce_results
            )
            overlap_s = max(
                0.0,
                min(map_ended_at, self.sim.now)
                - max(map_exec_start, reduce_exec_start),
            )
            self.report = self.backend.report(
                workers,
                plan,
                self.sim.now - started_at,
                overlap_s=overlap_s,
                buffer_high_watermark_bytes=max(
                    (result["buffer_high_watermark_bytes"] for result in reduce_results),
                    default=0.0,
                ),
                partition_skew=partition_skew_of([run.size_bytes for run in runs]),
                extra={
                    "predicted_partition_skew": partition_skew_of(
                        self.predicted_partition_bytes
                    ),
                    "buffer_backpressure_waits": sum(
                        result["buffer_waits"] for result in reduce_results
                    ),
                    "buffer_wait_s": sum(
                        result["buffer_wait_s"] for result in reduce_results
                    ),
                    "stream_chunks": sum(
                        result["chunks"] for result in map_results
                    ),
                    **kernels.kernel_report_extras(map_results, reduce_results),
                },
            )
            return ShuffleResult(
                runs=runs,
                workers=workers,
                planned=plan,
                boundaries=tuple(boundaries),
                total_records=total_records,
                duration_s=self.sim.now - started_at,
            )
