"""Record formats understood by the shuffle operator.

The shuffle moves *records* — self-contained byte strings with a
comparable sort key.  A :class:`RecordCodec` tells the operator how to
split a byte buffer into records, extract keys, and — crucially for
range-partitioned input splits — how to align an arbitrary byte range to
record boundaries.  Codecs must be picklable: they travel to workers
inside call payloads.

Two concrete codecs cover the library's needs:

* :class:`LineRecordCodec` — newline-delimited text records with a
  user-supplied key function (used for BED genomics data);
* :class:`FixedWidthCodec` — fixed-size binary records whose key is a
  big-endian unsigned prefix (used by synthetic shuffle benchmarks).
"""

from __future__ import annotations

import typing as t

from repro.errors import ShuffleError


class RecordCodec:
    """How the shuffle splits buffers into records and orders them."""

    def split(self, buffer: bytes) -> list[bytes]:
        """Split ``buffer`` into complete records."""
        raise NotImplementedError

    def join(self, records: t.Iterable[bytes]) -> bytes:
        """Concatenate records back into a buffer."""
        raise NotImplementedError

    def key(self, record: bytes) -> t.Any:
        """The record's sort key (any comparable value)."""
        raise NotImplementedError

    def extract_split(
        self,
        base: bytes,
        tail: bytes,
        is_first: bool,
        at_end: bool,
        global_start: int,
    ) -> bytes:
        """Record-aligned buffer owned by the split ``[start, end)``.

        ``base`` is the raw bytes of the split, ``tail`` a peek window
        immediately after it.  A split owns every record that *starts*
        inside it; torn leading records belong to the previous split.
        """
        raise NotImplementedError

    def sample_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> list[bytes]:
        """Complete records found in a read-ahead ``window`` (for sampling)."""
        raise NotImplementedError


class LineRecordCodec(RecordCodec):
    """Newline-delimited records; key extracted by a picklable callable.

    ``key_fn`` receives the record *without* its trailing newline.
    """

    def __init__(self, key_fn: t.Callable[[bytes], t.Any]):
        self.key_fn = key_fn

    def split(self, buffer: bytes) -> list[bytes]:
        if not buffer:
            return []
        if not buffer.endswith(b"\n"):
            raise ShuffleError(
                "line-record buffer does not end with a newline; "
                "was the split record-aligned?"
            )
        return [line + b"\n" for line in buffer.split(b"\n")[:-1]]

    def join(self, records: t.Iterable[bytes]) -> bytes:
        return b"".join(records)

    def key(self, record: bytes) -> t.Any:
        return self.key_fn(record.rstrip(b"\n"))

    def extract_split(
        self,
        base: bytes,
        tail: bytes,
        is_first: bool,
        at_end: bool,
        global_start: int,
    ) -> bytes:
        if is_first:
            skip = 0
        else:
            newline = base.find(b"\n")
            if newline < 0:
                # The record starting before this split swallows it whole.
                return b""
            skip = newline + 1
        if at_end:
            extend = len(tail)
        else:
            newline = tail.find(b"\n")
            if newline < 0:
                raise ShuffleError(
                    "record exceeds the peek window; increase peek_bytes"
                )
            extend = newline + 1
        return base[skip:] + tail[:extend]

    def sample_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> list[bytes]:
        lines = window.split(b"\n")
        lines = lines[:-1]  # last element is empty or a torn record
        if not is_first and lines:
            lines = lines[1:]  # first line may be torn
        return [line + b"\n" for line in lines]


class FixedWidthCodec(RecordCodec):
    """Fixed-width binary records keyed by a big-endian unsigned prefix."""

    def __init__(self, record_size: int, key_bytes: int | None = None):
        if record_size < 1:
            raise ShuffleError(f"record_size must be >= 1, got {record_size}")
        if key_bytes is None:
            key_bytes = min(8, record_size)
        if not 1 <= key_bytes <= record_size:
            raise ShuffleError(
                f"key_bytes must be in [1, record_size], got {key_bytes}"
            )
        self.record_size = record_size
        self.key_bytes = key_bytes

    def split(self, buffer: bytes) -> list[bytes]:
        if len(buffer) % self.record_size != 0:
            raise ShuffleError(
                f"buffer length {len(buffer)} is not a multiple of record "
                f"size {self.record_size}"
            )
        size = self.record_size
        return [buffer[start : start + size] for start in range(0, len(buffer), size)]

    def join(self, records: t.Iterable[bytes]) -> bytes:
        return b"".join(records)

    def key(self, record: bytes) -> int:
        return int.from_bytes(record[: self.key_bytes], "big")

    def _first_record_offset(self, global_start: int) -> int:
        return (-global_start) % self.record_size

    def extract_split(
        self,
        base: bytes,
        tail: bytes,
        is_first: bool,
        at_end: bool,
        global_start: int,
    ) -> bytes:
        skip = self._first_record_offset(global_start)
        owned = base[skip:]
        remainder = len(owned) % self.record_size
        if remainder == 0:
            return owned
        needed = self.record_size - remainder
        if len(tail) < needed:
            if at_end:
                raise ShuffleError("object ends with a torn fixed-width record")
            raise ShuffleError(
                "record exceeds the peek window; increase peek_bytes"
            )
        return owned + tail[:needed]

    def sample_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> list[bytes]:
        skip = self._first_record_offset(global_start)
        usable = window[skip:]
        usable = usable[: len(usable) - (len(usable) % self.record_size)]
        return self.split(usable)
