"""Record formats understood by the shuffle operator.

The shuffle moves *records* — self-contained byte strings with a
comparable sort key.  A :class:`RecordCodec` tells the operator how to
split a byte buffer into records, extract keys, and — crucially for
range-partitioned input splits — how to align an arbitrary byte range to
record boundaries.  Codecs must be picklable: they travel to workers
inside call payloads.

Two concrete codecs cover the library's needs:

* :class:`LineRecordCodec` — newline-delimited text records with a
  user-supplied key function (used for BED genomics data);
* :class:`FixedWidthCodec` — fixed-size binary records whose key is a
  big-endian unsigned prefix (used by synthetic shuffle benchmarks).
"""

from __future__ import annotations

import typing as t

from repro.errors import ShuffleError
from repro.shuffle import kernels


class RecordCodec:
    """How the shuffle splits buffers into records and orders them."""

    def split(self, buffer: bytes) -> list[bytes]:
        """Split ``buffer`` into complete records."""
        raise NotImplementedError

    def join(self, records: t.Iterable[bytes]) -> bytes:
        """Concatenate records back into a buffer."""
        raise NotImplementedError

    def key(self, record: bytes) -> t.Any:
        """The record's sort key (any comparable value)."""
        raise NotImplementedError

    # -- vectorized fast-path hooks (optional) -------------------------
    # A codec advertises the numpy kernels by describing its record
    # layout and an order-preserving uint64 key encoding.  The defaults
    # opt out, so custom codecs run the scalar path unchanged.

    def supports_vectorized(self) -> bool:
        """Whether this codec advertises the vectorized kernel layer."""
        return self.vector_spec() is not None

    def vector_layout(self, buffer: bytes):
        """``(starts, ends)`` int64 offset arrays of every record in
        ``buffer``, or ``None`` to use the scalar path.  Must validate
        the buffer exactly like :meth:`split` (same errors)."""
        return None

    def vector_spec(self) -> kernels.KeySpec | None:
        """The codec's key encoding, or ``None`` (scalar keys only)."""
        return None

    def align_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> bytes | None:
        """``window`` trimmed to its complete records — the buffer whose
        split equals :meth:`sample_window` — or ``None`` to opt out."""
        return None

    def as_arrays(self, buffer: bytes):
        """``(keys ndarray, (starts, ends) offsets)`` of ``buffer``, or
        ``None`` when the codec (or environment) is not vectorizable."""
        view = kernels.record_view(self, buffer)
        if view is None:
            return None
        return view.keys, (view.starts, view.ends)

    def extract_split(
        self,
        base: bytes,
        tail: bytes,
        is_first: bool,
        at_end: bool,
        global_start: int,
    ) -> bytes:
        """Record-aligned buffer owned by the split ``[start, end)``.

        ``base`` is the raw bytes of the split, ``tail`` a peek window
        immediately after it.  A split owns every record that *starts*
        inside it; torn leading records belong to the previous split.
        """
        raise NotImplementedError

    def sample_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> list[bytes]:
        """Complete records found in a read-ahead ``window`` (for sampling)."""
        raise NotImplementedError


class LineRecordCodec(RecordCodec):
    """Newline-delimited records; key extracted by a picklable callable.

    ``key_fn`` receives the record *without* its trailing newline.  An
    optional ``key_spec`` — a :class:`~repro.shuffle.kernels.KeySpec`
    computing the *same* keys as ``key_fn`` — opts the codec into the
    vectorized kernels; without one, line records always take the
    scalar path (``key_fn`` is opaque).
    """

    def __init__(
        self,
        key_fn: t.Callable[[bytes], t.Any],
        key_spec: kernels.KeySpec | None = None,
    ):
        self.key_fn = key_fn
        self.key_spec = key_spec

    def split(self, buffer: bytes) -> list[bytes]:
        if not buffer:
            return []
        if not buffer.endswith(b"\n"):
            raise ShuffleError(
                "line-record buffer does not end with a newline; "
                "was the split record-aligned?"
            )
        # One slice per record off the precomputed newline offsets —
        # no second materialization re-appending the delimiter.
        records = []
        start = 0
        find = buffer.find
        while True:
            newline = find(b"\n", start)
            if newline < 0:
                return records
            records.append(buffer[start : newline + 1])
            start = newline + 1

    def join(self, records: t.Iterable[bytes]) -> bytes:
        return b"".join(records)

    def key(self, record: bytes) -> t.Any:
        return self.key_fn(record.rstrip(b"\n"))

    def extract_split(
        self,
        base: bytes,
        tail: bytes,
        is_first: bool,
        at_end: bool,
        global_start: int,
    ) -> bytes:
        if is_first:
            skip = 0
        else:
            newline = base.find(b"\n")
            if newline < 0:
                # The record starting before this split swallows it whole.
                return b""
            skip = newline + 1
        if at_end:
            extend = len(tail)
        else:
            newline = tail.find(b"\n")
            if newline < 0:
                raise ShuffleError(
                    "record exceeds the peek window; increase peek_bytes"
                )
            extend = newline + 1
        return base[skip:] + tail[:extend]

    def sample_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> list[bytes]:
        lines = window.split(b"\n")
        lines = lines[:-1]  # last element is empty or a torn record
        if not is_first and lines:
            lines = lines[1:]  # first line may be torn
        return [line + b"\n" for line in lines]

    def vector_layout(self, buffer: bytes):
        if kernels.np is None:
            return None
        if not buffer:
            return kernels.line_layout(kernels.np.frombuffer(buffer, "u1"))
        if not buffer.endswith(b"\n"):
            raise ShuffleError(
                "line-record buffer does not end with a newline; "
                "was the split record-aligned?"
            )
        return kernels.line_layout(kernels.np.frombuffer(buffer, "u1"))

    def vector_spec(self) -> kernels.KeySpec | None:
        return self.key_spec

    def align_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> bytes | None:
        last_newline = window.rfind(b"\n")
        if last_newline < 0:
            return b""
        if is_first:
            start = 0
        else:
            first_newline = window.find(b"\n")
            if first_newline == last_newline:
                return b""  # only line is torn-prefix territory
            start = first_newline + 1
        return window[start : last_newline + 1]


class FixedWidthCodec(RecordCodec):
    """Fixed-width binary records keyed by a big-endian unsigned prefix."""

    def __init__(self, record_size: int, key_bytes: int | None = None):
        if record_size < 1:
            raise ShuffleError(f"record_size must be >= 1, got {record_size}")
        if key_bytes is None:
            key_bytes = min(8, record_size)
        if not 1 <= key_bytes <= record_size:
            raise ShuffleError(
                f"key_bytes must be in [1, record_size], got {key_bytes}"
            )
        self.record_size = record_size
        self.key_bytes = key_bytes

    def split(self, buffer: bytes) -> list[bytes]:
        if len(buffer) % self.record_size != 0:
            raise ShuffleError(
                f"buffer length {len(buffer)} is not a multiple of record "
                f"size {self.record_size}"
            )
        size = self.record_size
        return [buffer[start : start + size] for start in range(0, len(buffer), size)]

    def join(self, records: t.Iterable[bytes]) -> bytes:
        return b"".join(records)

    def key(self, record: bytes) -> int:
        return int.from_bytes(record[: self.key_bytes], "big")

    def _first_record_offset(self, global_start: int) -> int:
        return (-global_start) % self.record_size

    def extract_split(
        self,
        base: bytes,
        tail: bytes,
        is_first: bool,
        at_end: bool,
        global_start: int,
    ) -> bytes:
        skip = self._first_record_offset(global_start)
        owned = base[skip:]
        remainder = len(owned) % self.record_size
        if remainder == 0:
            return owned
        needed = self.record_size - remainder
        if len(tail) < needed:
            if at_end:
                raise ShuffleError("object ends with a torn fixed-width record")
            raise ShuffleError(
                "record exceeds the peek window; increase peek_bytes"
            )
        return owned + tail[:needed]

    def sample_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> list[bytes]:
        skip = self._first_record_offset(global_start)
        usable = window[skip:]
        usable = usable[: len(usable) - (len(usable) % self.record_size)]
        return self.split(usable)

    def vector_layout(self, buffer: bytes):
        if kernels.np is None:
            return None
        return kernels.fixed_layout(len(buffer), self.record_size)

    def vector_spec(self) -> kernels.KeySpec | None:
        if self.key_bytes > 8:
            return None  # key exceeds uint64; scalar path only
        return kernels.PrefixKeySpec(self.key_bytes)

    def align_window(
        self, window: bytes, is_first: bool, global_start: int
    ) -> bytes | None:
        skip = self._first_record_offset(global_start)
        usable = window[skip:]
        return usable[: len(usable) - (len(usable) % self.record_size)]
