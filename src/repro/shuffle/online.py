"""Online shuffle sort: mid-stream substrate re-selection (OnlineTuner v2).

:class:`OnlineShuffleSort` turns the one-shot pre-flight decision of
:func:`~repro.shuffle.adaptive.choose_exchange_substrate` into a
**control loop running inside the shuffle**.  The input object is cut
into a fixed (mapper × chunk) grid up front; mappers then execute in
*waves* — wave ``k`` reads and publishes every mapper's chunk ``k`` —
and between waves the driver:

1. refits a profile copy from the waves' *observed* chunk publish rates
   (:func:`~repro.shuffle.adaptive.fit_stream_profiles` — the telemetry
   the pipeline produced anyway, no dedicated probe);
2. re-runs :func:`~repro.shuffle.adaptive.choose_exchange_substrate` on
   the **remaining** bytes, and — behind a hysteresis margin — switches
   the worker count, shard count, mode, or (at the chunk boundary) the
   exchange substrate itself for every future wave;
3. when the running substrate is the rebalancing relay fleet, re-routes
   future chunks of hot (mapper, reducer) cells at chunk grain
   (:func:`~repro.shuffle.relay.build_chunk_rebalance_assignments`
   installed as a :meth:`~repro.shuffle.relay.PartitionLoadRouter.with_chunk_epoch`).

Reducers are substrate-agnostic subscribers: a tiny **control plane**
on object storage (a grid record plus one immutable *route record* per
wave, published before that wave's mappers are submitted) tells every
reducer which substrate carries which wave, so a reducer simply follows
the route table chunk by chunk — chunks already published on an earlier
substrate keep their routes, the rendezvous invariant mid-switch.

Because each wave reads only its own input sub-range (chunked map-side
*input* reads), the pipeline fill is one chunk's read + publish instead
of the whole split read + the first chunk — the shape
``choose_exchange_substrate(stream_chunked_input=True)`` prices.

Byte parity: each reducer reassembles its partition in (mapper, chunk)
order — exactly the record order the staged mapper would have
partitioned in — then applies the same stable sort, so the sorted runs
are byte-identical to every static substrate's at the same boundaries.

The whole decision history lands in a
:class:`~repro.shuffle.adaptive.DecisionTimeline` (the ``auto_sort``
stage records it as ``substrate_decision``); benchmark S12 measures
the payoff against every static decision under a mid-run rate shift.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.cas import cas_enabled, sha256_hex
from repro.cloud.objectstore.errors import NoSuchKey
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.errors import ShuffleError
from repro.shuffle.adaptive import (
    DecisionPoint,
    DecisionTimeline,
    StreamRateSample,
    SubstrateDecision,
    SubstrateEstimate,
    choose_exchange_substrate,
    fit_stream_profiles,
)
from repro.shuffle.cacheplanner import CacheShuffleCostModel
from repro.shuffle.content import build_run_manifest
from repro.shuffle.exchange import ExchangeReport, ObjectStoreExchange
from repro.shuffle.operator import ShuffleResult, ShuffleSort, _jsonable, _split
from repro.shuffle.planner import ShuffleCostModel
from repro.shuffle.records import RecordCodec
from repro.shuffle.relay import (
    PartitionLoadRouter,
    build_chunk_rebalance_assignments,
    build_rebalance_assignments,
)
from repro.shuffle.relayplanner import RelayShuffleCostModel
from repro.shuffle import kernels
from repro.shuffle.sampler import partition_skew_of
from repro.shuffle.streaming import StreamConfig, _make_port
from repro.sim import SimEvent
from repro.storage import paths
from repro.storage.serializer import deserialize, serialize


# ----------------------------------------------------------------------
# control-plane key layout (always on object storage)
# ----------------------------------------------------------------------
def online_grid_key(ctl_prefix: str) -> str:
    """COS object describing the fixed (mapper × chunk) grid."""
    return f"{ctl_prefix}/grid"


def online_route_key(ctl_prefix: str, wave: int) -> str:
    """COS object routing wave ``wave``'s chunks to their substrate."""
    return f"{ctl_prefix}/w{wave:05d}"


def _poll_object(ctx, bucket: str, key: str, interval: float) -> t.Generator:
    """GET ``bucket/key``, polling with gentle backoff until it exists."""
    delay = interval
    while True:
        try:
            raw = yield ctx.storage.get(bucket, key)
        except NoSuchKey:
            yield ctx.sleep(delay)
            delay = min(delay * 1.5, interval * 4)
        else:
            return raw


class _RouteTable:
    """Reducer-side cache of wave → stream port.

    Route records are immutable once written (the driver publishes wave
    ``k``'s record before submitting wave ``k``'s mappers), so each is
    read at most once per reducer; ports are shared across waves that
    route to the same substrate instance (``route_id``).
    """

    def __init__(self, ctx, bucket: str, ctl_prefix: str, poll_interval: float):
        self.ctx = ctx
        self.bucket = bucket
        self.ctl_prefix = ctl_prefix
        self.poll_interval = poll_interval
        self._descriptors: dict[int, dict] = {}
        self._ports: dict[str, t.Any] = {}

    def port(self, wave: int) -> t.Generator:
        descriptor = self._descriptors.get(wave)
        if descriptor is None:
            raw = yield from _poll_object(
                self.ctx, self.bucket,
                online_route_key(self.ctl_prefix, wave), self.poll_interval,
            )
            descriptor = deserialize(raw)
            self._descriptors[wave] = descriptor
        route_id = descriptor["route_id"]
        port = self._ports.get(route_id)
        if port is None:
            port = _make_port(self.ctx, descriptor)
            self._ports[route_id] = port
        return port


# ----------------------------------------------------------------------
# worker stages
# ----------------------------------------------------------------------
def online_wave_mapper(ctx, task: dict) -> t.Generator:
    """Read, partition and publish one wave's chunk units.

    Task fields: ``units`` (list of ``{mapper_id, chunk, start, end}``
    input sub-ranges), ``bucket, key, object_size, peek_bytes,
    boundaries, codec, partition_throughput`` and the ``stream`` port
    descriptor of this wave's substrate.  Unlike the streaming mapper,
    the *input read itself* is chunked: each unit reads only its own
    sub-range before publishing, so the pipeline fill is one chunk's
    read + publish, not the whole split read.

    Returns per-wave telemetry the driver's control loop feeds back:
    summed ``read_s``/``publish_s``, the published logical bytes, and
    the per-(mapper, chunk) reducer-byte ``cells`` behind hot-partition
    rerouting.
    """
    started_at = ctx.sim.now
    codec: RecordCodec = task["codec"]
    object_size = task["object_size"]
    boundaries = task["boundaries"]
    parts = len(boundaries) + 1
    port = _make_port(ctx, task["stream"])

    records_total = 0
    read_s = 0.0
    publish_s = 0.0
    published_logical = 0.0
    partition_bytes = [0.0] * parts
    cells: list[dict] = []
    kernel_kinds: set[str] = set()
    kernel_s = 0.0
    for unit in task["units"]:
        start, end = unit["start"], unit["end"]
        window_end = min(object_size, end + task["peek_bytes"])
        before = ctx.sim.now
        raw = yield ctx.storage.get_range(
            task["bucket"], task["key"], start, window_end
        )
        read_s += ctx.sim.now - before
        base, tail = raw[: end - start], raw[end - start :]
        owned = codec.extract_split(
            base,
            tail,
            is_first=(start == 0),
            at_end=(end >= object_size),
            global_start=start,
        )
        outcome = kernels.partition_buffer(codec, owned, boundaries)
        segments = outcome.segments()
        records_total += outcome.records
        kernel_kinds.add(outcome.kernel)
        kernel_s += outcome.elapsed_s
        yield ctx.compute_bytes(len(owned), task["partition_throughput"])
        cell_bytes = [len(segment) * ctx.logical_scale for segment in segments]
        before = ctx.sim.now
        yield from port.publish(unit["mapper_id"], unit["chunk"], segments)
        publish_s += ctx.sim.now - before
        published_logical += sum(cell_bytes)
        for reducer_id, logical in enumerate(cell_bytes):
            partition_bytes[reducer_id] += logical
        cells.append(
            {"mapper": unit["mapper_id"], "chunk": unit["chunk"],
             "bytes": cell_bytes}
        )
    kernel = "mixed" if len(kernel_kinds) > 1 else next(
        iter(kernel_kinds), kernels.KERNEL_SCALAR
    )
    return {
        "records": records_total,
        "units": len(task["units"]),
        "chunks": len(task["units"]),
        "read_s": read_s,
        "publish_s": publish_s,
        "published_logical": published_logical,
        "partition_bytes": partition_bytes,
        "cells": cells,
        "started_at": started_at,
        "kernel": kernel,
        "kernel_records": records_total,
        "kernel_s": kernel_s,
    }


def online_stream_reducer(ctx, task: dict) -> t.Generator:
    """Follow the route table chunk by chunk; sort as chunks land.

    Task fields: ``reducer_id, bucket, ctl_prefix, poll_interval,
    buffer_bytes, out_bucket, output_key, codec, sort_throughput``.
    The grid record supplies the (mapper × chunk) shape; each chunk's
    substrate comes from that wave's route record, so the reducer keeps
    fetching seamlessly across mid-stream substrate switches (chunks
    published before a switch keep their old route).  Buffering,
    backpressure and the incremental sorter mirror the streaming
    reducer; the reassembly order (mapper-major, then chunk) is the
    staged record order, so the sorted run is byte-identical.
    """
    # Imported here (not at module top) to avoid a circular import:
    # streaming imports operator which this module extends.
    from repro.shuffle.streaming import _StreamBuffer

    started_at = ctx.sim.now
    codec: RecordCodec = task["codec"]
    reducer_id = task["reducer_id"]
    poll_interval = task["poll_interval"]
    raw = yield from _poll_object(
        ctx, task["bucket"], online_grid_key(task["ctl_prefix"]), poll_interval
    )
    grid = deserialize(raw)
    mappers: int = grid["mappers"]
    chunk_counts: list[int] = grid["chunks"]
    routes = _RouteTable(ctx, task["bucket"], task["ctl_prefix"], poll_interval)
    buffer = _StreamBuffer(ctx.sim, task["buffer_bytes"])
    chunks: dict[int, dict[int, bytes]] = {m: {} for m in range(mappers)}
    finished = {"fetchers": 0}

    def consume_stream(mapper_id: int) -> t.Generator:
        for chunk_index in range(chunk_counts[mapper_id]):
            yield from buffer.wait_for_space()
            port = yield from routes.port(chunk_index)
            data = yield from port.fetch_chunk(mapper_id, reducer_id, chunk_index)
            chunks[mapper_id][chunk_index] = data
            buffer.arrived(len(data), len(data) * ctx.logical_scale)
        finished["fetchers"] += 1
        buffer.notify_work()

    def sorter() -> t.Generator:
        while True:
            if buffer.queue:
                real_len, logical = buffer.queue.popleft()
                if real_len > 0:
                    yield ctx.compute_bytes(real_len, task["sort_throughput"])
                buffer.drained(logical)
                continue
            if finished["fetchers"] == mappers:
                return
            yield buffer.work_event()

    fetchers = [
        ctx.track(
            ctx.sim.process(
                consume_stream(mapper_id), name=f"onlinefetch-m{mapper_id}"
            )
        )
        for mapper_id in range(mappers)
    ]
    sort_process = ctx.track(ctx.sim.process(sorter(), name="onlinesort"))
    yield ctx.sim.all_of(
        [process.completion for process in fetchers] + [sort_process.completion]
    )

    payload = b"".join(
        chunks[mapper_id][chunk_index]
        for mapper_id in range(mappers)
        for chunk_index in range(chunk_counts[mapper_id])
    )
    outcome = kernels.sort_buffer(codec, payload)
    yield ctx.storage.put(
        task["out_bucket"], task["output_key"], outcome.output, dedup=True
    )
    return {
        "records": outcome.records,
        "bytes": len(outcome.output),
        "output_key": task["output_key"],
        "buffer_waits": buffer.waits,
        "buffer_wait_s": buffer.wait_s,
        "buffer_high_watermark_bytes": buffer.high_watermark,
        "started_at": started_at,
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }


# ----------------------------------------------------------------------
# driver-side substrate stints
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Stint:
    """One provisioned substrate serving a contiguous run of waves."""

    substrate: str
    descriptor: dict
    provisioned: t.Any = None
    fleet: bool = False
    router: PartitionLoadRouter | None = None
    rate_usd_per_s: float = 0.0
    minimum_billed_s: float = 0.0
    started_at: float = 0.0
    ended_at: float | None = None
    peak_fill: float = 0.0
    #: Content log ``(key, sha256, logical)`` of the chunks this stint's
    #: substrate committed, captured just before it is torn down (a
    #: terminated relay/cluster takes its in-memory log with it).
    cas_entries: list[tuple[str, str, float]] = dataclasses.field(
        default_factory=list
    )
    #: Wire bytes this stint's substrate saved through content dedup
    #: (fresh instance per stint, so lifetime totals are per-stint).
    dedup_bytes: float = 0.0

    def billed_usd(self, now: float) -> float:
        end = self.ended_at if self.ended_at is not None else now
        if self.rate_usd_per_s <= 0:
            return 0.0
        return self.rate_usd_per_s * max(
            end - self.started_at, self.minimum_billed_s
        )

    def release(self, now: float) -> None:
        self.ended_at = now
        if self.provisioned is None:
            return
        if hasattr(self.provisioned, "peak_fill_fraction"):
            self.peak_fill = self.provisioned.peak_fill_fraction
        if hasattr(self.provisioned, "cas_entries"):
            self.cas_entries = self.provisioned.cas_entries(
                self.descriptor["prefix"]
            )
        if hasattr(self.provisioned, "stats_totals"):
            self.dedup_bytes = self.provisioned.stats_totals().get(
                "dedup_bytes", 0.0
            )
        elif hasattr(self.provisioned, "stats"):
            self.dedup_bytes = self.provisioned.stats.as_dict().get(
                "dedup_bytes", 0.0
            )
        if self.fleet:
            self.provisioned.terminate()
        elif self.provisioned.state == "running":
            self.provisioned.terminate()
        self.provisioned = None


class OnlineShuffleSort(ShuffleSort):
    """Sort with mid-stream substrate re-selection (OnlineTuner v2).

    Parameters
    ----------
    executor, codec:
        As :class:`~repro.shuffle.operator.ShuffleSort`.
    stream:
        The chunk grain / reducer buffer / poll cadence
        (:class:`~repro.shuffle.streaming.StreamConfig`).
    shuffle_cost, cache_cost, relay_cost:
        Per-substrate workload constants, passed to every
        (re-)selection and to the worker stages.
    time_value_usd_per_hour, substrates, modes, cache_node_type,
    relay_instance_type, max_relay_shards, partition_skew:
        Forwarded to :func:`~repro.shuffle.adaptive.choose_exchange_substrate`
        at every decision point.
    switch_margin:
        Hysteresis: a candidate configuration only displaces the running
        one when its score undercuts the running configuration's
        *refit* score by this fraction — re-provisioning has a cost the
        analytic score does not see, so marginal wins stay put.
    reroute_threshold:
        Hot-partition sensitivity: a chunk-grain reroute fires when the
        hottest shard's share of a wave's observed bytes exceeds its
        fair share by this fraction (projected through the routing that
        will govern the next chunks).

    After :meth:`sort` completes, :attr:`timeline` holds the
    :class:`~repro.shuffle.adaptive.DecisionTimeline` and
    :attr:`report` the uniform exchange report (``substrate`` = the
    final configuration's, ``mode`` = ``"online"``).
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        stream: StreamConfig | None = None,
        shuffle_cost: ShuffleCostModel | None = None,
        cache_cost: CacheShuffleCostModel | None = None,
        relay_cost: RelayShuffleCostModel | None = None,
        time_value_usd_per_hour: float = 1.0,
        substrates: t.Sequence[str] | None = None,
        modes: t.Sequence[str] = ("staged", "streaming"),
        cache_node_type: str = "cache.r5.large",
        relay_instance_type: str | None = None,
        max_relay_shards: int = 8,
        partition_skew: float = 1.0,
        switch_margin: float = 0.05,
        reroute_threshold: float = 0.2,
    ):
        super().__init__(
            executor, codec, backend=ObjectStoreExchange(shuffle_cost)
        )
        if getattr(executor, "speculation", None) is not None:
            raise ShuffleError(
                "OnlineShuffleSort drives its own wave control loop and "
                "does not support speculative execution; disable the "
                "executor's speculation policy"
            )
        if switch_margin < 0:
            raise ShuffleError(
                f"switch_margin must be >= 0, got {switch_margin}"
            )
        if reroute_threshold < 0:
            raise ShuffleError(
                f"reroute_threshold must be >= 0, got {reroute_threshold}"
            )
        self.stream = stream if stream is not None else StreamConfig()
        self.shuffle_cost = self.cost  # backend-carried ShuffleCostModel
        self.cache_cost = (
            cache_cost if cache_cost is not None else CacheShuffleCostModel()
        )
        self.relay_cost = (
            relay_cost if relay_cost is not None else RelayShuffleCostModel()
        )
        self.time_value_usd_per_hour = time_value_usd_per_hour
        self.substrates = tuple(substrates) if substrates is not None else None
        self.modes = tuple(modes)
        self.cache_node_type = cache_node_type
        self.relay_instance_type = relay_instance_type
        self.max_relay_shards = max_relay_shards
        self.partition_skew = partition_skew
        self.switch_margin = switch_margin
        self.reroute_threshold = reroute_threshold
        #: Decision history of the last sort.
        self.timeline = DecisionTimeline()
        #: Chunk-grain hot-partition reroutes of the last sort.
        self.chunk_reroutes = 0

    # ------------------------------------------------------------------
    def sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str | None = None,
        out_prefix: str | None = None,
        workers: int | None = None,
        samplers: int = 8,
        max_workers: int = 256,
    ) -> SimEvent:
        """Sort ``bucket/key``; event → :class:`ShuffleResult`."""
        return self.sim.process(
            self._sort(
                bucket,
                key,
                out_bucket if out_bucket is not None else bucket,
                out_prefix if out_prefix is not None else "online-shuffle",
                workers,
                samplers,
                max_workers,
            ),
            name=f"onlineshuffle.sort:{key}",
        ).completion

    # ------------------------------------------------------------------
    def _decide(
        self,
        logical_bytes: float,
        profile,
        workers: int | None,
        max_workers: int = 256,
    ) -> SubstrateDecision:
        return choose_exchange_substrate(
            max(1.0, logical_bytes),
            profile,
            workers,
            cache_node_type=self.cache_node_type,
            relay_instance_type=self.relay_instance_type,
            time_value_usd_per_hour=self.time_value_usd_per_hour,
            max_workers=max_workers,
            max_relay_shards=self.max_relay_shards,
            substrates=self.substrates,
            modes=self.modes,
            stream_chunk_bytes=self.stream.chunk_bytes,
            stream_chunked_input=True,
            partition_skew=self.partition_skew,
            shuffle_cost=self.shuffle_cost,
            cache_cost=self.cache_cost,
            relay_cost=self.relay_cost,
        )

    def _provision_stint(
        self,
        estimate: SubstrateEstimate,
        out_bucket: str,
        out_prefix: str,
        epoch: int,
        base_router_table: t.Sequence[t.Sequence[int]] | None,
    ) -> _Stint:
        """Provision (warm) the substrate one estimate priced.

        Every stint gets a *fresh* substrate instance: an earlier
        stint's chunks stay resident on its relay/cache until the
        reducers drain them, so reusing the instance could overflow a
        fleet sized only for the remaining bytes.  The stint's
        ``route_id`` names the instance in the reducers' port cache.
        """
        cloud = self.executor.cloud
        profile = cloud.profile
        descriptor = {
            "prefix": f"{out_prefix}/stream",
            "chunk_bytes": self.stream.chunk_bytes,
            "buffer_bytes": self.stream.buffer_bytes,
            "poll_interval": self.stream.poll_interval_s,
            "route_id": f"{estimate.substrate}#{epoch}",
        }
        stint = _Stint(
            substrate=estimate.substrate,
            descriptor=descriptor,
            started_at=self.sim.now,
        )
        if estimate.substrate == "objectstore":
            descriptor.update(kind="objectstore", bucket=out_bucket)
        elif estimate.substrate == "cache":
            nodes = max(1, estimate.shards)
            cluster = cloud.cache.provision_ready(estimate.instance_type, nodes)
            descriptor.update(kind="cache", cluster_id=cluster.cluster_id)
            node_type = profile.memstore.catalog[estimate.instance_type]
            stint.provisioned = cluster
            stint.rate_usd_per_s = nodes * node_type.per_second_usd
            stint.minimum_billed_s = profile.memstore.minimum_billed_s
        else:
            volume_per_s = (
                profile.vm.boot_volume_gb * profile.vm.volume_gb_hour_usd
                / 3600.0
            )
            if estimate.substrate == "relay":
                relay = relay_ready(cloud.vms, estimate.instance_type)
                shards = 1
            else:  # sharded-relay
                shards = max(1, estimate.shards)
                relay = fleet_ready(cloud.vms, estimate.instance_type, shards)
                stint.fleet = True
                if base_router_table is not None and shards >= 2:
                    stint.router = PartitionLoadRouter(base_router_table)
                    relay.set_router(stint.router)
            descriptor.update(kind="relay", relay_id=relay.relay_id)
            instance = relay.instance_type
            stint.provisioned = relay
            stint.rate_usd_per_s = shards * (
                instance.per_second_usd + volume_per_s
            )
            stint.minimum_billed_s = profile.vm.minimum_billed_s
        return stint

    @staticmethod
    def _config_of(estimate: SubstrateEstimate) -> tuple:
        return (
            estimate.substrate,
            estimate.mode,
            estimate.workers,
            estimate.shards,
            estimate.instance_type,
        )

    @staticmethod
    def _group_units(units: list[dict], groups: int) -> list[list[dict]]:
        """Contiguous near-even grouping of units into map tasks."""
        groups = max(1, min(groups, len(units)))
        return [
            units[start:end]
            for start, end in _split(len(units), groups)
            if end > start
        ]

    # ------------------------------------------------------------------
    def _sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str,
        out_prefix: str,
        pinned_workers: int | None,
        samplers: int,
        max_workers: int,
    ) -> t.Generator:
        """Span-owning shell around :meth:`_sort_online`.

        Owns the sort's root span, folds the
        :class:`~repro.shuffle.adaptive.DecisionTimeline` into it as
        span events once the sort finished (every decision point —
        including substrate switches and hot-partition reroutes —
        appears on the exported trace at its simulation time), and on
        failure closes whatever wave spans the aborted body left open.
        """
        started_at = self.sim.now
        sort_span = self.sim.tracer.span(
            f"sort:{out_prefix}", category="sort", substrate="online",
            mode="online",
        )
        with sort_span:
            try:
                result = yield from self._sort_online(
                    bucket, key, out_bucket, out_prefix, pinned_workers,
                    samplers, max_workers, sort_span,
                )
            except BaseException:
                if sort_span.recording:
                    for open_span in self.sim.tracer.open_spans():
                        if (
                            open_span.trace_id == sort_span.trace_id
                            and open_span.category == "wave"
                        ):
                            open_span.end("error")
                raise
            if sort_span.recording:
                for point in self.timeline.points:
                    chosen = point.decision.chosen
                    sort_span.event_at(
                        started_at + point.at_s,
                        f"decision:{point.trigger}",
                        wave=point.wave,
                        substrate=chosen.substrate,
                        mode=chosen.mode,
                        workers=chosen.workers,
                        switched=point.switched,
                        detail=point.detail,
                    )
            return result

    def _sort_online(
        self,
        bucket: str,
        key: str,
        out_bucket: str,
        out_prefix: str,
        pinned_workers: int | None,
        samplers: int,
        max_workers: int,
        sort_span,
    ) -> t.Generator:
        started_at = self.sim.now
        profile = self.executor.cloud.profile
        meta = yield from self._preflight(bucket, key)
        real_size = meta.size
        total_logical = meta.logical_size
        scale = total_logical / real_size if real_size else 1.0
        self.timeline = DecisionTimeline()
        self.chunk_reroutes = 0
        cos_dedup_baseline = self.executor.cloud.store.stats.dedup_bytes

        # --- initial selection (fixes the grid's reducer count R) -----
        decision = self._decide(
            total_logical, profile, pinned_workers, max_workers
        )
        current = decision.chosen
        reducers = pinned_workers if pinned_workers is not None else current.workers
        if reducers < 1:
            raise ShuffleError(f"workers must be >= 1, got {reducers}")
        self.timeline.append(
            DecisionPoint(
                wave=0, at_s=self.sim.now - started_at, trigger="initial",
                decision=decision, switched=False,
            )
        )

        boundaries = yield from self._sample(
            bucket, key, real_size, total_logical, reducers, samplers,
            span=sort_span,
        )

        # --- the fixed (mapper × chunk) grid ---------------------------
        chunk_real = max(1, int(self.stream.chunk_bytes / max(1e-12, scale)))
        # The full-split peek window would dwarf a scaled-down chunk
        # (and every chunk re-reads it): cap it near the chunk size,
        # but never below a record-safe floor.
        peek_bytes = min(
            self.cost.peek_bytes, max(4096, chunk_real // 8)
        )
        mapper_ranges = _split(real_size, reducers)
        chunk_counts: list[int] = []
        units_by_wave: dict[int, list[dict]] = {}
        for mapper_id, (m_start, m_end) in enumerate(mapper_ranges):
            span = m_end - m_start
            count = max(1, math.ceil(span / chunk_real)) if span else 1
            chunk_counts.append(count)
            for chunk, (c_start, c_end) in enumerate(_split(span, count)):
                units_by_wave.setdefault(chunk, []).append(
                    {
                        "mapper_id": mapper_id,
                        "chunk": chunk,
                        "start": m_start + c_start,
                        "end": m_start + c_end,
                    }
                )
        total_waves = len(units_by_wave)

        # --- first stint + control plane -------------------------------
        epoch = 0
        base_table = None
        if (
            current.substrate == "sharded-relay"
            and self.relay_cost.rebalance
            and current.shards >= 2
        ):
            base_table = build_rebalance_assignments(
                self.predicted_partition_bytes, reducers, current.shards
            )
        stint = self._provision_stint(
            current, out_bucket, out_prefix, epoch, base_table
        )
        stints = [stint]
        ctl_prefix = f"{out_prefix}/ctl"
        grid_payload = serialize(
            {"mappers": reducers, "reducers": reducers, "chunks": chunk_counts}
        )
        yield self.executor.storage.put_object(
            out_bucket, online_grid_key(ctl_prefix), grid_payload,
            logical_size=len(grid_payload),
        )

        def publish_route(wave: int) -> SimEvent:
            payload = serialize(stint.descriptor)
            return self.executor.storage.put_object(
                out_bucket, online_route_key(ctl_prefix, wave), payload,
                logical_size=len(payload),
            )

        job = f"onlineshuffle:{out_prefix}@{started_at:.3f}"
        self._record_wave(job, "map", "start")
        # One span covers the whole chunked map phase: online waves are
        # slices of a single logical stage, not separate stages.
        map_span = self.sim.tracer.span(
            "wave:map", category="wave", parent=sort_span, waves=total_waves
        )
        yield publish_route(0)

        # Wave 0's mappers are submitted before the reducers so they
        # enqueue ahead on the account concurrency limit (the reducers
        # park at their rendezvous; mappers must never starve).
        def wave_tasks(units: list[dict], workers: int) -> list[dict]:
            return [
                {
                    "units": group,
                    "bucket": bucket,
                    "key": key,
                    "object_size": real_size,
                    "peek_bytes": peek_bytes,
                    "boundaries": boundaries,
                    "codec": self.codec,
                    "partition_throughput": self.cost.partition_throughput,
                    "stream": dict(stint.descriptor),
                }
                for group in self._group_units(units, workers)
            ]

        map_futures = yield self.executor.map(
            online_wave_mapper, wave_tasks(units_by_wave[0], current.workers),
            span=map_span,
        )

        reduce_tasks = [
            {
                "reducer_id": reducer_id,
                "bucket": out_bucket,
                "ctl_prefix": ctl_prefix,
                "poll_interval": self.stream.poll_interval_s,
                "buffer_bytes": self.stream.buffer_bytes,
                "out_bucket": out_bucket,
                "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
                "codec": self.codec,
                "sort_throughput": self.cost.sort_throughput,
            }
            for reducer_id in range(reducers)
        ]
        self._record_wave(job, "reduce", "start")
        reduce_span = self.sim.tracer.span(
            "wave:reduce", category="wave", parent=sort_span, workers=reducers
        )
        reduce_futures = yield self.executor.map(
            online_stream_reducer, reduce_tasks, span=reduce_span
        )

        # --- the wave control loop --------------------------------------
        samples: dict[str, StreamRateSample] = {}
        observed_cells = [[0.0] * reducers for _ in range(reducers)]
        last_reroute_table = None
        mapped_records = 0
        map_exec_start = float("inf")
        published_logical = 0.0
        stream_chunks = 0
        map_kernel_results: list[dict] = []
        wave = 0
        try:
            while True:
                map_results = yield self.executor.get_result(map_futures)
                map_kernel_results.extend(map_results)
                mapped_records += sum(r["records"] for r in map_results)
                stream_chunks += sum(r["chunks"] for r in map_results)
                map_exec_start = min(
                    map_exec_start,
                    min(r["started_at"] for r in map_results),
                )
                wave_logical = sum(r["published_logical"] for r in map_results)
                published_logical += wave_logical
                wave_cells = [[0.0] * reducers for _ in range(reducers)]
                for result in map_results:
                    for cell in result["cells"]:
                        row = observed_cells[cell["mapper"]]
                        wave_row = wave_cells[cell["mapper"]]
                        for reducer_id, logical in enumerate(cell["bytes"]):
                            row[reducer_id] += logical
                            wave_row[reducer_id] += logical
                samples[current.substrate] = StreamRateSample(
                    substrate=current.substrate,
                    logical_bytes=wave_logical,
                    publish_s=sum(r["publish_s"] for r in map_results),
                    chunks=sum(r["chunks"] for r in map_results),
                    instance_type=current.instance_type,
                )

                wave += 1
                if wave >= total_waves:
                    break
                if current.mode == "staged":
                    # A staged winner wants no inter-wave control points:
                    # route and submit everything left in one batch.
                    for later in range(wave, total_waves):
                        yield publish_route(later)
                    remaining_units = [
                        unit
                        for later in range(wave, total_waves)
                        for unit in units_by_wave[later]
                    ]
                    map_futures = yield self.executor.map(
                        online_wave_mapper,
                        wave_tasks(remaining_units, current.workers),
                        span=map_span,
                    )
                    wave = total_waves
                    map_results = yield self.executor.get_result(map_futures)
                    map_kernel_results.extend(map_results)
                    mapped_records += sum(r["records"] for r in map_results)
                    stream_chunks += sum(r["chunks"] for r in map_results)
                    map_exec_start = min(
                        map_exec_start,
                        min(r["started_at"] for r in map_results),
                    )
                    published_logical += sum(
                        r["published_logical"] for r in map_results
                    )
                    break

                # Refit from observed rates; re-select on what is left.
                remaining = max(1.0, total_logical - published_logical)
                fitted = fit_stream_profiles(profile, samples.values())
                decision = self._decide(
                    remaining, fitted, pinned_workers, max_workers
                )
                candidate = decision.chosen
                keep = next(
                    (
                        estimate
                        for estimate in decision.estimates
                        if estimate.feasible
                        and estimate.substrate == current.substrate
                        and estimate.mode == current.mode
                    ),
                    None,
                )
                switched = self._config_of(candidate) != self._config_of(current)
                if switched and keep is not None:
                    switched = candidate.score_usd < keep.score_usd * (
                        1.0 - self.switch_margin
                    )
                detail = ""
                if switched:
                    detail = (
                        f"{current.substrate}/{current.mode} "
                        f"W={current.workers} -> "
                        f"{candidate.substrate}/{candidate.mode} "
                        f"W={candidate.workers}"
                    )
                self.timeline.append(
                    DecisionPoint(
                        wave=wave, at_s=self.sim.now - started_at,
                        trigger="wave", decision=decision, switched=switched,
                        detail=detail,
                    )
                )
                if switched:
                    new_substrate = (
                        candidate.substrate != current.substrate
                        or candidate.shards != current.shards
                        or candidate.instance_type != current.instance_type
                    )
                    current = candidate
                    if new_substrate:
                        epoch += 1
                        base_table = None
                        if (
                            current.substrate == "sharded-relay"
                            and self.relay_cost.rebalance
                            and current.shards >= 2
                        ):
                            base_table = build_chunk_rebalance_assignments(
                                observed_cells, current.shards
                            )
                        stint = self._provision_stint(
                            current, out_bucket, out_prefix, epoch, base_table
                        )
                        stints.append(stint)
                        last_reroute_table = None
                elif (
                    stint.router is not None
                    and stint.fleet
                    and stint.provisioned is not None
                ):
                    # Same fleet, but a hot (mapper, reducer) cell may
                    # have emerged: project the wave's observed cells
                    # through the routing that will govern the next
                    # chunks and re-route at chunk grain when the
                    # hottest shard drifts well above its fair share.
                    # Installing at the next wave's chunk index is
                    # rendezvous-safe — no chunk >= wave exists yet.
                    shard_count = stint.provisioned.shard_count
                    wave_total = sum(sum(row) for row in wave_cells)
                    loads = [0.0] * shard_count
                    for mapper_id, row in enumerate(wave_cells):
                        for reducer_id, cell_bytes in enumerate(row):
                            if not cell_bytes:
                                continue
                            shard = stint.router.cell(
                                mapper_id, reducer_id, wave
                            )
                            if shard is None:
                                shard = mapper_id + reducer_id
                            if shard == PartitionLoadRouter.SPREAD:
                                share = cell_bytes / shard_count
                                for index in range(shard_count):
                                    loads[index] += share
                            else:
                                loads[shard % shard_count] += cell_bytes
                    imbalance = (
                        max(loads) * shard_count / wave_total
                        if wave_total > 0
                        else 1.0
                    )
                    if (
                        shard_count >= 2
                        and imbalance > 1.0 + self.reroute_threshold
                    ):
                        table = build_chunk_rebalance_assignments(
                            wave_cells, shard_count
                        )
                        if table != last_reroute_table:
                            stint.router = stint.router.with_chunk_epoch(
                                wave, table
                            )
                            stint.provisioned.set_router(stint.router)
                            last_reroute_table = table
                            self.chunk_reroutes += 1
                            self.timeline.append(
                                DecisionPoint(
                                    wave=wave,
                                    at_s=self.sim.now - started_at,
                                    trigger="hot-partition",
                                    decision=decision,
                                    switched=False,
                                    detail=(
                                        f"hot shard at {imbalance:.2f}x "
                                        "fair share -> chunk-grain "
                                        f"reroute across {shard_count} "
                                        "shards"
                                    ),
                                )
                            )

                yield publish_route(wave)
                map_futures = yield self.executor.map(
                    online_wave_mapper,
                    wave_tasks(units_by_wave[wave], current.workers),
                    span=map_span,
                )

            map_ended_at = self.sim.now
            self._record_wave(job, "map", "end")
            map_span.end()
            reduce_results = yield self.executor.get_result(reduce_futures)
            self._record_wave(job, "reduce", "end")
            reduce_span.end()
        finally:
            for s in stints:
                s.release(self.sim.now)

        runs, total_records = self._collect_runs(
            [{"records": mapped_records}], reduce_results, out_bucket
        )
        reduce_exec_start = min(r["started_at"] for r in reduce_results)
        overlap_s = max(
            0.0,
            min(map_ended_at, self.sim.now)
            - max(map_exec_start, reduce_exec_start),
        )
        provisioned_usd = sum(s.billed_usd(self.sim.now) for s in stints)
        final = self.timeline.final.decision.chosen
        store = self.executor.cloud.store
        dedup_bytes = (
            store.stats.dedup_bytes - cos_dedup_baseline
            + sum(s.dedup_bytes for s in stints)
        )
        if cas_enabled():
            # Stints own their substrate instances (terminated above, so
            # their content logs were captured at release); the COS
            # stints' chunk objects live in the shared store's log.
            chunk_entries = list(store.cas_entries(f"{out_prefix}/stream"))
            for s in stints:
                chunk_entries.extend(s.cas_entries)
            self.run_manifest = build_run_manifest(
                inputs={
                    "bucket": bucket,
                    "key": key,
                    "etag": meta.etag,
                    "logical_size": meta.logical_size,
                },
                decision={
                    "substrate": final.substrate,
                    "mode": "online",
                    "workers": reducers,
                    "boundaries": [_jsonable(b) for b in boundaries],
                },
                chunks=chunk_entries,
                outputs=[
                    {
                        "bucket": run.bucket,
                        "key": run.key,
                        "sha256": sha256_hex(store.peek(run.bucket, run.key)),
                        "logical": float(run.size_bytes),
                    }
                    for run in runs
                ],
            )
        else:
            self.run_manifest = None
        self.report = ExchangeReport(
            substrate=final.substrate,
            workers=reducers,
            predicted_s=self.timeline.points[0].decision.chosen.predicted_s,
            actual_s=self.sim.now - started_at,
            provisioned_usd=provisioned_usd,
            overlap_s=overlap_s,
            buffer_high_watermark_bytes=max(
                (r["buffer_high_watermark_bytes"] for r in reduce_results),
                default=0.0,
            ),
            partition_skew=partition_skew_of([run.size_bytes for run in runs]),
            extra={
                "mode": "online",
                "final_mode": final.mode,
                "substrate_switches": self.timeline.switches,
                "chunk_reroutes": self.chunk_reroutes,
                "decision_points": len(self.timeline),
                "stream_chunks": stream_chunks,
                "stints": len(stints),
                "dedup_bytes": dedup_bytes,
                "buffer_backpressure_waits": sum(
                    r["buffer_waits"] for r in reduce_results
                ),
                "buffer_wait_s": sum(
                    r["buffer_wait_s"] for r in reduce_results
                ),
                "predicted_partition_skew": partition_skew_of(
                    self.predicted_partition_bytes
                ),
                "relay_peak_fill": max(
                    (s.peak_fill for s in stints), default=0.0
                ),
                **kernels.kernel_report_extras(
                    map_kernel_results, reduce_results
                ),
            },
        )
        return ShuffleResult(
            runs=runs,
            workers=reducers,
            planned=None,
            boundaries=tuple(boundaries),
            total_records=total_records,
            duration_s=self.sim.now - started_at,
        )
