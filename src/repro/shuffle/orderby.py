"""OrderBy / top-k: the paper's other I/O-bound all-to-all stage.

The paper lists *OrderBy* next to GroupBy as the stages that bottleneck
serverless workflows.  :class:`ShuffleOrderBy` builds it on the same
three-phase range-partitioned shuffle as the sort operator, adding the
two features a ranking query needs:

* **arbitrary sort direction** — descending order wraps every key in a
  comparison-reversing shim, so the same samplers, boundary chooser and
  partitioner work unchanged;
* **limit pushdown (top-k)** — after the map phase the driver knows how
  many records each range partition holds, so a ``LIMIT k`` query only
  runs reducers for the leading partitions and truncates the last one.
  For small ``k`` that skips almost the entire reduce phase — the kind
  of saving that decides whether an interactive query is interactive.
"""

from __future__ import annotations

import dataclasses
import functools
import typing as t

from repro.errors import ShuffleError
from repro.shuffle import kernels
from repro.shuffle.operator import SortedRun, _sample_window_bytes, _split
from repro.shuffle.planner import ShuffleCostModel
from repro.shuffle.records import RecordCodec
from repro.shuffle.sampler import choose_weighted_boundaries
from repro.shuffle.stages import shuffle_mapper, shuffle_reducer, shuffle_sampler
from repro.sim import SimEvent
from repro.storage import paths


@functools.total_ordering
class ReversedKey:
    """Comparison-reversing shim: bigger inner keys sort first.

    Picklable and hashable so it can ride sampler results and task
    payloads through the executor's storage data path.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: t.Any):
        self.inner = inner

    def __lt__(self, other: "ReversedKey") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReversedKey) and other.inner == self.inner

    def __hash__(self) -> int:
        return hash(("ReversedKey", self.inner))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReversedKey({self.inner!r})"

    # pickle support for __slots__
    def __getstate__(self):
        return self.inner

    def __setstate__(self, state):
        self.inner = state


class _DescendingCodec(RecordCodec):
    """Delegating codec whose keys sort in reverse of the inner codec."""

    def __init__(self, inner: RecordCodec):
        self.inner = inner

    def split(self, buffer: bytes) -> list[bytes]:
        return self.inner.split(buffer)

    def join(self, records: t.Iterable[bytes]) -> bytes:
        return self.inner.join(records)

    def key(self, record: bytes) -> ReversedKey:
        return ReversedKey(self.inner.key(record))

    def extract_split(self, base, tail, is_first, at_end, global_start):
        return self.inner.extract_split(base, tail, is_first, at_end, global_start)

    def sample_window(self, window, is_first, global_start):
        return self.inner.sample_window(window, is_first, global_start)

    def vector_layout(self, buffer: bytes):
        return self.inner.vector_layout(buffer)

    def vector_spec(self) -> kernels.KeySpec | None:
        inner_spec = self.inner.vector_spec()
        if inner_spec is None:
            return None
        # Order-reversed encoding: descending sorts ride the ascending
        # integer kernels unchanged.
        return kernels.ReversedKeySpec(inner_spec)

    def align_window(self, window, is_first, global_start):
        return self.inner.align_window(window, is_first, global_start)


@dataclasses.dataclass(frozen=True, slots=True)
class OrderByResult:
    """Outcome of an OrderBy: ranked runs plus pruning metadata."""

    #: Sorted runs in rank order; their concatenation is the answer.
    runs: tuple[SortedRun, ...]
    workers: int
    #: Records in the input object.
    input_records: int
    #: Records actually emitted (== input unless a limit pruned).
    emitted_records: int
    #: Reduce partitions skipped by limit pushdown.
    pruned_partitions: int
    duration_s: float

    @property
    def total_bytes(self) -> int:
        return sum(run.size_bytes for run in self.runs)


class ShuffleOrderBy:
    """Rank a storage object by an arbitrary key, optionally top-k only.

    Parameters
    ----------
    executor:
        A :class:`~repro.executor.FunctionExecutor`.
    codec:
        Record format; its :meth:`~repro.shuffle.records.RecordCodec.key`
        defines the ranking.
    descending:
        Rank from largest to smallest key.
    cost:
        Cost-model constants (sampling, write-combining, throughputs).
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        descending: bool = False,
        cost: ShuffleCostModel | None = None,
    ):
        self.executor = executor
        self.sim = executor.sim
        self.codec = _DescendingCodec(codec) if descending else codec
        self.descending = descending
        self.cost = cost if cost is not None else ShuffleCostModel()

    # ------------------------------------------------------------------
    def order(
        self,
        bucket: str,
        key: str,
        out_bucket: str | None = None,
        out_prefix: str = "orderby",
        workers: int = 8,
        samplers: int = 8,
        limit: int | None = None,
    ) -> SimEvent:
        """Rank ``bucket/key``; event → :class:`OrderByResult`."""
        if limit is not None and limit < 1:
            raise ShuffleError(f"limit must be >= 1, got {limit}")
        return self.sim.process(
            self._order(
                bucket,
                key,
                out_bucket if out_bucket is not None else bucket,
                out_prefix,
                workers,
                samplers,
                limit,
            ),
            name=f"orderby:{key}",
        ).completion

    def top_k(
        self,
        bucket: str,
        key: str,
        k: int,
        out_bucket: str | None = None,
        out_prefix: str = "topk",
        workers: int = 8,
        samplers: int = 8,
    ) -> SimEvent:
        """Convenience: the ``k`` first-ranked records only."""
        return self.order(
            bucket,
            key,
            out_bucket=out_bucket,
            out_prefix=out_prefix,
            workers=workers,
            samplers=samplers,
            limit=k,
        )

    # ------------------------------------------------------------------
    def _order(
        self,
        bucket: str,
        key: str,
        out_bucket: str,
        out_prefix: str,
        workers: int,
        samplers: int,
        limit: int | None,
    ) -> t.Generator:
        started_at = self.sim.now
        if workers < 1:
            raise ShuffleError(f"workers must be >= 1, got {workers}")
        meta = yield self.executor.storage.head_object(bucket, key)
        real_size = meta.size
        if real_size == 0:
            raise ShuffleError(f"cannot order empty object {bucket}/{key}")

        # --- sample ------------------------------------------------------
        sampler_count = max(1, min(samplers, workers))
        sample_splits = _split(real_size, sampler_count)
        window = _sample_window_bytes(real_size, sampler_count, self.cost.sample_bytes)
        sample_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": real_size,
                "sample_bytes": window,
                "sample_keys": self.cost.sample_keys,
                "codec": self.codec,
                "sampler_id": index,
            }
            for index, (start, end) in enumerate(sample_splits)
        ]
        sample_futures = yield self.executor.map(shuffle_sampler, sample_tasks)
        sample_results = yield self.executor.get_result(sample_futures)
        pooled_keys = [k for result in sample_results for k in result["keys"]]
        if not pooled_keys:
            raise ShuffleError(f"sampling found no records in {bucket}/{key}")
        boundaries = choose_weighted_boundaries(pooled_keys, workers)

        # --- map ---------------------------------------------------------
        map_splits = _split(real_size, workers)
        map_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": real_size,
                "peek_bytes": self.cost.peek_bytes,
                "boundaries": boundaries,
                "codec": self.codec,
                "out_bucket": out_bucket,
                "out_key": paths.shuffle_map_output_key(out_prefix, mapper_id),
                "partition_throughput": self.cost.partition_throughput,
                "write_combining": True,
            }
            for mapper_id, (start, end) in enumerate(map_splits)
        ]
        map_futures = yield self.executor.map(shuffle_mapper, map_tasks)
        map_results = yield self.executor.get_result(map_futures)
        input_records = sum(result["records"] for result in map_results)

        # --- limit pushdown ------------------------------------------------
        # Records per rank partition, summed over mappers.
        partition_totals = [
            sum(result["partition_records"][partition] for result in map_results)
            for partition in range(workers)
        ]
        reduce_plan: list[tuple[int, int | None]] = []  # (partition, limit)
        if limit is None:
            reduce_plan = [(partition, None) for partition in range(workers)]
        else:
            remaining = limit
            for partition in range(workers):
                if remaining <= 0:
                    break
                count = partition_totals[partition]
                reduce_plan.append(
                    (partition, remaining if remaining < count else None)
                )
                remaining -= count
        pruned = workers - len(reduce_plan)

        # --- reduce --------------------------------------------------------
        reduce_tasks = []
        for partition, record_limit in reduce_plan:
            segments = [
                (
                    map_tasks[mapper_id]["out_key"],
                    *map_results[mapper_id]["offsets"][partition],
                )
                for mapper_id in range(workers)
            ]
            reduce_tasks.append(
                {
                    "out_bucket": out_bucket,
                    "segments": segments,
                    "output_key": paths.shuffle_output_key(out_prefix, partition),
                    "codec": self.codec,
                    "sort_throughput": self.cost.sort_throughput,
                    "fetch_parallelism": self.cost.fetch_parallelism,
                    "record_limit": record_limit,
                }
            )
        reduce_futures = yield self.executor.map(shuffle_reducer, reduce_tasks)
        reduce_results = yield self.executor.get_result(reduce_futures)

        runs = tuple(
            SortedRun(
                bucket=out_bucket,
                key=result["output_key"],
                records=result["records"],
                size_bytes=result["bytes"],
            )
            for result in reduce_results
        )
        emitted = sum(run.records for run in runs)
        if limit is None and emitted != input_records:
            raise ShuffleError(
                f"orderby lost records: mapped {input_records}, "
                f"reduced {emitted}"
            )
        if limit is not None and emitted != min(limit, input_records):
            raise ShuffleError(
                f"top-k emitted {emitted} records, expected "
                f"{min(limit, input_records)}"
            )
        return OrderByResult(
            runs=runs,
            workers=workers,
            input_records=input_records,
            emitted_records=emitted,
            pruned_partitions=pruned,
            duration_s=self.sim.now - started_at,
        )
