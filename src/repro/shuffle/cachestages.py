"""Worker-side stages of the cache-mediated shuffle.

Same three-phase layout as the object-storage shuffle
(:mod:`repro.shuffle.stages`), but the all-to-all traffic rides the
in-memory key-value store:

* sampling is unchanged (the input lives in object storage either way);
* :func:`cache_shuffle_mapper` partitions its split and MSETs one cache
  value per reducer — W values per mapper, pipelined per cache node;
* :func:`cache_shuffle_reducer` MGETs its W partitions in one batch,
  sorts, and writes the run to object storage (the encode stage reads
  runs from COS regardless of how the shuffle moved its bytes).

Task payloads carry the cache *cluster id*; workers resolve it through
their :meth:`~repro.cloud.faas.context.FunctionContext.kv` accessor.
"""

from __future__ import annotations

import typing as t

from repro.shuffle import kernels
from repro.shuffle.records import RecordCodec


def cache_partition_key(prefix: str, mapper_id: int, reducer_id: int) -> str:
    """Cache key of mapper ``mapper_id``'s segment for reducer ``reducer_id``."""
    return f"{prefix}/m{mapper_id:05d}.r{reducer_id:05d}"


def cache_shuffle_mapper(ctx, task: dict) -> t.Generator:
    """Partition one record-aligned split into cache values.

    Task fields: ``bucket, key, start, end, object_size, peek_bytes,
    boundaries, codec, cluster_id, cache_prefix, mapper_id,
    partition_throughput``.
    """
    codec: RecordCodec = task["codec"]
    start, end = task["start"], task["end"]
    object_size = task["object_size"]
    window_end = min(object_size, end + task["peek_bytes"])
    raw = yield ctx.storage.get_range(task["bucket"], task["key"], start, window_end)
    base, tail = raw[: end - start], raw[end - start :]
    owned = codec.extract_split(
        base,
        tail,
        is_first=(start == 0),
        at_end=(end >= object_size),
        global_start=start,
    )

    outcome = kernels.partition_buffer(codec, owned, task["boundaries"])
    yield ctx.compute_bytes(len(owned), task["partition_throughput"])

    client = ctx.kv(task["cluster_id"])
    mapper_id = task["mapper_id"]
    items = [
        (
            cache_partition_key(task["cache_prefix"], mapper_id, reducer_id),
            segment,
        )
        for reducer_id, segment in enumerate(outcome.segments())
    ]
    yield client.mset(items)
    return {
        "records": outcome.records,
        "bytes": len(outcome.combined),
        "partition_sizes": outcome.partition_sizes,
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }


def cache_shuffle_reducer(ctx, task: dict) -> t.Generator:
    """Fetch one partition from every mapper via the cache, sort, write.

    Task fields: ``cluster_id, cache_prefix, reducer_id, mappers,
    out_bucket, output_key, codec, sort_throughput, cleanup``.
    """
    codec: RecordCodec = task["codec"]
    client = ctx.kv(task["cluster_id"])
    reducer_id = task["reducer_id"]
    keys = [
        cache_partition_key(task["cache_prefix"], mapper_id, reducer_id)
        for mapper_id in range(task["mappers"])
    ]
    segments = yield client.mget(keys)
    if task.get("cleanup", False):
        for key in keys:
            yield client.delete(key)

    buffer = b"".join(segments)
    yield ctx.compute_bytes(len(buffer), task["sort_throughput"])
    outcome = kernels.sort_buffer(codec, buffer)
    yield ctx.storage.put(
        task["out_bucket"], task["output_key"], outcome.output, dedup=True
    )
    return {
        "records": outcome.records,
        "bytes": len(outcome.output),
        "output_key": task["output_key"],
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }
