"""Worker-side stages of the cache-mediated shuffle.

Same three-phase layout as the object-storage shuffle
(:mod:`repro.shuffle.stages`), but the all-to-all traffic rides the
in-memory key-value store:

* sampling is unchanged (the input lives in object storage either way);
* :func:`cache_shuffle_mapper` partitions its split and MSETs one cache
  value per reducer — W values per mapper, pipelined per cache node;
* :func:`cache_shuffle_reducer` MGETs its W partitions in one batch,
  sorts, and writes the run to object storage (the encode stage reads
  runs from COS regardless of how the shuffle moved its bytes).

Task payloads carry the cache *cluster id*; workers resolve it through
their :meth:`~repro.cloud.faas.context.FunctionContext.kv` accessor.
"""

from __future__ import annotations

import typing as t

from repro.shuffle.records import RecordCodec
from repro.shuffle.sampler import partition_index


def cache_partition_key(prefix: str, mapper_id: int, reducer_id: int) -> str:
    """Cache key of mapper ``mapper_id``'s segment for reducer ``reducer_id``."""
    return f"{prefix}/m{mapper_id:05d}.r{reducer_id:05d}"


def cache_shuffle_mapper(ctx, task: dict) -> t.Generator:
    """Partition one record-aligned split into cache values.

    Task fields: ``bucket, key, start, end, object_size, peek_bytes,
    boundaries, codec, cluster_id, cache_prefix, mapper_id,
    partition_throughput``.
    """
    codec: RecordCodec = task["codec"]
    start, end = task["start"], task["end"]
    object_size = task["object_size"]
    window_end = min(object_size, end + task["peek_bytes"])
    raw = yield ctx.storage.get_range(task["bucket"], task["key"], start, window_end)
    base, tail = raw[: end - start], raw[end - start :]
    owned = codec.extract_split(
        base,
        tail,
        is_first=(start == 0),
        at_end=(end >= object_size),
        global_start=start,
    )

    boundaries = task["boundaries"]
    partitions: list[list[bytes]] = [[] for _ in range(len(boundaries) + 1)]
    records = codec.split(owned)
    for record in records:
        partitions[partition_index(codec.key(record), boundaries)].append(record)
    yield ctx.compute_bytes(len(owned), task["partition_throughput"])

    client = ctx.kv(task["cluster_id"])
    mapper_id = task["mapper_id"]
    items = [
        (
            cache_partition_key(task["cache_prefix"], mapper_id, reducer_id),
            codec.join(bucket_records),
        )
        for reducer_id, bucket_records in enumerate(partitions)
    ]
    yield client.mset(items)
    return {
        "records": len(records),
        "bytes": sum(len(data) for _key, data in items),
        "partition_sizes": [len(data) for _key, data in items],
    }


def cache_shuffle_reducer(ctx, task: dict) -> t.Generator:
    """Fetch one partition from every mapper via the cache, sort, write.

    Task fields: ``cluster_id, cache_prefix, reducer_id, mappers,
    out_bucket, output_key, codec, sort_throughput, cleanup``.
    """
    codec: RecordCodec = task["codec"]
    client = ctx.kv(task["cluster_id"])
    reducer_id = task["reducer_id"]
    keys = [
        cache_partition_key(task["cache_prefix"], mapper_id, reducer_id)
        for mapper_id in range(task["mappers"])
    ]
    segments = yield client.mget(keys)
    if task.get("cleanup", False):
        for key in keys:
            yield client.delete(key)

    buffer = b"".join(segments)
    records = codec.split(buffer)
    yield ctx.compute_bytes(len(buffer), task["sort_throughput"])
    records.sort(key=codec.key)
    output = codec.join(records)
    yield ctx.storage.put(task["out_bucket"], task["output_key"], output)
    return {
        "records": len(records),
        "bytes": len(output),
        "output_key": task["output_key"],
    }
