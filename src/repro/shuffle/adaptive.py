"""Online (probe-based) shuffle tuning — Primula's "on the fly" planner.

The analytic planner in :mod:`repro.shuffle.planner` is only as good as
its calibration constants.  Primula's practical contribution is picking
the worker count *at runtime*: before a shuffle, it measures what the
substrate actually delivers and plans on those numbers instead of
yesterday's.

:class:`OnlineTuner` reproduces that loop:

1. **probe** — one ordinary cloud function performs a handful of small
   PUT/GETs (request latency), one large PUT/GET (effective per-
   connection bandwidth, instance NIC included) and reports its own
   startup delay;
2. **fit** — the measurements replace the corresponding constants in a
   copy of the region profile (the ops/s ceiling is not probeable
   without flooding the store, so it stays a prior — as in Primula,
   which reacts to throttling during execution instead);
3. **plan** — the standard analytic planner runs on the fitted profile.

Benchmark S10 measures the payoff: when the region misbehaves (slow
NICs, inflated latency), the statically calibrated planner picks a poor
worker count while the tuner stays near the oracle.
"""

from __future__ import annotations

import copy
import dataclasses
import statistics
import typing as t

from repro.cloud.profiles import LatencyModel
from repro.errors import ShuffleError
from repro.shuffle.planner import ShuffleCostModel, ShufflePlan, plan_shuffle
from repro.sim import SimEvent


@dataclasses.dataclass(frozen=True, slots=True)
class ProbeReport:
    """What one probe invocation measured (virtual seconds / bytes-per-s)."""

    read_latency_s: float
    write_latency_s: float
    connection_bandwidth_bps: float
    startup_s: float
    duration_s: float
    requests: int

    def describe(self) -> str:
        return (
            f"probe: read {self.read_latency_s * 1000:.1f} ms, write "
            f"{self.write_latency_s * 1000:.1f} ms, "
            f"{self.connection_bandwidth_bps / 1e6:.1f} MB/s, startup "
            f"{self.startup_s:.2f} s ({self.requests} requests in "
            f"{self.duration_s:.2f} s)"
        )


def probe_worker(ctx, task: dict) -> t.Generator:
    """Measure the storage substrate from inside a function instance.

    Task fields: ``bucket, prefix, requests, small_bytes, large_bytes``.
    Returns raw samples; the driver aggregates (medians are robust to a
    single slow request, which is the norm, not the exception).
    """
    started_at = ctx.sim.now
    bucket = task["bucket"]
    prefix = task["prefix"]
    requests = task["requests"]
    # Small objects carry logical_size=real so latency probes stay
    # latency-dominated even on scaled-down experiment clouds.
    small = b"\x5a" * task["small_bytes"]
    write_samples = []
    for index in range(requests):
        before = ctx.sim.now
        yield ctx.storage.put(
            bucket, f"{prefix}/lat{index}", small, logical_size=len(small)
        )
        write_samples.append(ctx.sim.now - before)
    read_samples = []
    for index in range(requests):
        before = ctx.sim.now
        yield ctx.storage.get(bucket, f"{prefix}/lat{index}")
        read_samples.append(ctx.sim.now - before)

    large = bytes(task["large_bytes"])
    before = ctx.sim.now
    yield ctx.storage.put(bucket, f"{prefix}/bw", large)
    write_duration = ctx.sim.now - before
    before = ctx.sim.now
    yield ctx.storage.get(bucket, f"{prefix}/bw")
    read_duration = ctx.sim.now - before

    for index in range(requests):
        yield ctx.storage.delete(bucket, f"{prefix}/lat{index}")
    yield ctx.storage.delete(bucket, f"{prefix}/bw")

    return {
        "started_at": started_at,
        "write_samples": write_samples,
        "read_samples": read_samples,
        "large_logical": len(large) * ctx.logical_scale,
        "large_write_s": write_duration,
        "large_read_s": read_duration,
    }


class OnlineTuner:
    """Probe the substrate, fit the profile, plan the shuffle."""

    def __init__(
        self,
        executor,
        requests: int = 6,
        small_bytes: int = 1024,
        large_mb: float = 16.0,
    ):
        if requests < 2:
            raise ShuffleError(f"probe needs >= 2 requests, got {requests}")
        self.executor = executor
        self.sim = executor.sim
        self.requests = requests
        self.small_bytes = small_bytes
        self.large_mb = large_mb

    # ------------------------------------------------------------------
    def probe(self, bucket: str, prefix: str = "primula-probe") -> SimEvent:
        """Run one probe invocation; event → :class:`ProbeReport`."""
        return self.sim.process(
            self._probe(bucket, prefix), name="tuner.probe"
        ).completion

    def _probe(self, bucket: str, prefix: str) -> t.Generator:
        started = self.sim.now
        scale = self.executor.cloud.logical_scale
        # The probe's large object is a *logical* size: the measurement
        # must exercise the same logical transfer a real probe would.
        large_real = max(1, int(self.large_mb * (1 << 20) / scale))
        task = {
            "bucket": bucket,
            "prefix": prefix,
            "requests": self.requests,
            "small_bytes": self.small_bytes,
            "large_bytes": large_real,
        }
        future = yield self.executor.call_async(probe_worker, task)
        raw = yield self.executor.get_result(future)

        read_latency = statistics.median(raw["read_samples"])
        write_latency = statistics.median(raw["write_samples"])
        transfer_write = max(1e-9, raw["large_write_s"] - write_latency)
        transfer_read = max(1e-9, raw["large_read_s"] - read_latency)
        bandwidth = raw["large_logical"] / max(transfer_write, transfer_read)
        return ProbeReport(
            read_latency_s=read_latency,
            write_latency_s=write_latency,
            connection_bandwidth_bps=bandwidth,
            startup_s=raw["started_at"] - started,
            duration_s=self.sim.now - started,
            requests=2 * self.requests + 2,
        )

    # ------------------------------------------------------------------
    def fitted_profile(self, report: ProbeReport):
        """A copy of the region profile with measured constants swapped in."""
        profile = copy.deepcopy(self.executor.cloud.profile)
        profile.objectstore.read_latency = LatencyModel(report.read_latency_s, 0.0)
        profile.objectstore.write_latency = LatencyModel(report.write_latency_s, 0.0)
        profile.faas.instance_bandwidth = report.connection_bandwidth_bps
        # Startup lands in one term that is constant in W; fold the whole
        # measured delay into the cold start for honest predictions.
        profile.faas.invoke_overhead = LatencyModel(0.0, 0.0)
        profile.faas.cold_start = LatencyModel(max(0.0, report.startup_s), 0.0)
        return profile

    def plan(
        self,
        logical_bytes: float,
        report: ProbeReport,
        cost: ShuffleCostModel | None = None,
        max_workers: int = 256,
        candidates: t.Sequence[int] | None = None,
    ) -> ShufflePlan:
        """Plan the shuffle on the probed (fitted) profile."""
        return plan_shuffle(
            logical_bytes,
            self.fitted_profile(report),
            cost,
            max_workers=max_workers,
            candidates=candidates,
        )

    def tune(
        self,
        bucket: str,
        logical_bytes: float,
        cost: ShuffleCostModel | None = None,
        max_workers: int = 256,
        candidates: t.Sequence[int] | None = None,
    ) -> SimEvent:
        """Probe then plan in one step; event → ``(report, plan)``."""
        return self.sim.process(
            self._tune(bucket, logical_bytes, cost, max_workers, candidates),
            name="tuner.tune",
        ).completion

    def _tune(
        self,
        bucket: str,
        logical_bytes: float,
        cost: ShuffleCostModel | None,
        max_workers: int,
        candidates: t.Sequence[int] | None,
    ) -> t.Generator:
        report = yield self.probe(bucket)
        plan = self.plan(
            logical_bytes, report, cost, max_workers=max_workers,
            candidates=candidates,
        )
        return report, plan
