"""Online (probe-based) shuffle tuning — Primula's "on the fly" planner.

The analytic planner in :mod:`repro.shuffle.planner` is only as good as
its calibration constants.  Primula's practical contribution is picking
the worker count *at runtime*: before a shuffle, it measures what the
substrate actually delivers and plans on those numbers instead of
yesterday's.

:class:`OnlineTuner` reproduces that loop:

1. **probe** — one ordinary cloud function performs a handful of small
   PUT/GETs (request latency), one large PUT/GET (effective per-
   connection bandwidth, instance NIC included) and reports its own
   startup delay;
2. **fit** — the measurements replace the corresponding constants in a
   copy of the region profile (the ops/s ceiling is not probeable
   without flooding the store, so it stays a prior — as in Primula,
   which reacts to throttling during execution instead);
3. **plan** — the standard analytic planner runs on the fitted profile.

Benchmark S10a measures the payoff: when the region misbehaves (slow
NICs, inflated latency), the statically calibrated planner picks a poor
worker count while the tuner stays near the oracle.

Version 2 extends the tuner from a pre-flight probe into a
**mid-pipeline control loop**: the online sort
(:class:`repro.shuffle.online.OnlineShuffleSort`) feeds *observed*
chunk publish rates back through :func:`fit_stream_profiles` after
every streaming wave and re-runs :func:`choose_exchange_substrate` on
the remaining bytes, producing a :class:`DecisionTimeline` instead of a
single up-front decision.  Benchmark S12 measures that payoff against
every static decision under a mid-run rate shift.
"""

from __future__ import annotations

import copy
import dataclasses
import math
import statistics
import typing as t

from repro.cloud.profiles import CloudProfile, LatencyModel
from repro.errors import ShuffleError
from repro.shuffle.cacheplanner import (
    CacheShuffleCostModel,
    plan_cache_shuffle,
    predict_cache_shuffle_time,
    required_cache_nodes,
)
from repro.shuffle.planner import (
    PlanPoint,
    ShuffleCostModel,
    ShufflePlan,
    plan_shuffle,
    predict_shuffle_time,
    predict_streaming_shuffle_time,
)
from repro.shuffle.relayplanner import (
    RelayShuffleCostModel,
    SHARD_IMBALANCE_HEADROOM,
    plan_relay_shuffle,
    predict_relay_shuffle_time,
    relay_usable_bytes,
    required_relay_fleet,
    required_relay_instance,
    resolve_relay_instance,
)
from repro.sim import SimEvent


@dataclasses.dataclass(frozen=True, slots=True)
class ProbeReport:
    """What one probe invocation measured (virtual seconds / bytes-per-s)."""

    read_latency_s: float
    write_latency_s: float
    connection_bandwidth_bps: float
    startup_s: float
    duration_s: float
    requests: int

    def describe(self) -> str:
        return (
            f"probe: read {self.read_latency_s * 1000:.1f} ms, write "
            f"{self.write_latency_s * 1000:.1f} ms, "
            f"{self.connection_bandwidth_bps / 1e6:.1f} MB/s, startup "
            f"{self.startup_s:.2f} s ({self.requests} requests in "
            f"{self.duration_s:.2f} s)"
        )


def probe_worker(ctx, task: dict) -> t.Generator:
    """Measure the storage substrate from inside a function instance.

    Task fields: ``bucket, prefix, requests, small_bytes, large_bytes``.
    Returns raw samples; the driver aggregates (medians are robust to a
    single slow request, which is the norm, not the exception).
    """
    started_at = ctx.sim.now
    bucket = task["bucket"]
    prefix = task["prefix"]
    requests = task["requests"]
    # Small objects carry logical_size=real so latency probes stay
    # latency-dominated even on scaled-down experiment clouds.
    small = b"\x5a" * task["small_bytes"]
    write_samples = []
    for index in range(requests):
        before = ctx.sim.now
        yield ctx.storage.put(
            bucket, f"{prefix}/lat{index}", small, logical_size=len(small)
        )
        write_samples.append(ctx.sim.now - before)
    read_samples = []
    for index in range(requests):
        before = ctx.sim.now
        yield ctx.storage.get(bucket, f"{prefix}/lat{index}")
        read_samples.append(ctx.sim.now - before)

    large = bytes(task["large_bytes"])
    before = ctx.sim.now
    yield ctx.storage.put(bucket, f"{prefix}/bw", large)
    write_duration = ctx.sim.now - before
    before = ctx.sim.now
    yield ctx.storage.get(bucket, f"{prefix}/bw")
    read_duration = ctx.sim.now - before

    for index in range(requests):
        yield ctx.storage.delete(bucket, f"{prefix}/lat{index}")
    yield ctx.storage.delete(bucket, f"{prefix}/bw")

    return {
        "started_at": started_at,
        "write_samples": write_samples,
        "read_samples": read_samples,
        "large_logical": len(large) * ctx.logical_scale,
        "large_write_s": write_duration,
        "large_read_s": read_duration,
    }


class OnlineTuner:
    """Probe the substrate, fit the profile, plan the shuffle."""

    def __init__(
        self,
        executor,
        requests: int = 6,
        small_bytes: int = 1024,
        large_mb: float = 16.0,
    ):
        if requests < 2:
            raise ShuffleError(f"probe needs >= 2 requests, got {requests}")
        self.executor = executor
        self.sim = executor.sim
        self.requests = requests
        self.small_bytes = small_bytes
        self.large_mb = large_mb

    # ------------------------------------------------------------------
    def probe(self, bucket: str, prefix: str = "primula-probe") -> SimEvent:
        """Run one probe invocation; event → :class:`ProbeReport`."""
        return self.sim.process(
            self._probe(bucket, prefix), name="tuner.probe"
        ).completion

    def _probe(self, bucket: str, prefix: str) -> t.Generator:
        started = self.sim.now
        scale = self.executor.cloud.logical_scale
        # The probe's large object is a *logical* size: the measurement
        # must exercise the same logical transfer a real probe would.
        large_real = max(1, int(self.large_mb * (1 << 20) / scale))
        task = {
            "bucket": bucket,
            "prefix": prefix,
            "requests": self.requests,
            "small_bytes": self.small_bytes,
            "large_bytes": large_real,
        }
        future = yield self.executor.call_async(probe_worker, task)
        raw = yield self.executor.get_result(future)

        read_latency = statistics.median(raw["read_samples"])
        write_latency = statistics.median(raw["write_samples"])
        transfer_write = max(1e-9, raw["large_write_s"] - write_latency)
        transfer_read = max(1e-9, raw["large_read_s"] - read_latency)
        bandwidth = raw["large_logical"] / max(transfer_write, transfer_read)
        return ProbeReport(
            read_latency_s=read_latency,
            write_latency_s=write_latency,
            connection_bandwidth_bps=bandwidth,
            startup_s=raw["started_at"] - started,
            duration_s=self.sim.now - started,
            requests=2 * self.requests + 2,
        )

    # ------------------------------------------------------------------
    def fitted_profile(self, report: ProbeReport):
        """A copy of the region profile with measured constants swapped in."""
        return fit_profile(self.executor.cloud.profile, report)

    def plan(
        self,
        logical_bytes: float,
        report: ProbeReport,
        cost: ShuffleCostModel | None = None,
        max_workers: int = 256,
        candidates: t.Sequence[int] | None = None,
    ) -> ShufflePlan:
        """Plan the shuffle on the probed (fitted) profile."""
        return plan_shuffle(
            logical_bytes,
            self.fitted_profile(report),
            cost,
            max_workers=max_workers,
            candidates=candidates,
        )

    def tune(
        self,
        bucket: str,
        logical_bytes: float,
        cost: ShuffleCostModel | None = None,
        max_workers: int = 256,
        candidates: t.Sequence[int] | None = None,
    ) -> SimEvent:
        """Probe then plan in one step; event → ``(report, plan)``."""
        return self.sim.process(
            self._tune(bucket, logical_bytes, cost, max_workers, candidates),
            name="tuner.tune",
        ).completion

    def _tune(
        self,
        bucket: str,
        logical_bytes: float,
        cost: ShuffleCostModel | None,
        max_workers: int,
        candidates: t.Sequence[int] | None,
    ) -> t.Generator:
        report = yield self.probe(bucket)
        plan = self.plan(
            logical_bytes, report, cost, max_workers=max_workers,
            candidates=candidates,
        )
        return report, plan


def fit_profile(profile: CloudProfile, report: ProbeReport) -> CloudProfile:
    """A copy of ``profile`` with the probe's measurements swapped in."""
    fitted = copy.deepcopy(profile)
    fitted.objectstore.read_latency = LatencyModel(report.read_latency_s, 0.0)
    fitted.objectstore.write_latency = LatencyModel(report.write_latency_s, 0.0)
    fitted.faas.instance_bandwidth = report.connection_bandwidth_bps
    # Startup lands in one term that is constant in W; fold the whole
    # measured delay into the cold start for honest predictions.
    fitted.faas.invoke_overhead = LatencyModel(0.0, 0.0)
    fitted.faas.cold_start = LatencyModel(max(0.0, report.startup_s), 0.0)
    return fitted


# ----------------------------------------------------------------------
# adaptive exchange-substrate selection
# ----------------------------------------------------------------------
#: Substrate names in tie-breaking order (simplest infrastructure
#: first: pay-as-you-go storage, then scale-out cache, then one relay
#: VM, then a relay fleet).
EXCHANGE_SUBSTRATES = ("objectstore", "cache", "relay", "sharded-relay")

#: Execution modes in tie-breaking order (the staged barrier is the
#: simpler machine; streaming must *win* to be chosen).
EXCHANGE_MODES = ("staged", "streaming")


def streaming_chunk_count(
    logical_bytes: float, workers: int, chunk_bytes: float
) -> int:
    """Chunks per mapper at one worker count (the pipelining grain)."""
    if chunk_bytes <= 0:
        raise ShuffleError(f"chunk_bytes must be positive, got {chunk_bytes}")
    return max(1, math.ceil((logical_bytes / max(1, workers)) / chunk_bytes))


def streaming_chunk_overhead_s(profile: CloudProfile, substrate: str) -> float:
    """Per-chunk request overhead of the readiness protocol.

    What the streaming mode pays per chunk that staging never does: one
    manifest PUT + one discovery GET on object storage, one notification
    read + one extra write round trip on the cache, two relay round
    trips on the relay family.  Multiplied by the chunk count in
    :func:`~repro.shuffle.planner.predict_streaming_shuffle_time`, this
    is the term that keeps infinitely fine chunking from winning.
    """
    if substrate == "objectstore":
        store = profile.objectstore
        return store.write_latency.mean + store.read_latency.mean
    if substrate == "cache":
        memstore = profile.memstore
        return memstore.write_latency.mean + memstore.read_latency.mean
    if substrate in ("relay", "sharded-relay"):
        return 2.0 * profile.vm.relay_request_latency.mean
    raise ShuffleError(f"unknown exchange substrate {substrate!r}")


@dataclasses.dataclass(frozen=True, slots=True)
class SubstrateEstimate:
    """One substrate's predicted execution, priced."""

    substrate: str
    workers: int
    predicted_s: float
    provisioned_usd: float
    score_usd: float
    feasible: bool
    detail: str = ""
    #: Relay-family configuration (1 everywhere else).
    shards: int = 1
    #: Provisioned flavour backing the estimate ("" for objectstore).
    instance_type: str = ""
    #: Execution mode this estimate prices ("staged" or "streaming").
    mode: str = "staged"


@dataclasses.dataclass(frozen=True, slots=True)
class SubstrateDecision:
    """Outcome of :func:`choose_exchange_substrate`."""

    chosen: SubstrateEstimate
    estimates: tuple[SubstrateEstimate, ...]
    #: Max-over-mean partition bytes the estimates were priced with
    #: (1.0 = balanced; the straggler term of every candidate model).
    partition_skew: float = 1.0

    @property
    def substrate(self) -> str:
        return self.chosen.substrate

    def describe(self) -> str:
        lines = []
        if self.partition_skew > 1.0:
            lines.append(f"priced at partition skew {self.partition_skew:.2f}x")
        for estimate in self.estimates:
            marker = "->" if estimate is self.chosen else "  "
            if not estimate.feasible:
                lines.append(f"{marker} {estimate.substrate:<13} infeasible"
                             f" ({estimate.detail})")
                continue
            config = ""
            if estimate.instance_type:
                config = f" [{estimate.shards}x{estimate.instance_type}]"
            if estimate.mode != "staged":
                config += f" [{estimate.mode}]"
            lines.append(
                f"{marker} {estimate.substrate:<13} W={estimate.workers:<4d}"
                f" {estimate.predicted_s:8.2f} s"
                f"  +${estimate.provisioned_usd:.4f} infra"
                f"  score ${estimate.score_usd:.4f}{config}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# OnlineTuner v2: mid-stream telemetry refit and the decision timeline
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class StreamRateSample:
    """Observed publish telemetry of one streaming wave on one substrate.

    Aggregated by the online sort from its wave mappers:
    ``publish_s`` is the summed per-connection seconds spent inside
    ``port.publish`` (which *includes* substrate admission and
    backpressure waits — the `_StreamBuffer`/relay-side wait telemetry
    folded straight into the observed rate), ``chunks`` the number of
    publishes it covers, ``logical_bytes`` what they carried.
    ``backpressure_waits`` carries the substrate's own wait counter for
    the timeline detail.
    """

    substrate: str
    logical_bytes: float
    publish_s: float
    chunks: int
    backpressure_waits: int = 0
    #: Relay-family flavour behind the sample ("" elsewhere) — its NIC
    #: bounds the expected transfer time the refit subtracts.
    instance_type: str = ""

    @property
    def per_chunk_s(self) -> float:
        return self.publish_s / max(1, self.chunks)

    @property
    def chunk_logical_bytes(self) -> float:
        return self.logical_bytes / max(1, self.chunks)


def fit_stream_profiles(
    profile: CloudProfile, samples: t.Iterable[StreamRateSample]
) -> CloudProfile:
    """A profile copy refit from observed mid-stream publish rates.

    The streaming twin of :func:`fit_profile`: instead of a dedicated
    probe invocation, the measurements are the chunk publishes the
    pipeline performed *anyway*.  For each substrate's latest sample the
    observed per-chunk, per-connection seconds are split into the
    expected transfer time at the calibrated bandwidth and a residual;
    the residual is attributed to the substrate's readiness-protocol
    latency knobs (the same two round trips
    :func:`streaming_chunk_overhead_s` charges), **never revising a
    knob below its calibrated prior** — the refit reacts to observed
    degradation monotonically and deterministically, so the decision
    timeline of a seeded run is reproducible.
    """
    fitted = copy.deepcopy(profile)
    for sample in samples:
        if sample.chunks < 1 or sample.logical_bytes <= 0:
            continue
        faas_bw = fitted.faas.instance_bandwidth
        if sample.substrate == "objectstore":
            store = fitted.objectstore
            conn_bw = min(faas_bw, store.per_connection_bandwidth)
            transfer = sample.chunk_logical_bytes / conn_bw
            # One data PUT + one manifest PUT per chunk.
            residual = max(0.0, sample.per_chunk_s - transfer) / 2.0
            store.write_latency = LatencyModel(
                max(store.write_latency.mean, residual), 0.0
            )
            store.read_latency = LatencyModel(
                max(store.read_latency.mean, residual), 0.0
            )
        elif sample.substrate == "cache":
            memstore = fitted.memstore
            conn_bw = min(faas_bw, memstore.per_connection_bandwidth)
            transfer = sample.chunk_logical_bytes / conn_bw
            residual = max(0.0, sample.per_chunk_s - transfer) / 2.0
            memstore.write_latency = LatencyModel(
                max(memstore.write_latency.mean, residual), 0.0
            )
            memstore.read_latency = LatencyModel(
                max(memstore.read_latency.mean, residual), 0.0
            )
        elif sample.substrate in ("relay", "sharded-relay"):
            conn_bw = faas_bw
            if sample.instance_type:
                instance = fitted.vm.catalog.get(sample.instance_type)
                if instance is not None:
                    conn_bw = min(faas_bw, instance.nic_bandwidth)
            transfer = sample.chunk_logical_bytes / conn_bw
            # The streaming overhead model charges two relay round trips
            # per chunk.
            residual = max(0.0, sample.per_chunk_s - transfer) / 2.0
            fitted.vm.relay_request_latency = LatencyModel(
                max(fitted.vm.relay_request_latency.mean, residual), 0.0
            )
        else:
            raise ShuffleError(
                f"unknown exchange substrate {sample.substrate!r}"
            )
    return fitted


@dataclasses.dataclass(frozen=True, slots=True)
class DecisionPoint:
    """One entry of a :class:`DecisionTimeline`.

    ``trigger`` is ``"initial"`` (the pre-flight selection), ``"wave"``
    (a between-chunks re-selection from refit telemetry) or
    ``"hot-partition"`` (a chunk-grain reroute of the relay fleet).
    ``switched`` marks the points where the running configuration
    actually changed.
    """

    wave: int
    at_s: float
    trigger: str
    decision: SubstrateDecision
    switched: bool
    detail: str = ""

    def describe(self) -> str:
        head = f"wave {self.wave} @ {self.at_s:.2f}s [{self.trigger}]"
        if self.switched:
            head += " SWITCH"
        if self.detail:
            head += f" — {self.detail}"
        return head + "\n" + self.decision.describe()


class DecisionTimeline:
    """Ordered record of every (re-)selection of one online sort.

    What the engine records instead of a single
    :class:`SubstrateDecision`: the initial selection, every
    between-chunks re-selection, and every mid-stream hot-partition
    reroute, in wave order.
    """

    def __init__(self) -> None:
        self.points: list[DecisionPoint] = []

    def append(self, point: DecisionPoint) -> None:
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> t.Iterator[DecisionPoint]:
        return iter(self.points)

    @property
    def switches(self) -> int:
        """Number of points that changed the running configuration."""
        return sum(1 for point in self.points if point.switched)

    @property
    def final(self) -> DecisionPoint:
        if not self.points:
            raise ShuffleError("empty decision timeline")
        return self.points[-1]

    def describe(self) -> str:
        return "\n\n".join(point.describe() for point in self.points)


def choose_exchange_substrate(
    logical_bytes: float,
    profile: CloudProfile,
    workers: int | None = None,
    *,
    report: ProbeReport | None = None,
    cache_node_type: str = "cache.r5.large",
    relay_instance_type: str | None = None,
    time_value_usd_per_hour: float = 1.0,
    max_workers: int = 256,
    max_relay_shards: int = 8,
    substrates: t.Sequence[str] | None = None,
    modes: t.Sequence[str] = ("staged",),
    stream_chunk_bytes: float = 32 * (1 << 20),
    stream_chunked_input: bool = False,
    partition_skew: float = 1.0,
    shuffle_cost: ShuffleCostModel | None = None,
    cache_cost: CacheShuffleCostModel | None = None,
    relay_cost: RelayShuffleCostModel | None = None,
) -> SubstrateDecision:
    """Pick the exchange substrate for one shuffle, analytically.

    Evaluates every candidate substrate's cost model — on the *probed*
    profile when an :class:`OnlineTuner` ``report`` is given, mirroring
    Primula's plan-on-what-you-measured loop — and minimizes a single
    monetized score::

        score = predicted_s * time_value_usd_per_hour / 3600
              + provisioned_infrastructure_usd

    ``workers=None`` lets each substrate plan its own optimal count
    (they genuinely differ: the cache and relays tolerate far more
    functions than object storage); a pinned count compares them all at
    that count, the shape of benchmark S8.  ``substrates`` restricts
    the candidates (default: all of :data:`EXCHANGE_SUBSTRATES`).

    ``modes`` makes the *execution mode* a decision variable alongside
    the substrate: with ``("staged", "streaming")`` every substrate is
    additionally priced in the pipelined streaming mode
    (:func:`~repro.shuffle.planner.predict_streaming_shuffle_time` over
    ``stream_chunk_bytes``-sized chunks, charged the substrate's
    per-chunk readiness overhead via
    :func:`streaming_chunk_overhead_s`), and the winner may be e.g.
    "relay, streaming".  With ``workers=None`` each mode picks its own
    optimal worker count from the same curve.  Exact ties break staged
    before streaming (the simpler machine).  ``stream_chunked_input``
    prices streaming candidates with chunked map-side *input* reads —
    the online sort's execution shape, where the split read joins the
    pipeline instead of serialising before it.

    The provisioned term is what object storage never pays: cache
    node-seconds (for a cluster sized by
    :func:`~repro.shuffle.cacheplanner.required_cache_nodes`), relay
    VM-seconds + boot volume (instance sized by
    :func:`~repro.shuffle.relayplanner.required_relay_instance` unless
    pinned), or — for the sharded relay — N of those: the selector
    prices every shard count up to ``max_relay_shards`` and keeps the
    best-scoring fleet, which is how aggregate NIC bandwidth is traded
    against N× provisioned cost.  Each is billed over the predicted
    duration with the provider's minimum billed window — the always-on
    economics the paper credits object storage for avoiding.
    Substrates assume warm (pre-provisioned) infrastructure, as the
    experiments do.  A substrate whose capacity cannot hold the shuffle
    is reported infeasible and never chosen; if *every* candidate is
    infeasible this raises :class:`~repro.errors.ShuffleError`.

    Exact score ties break toward the earlier entry of
    :data:`EXCHANGE_SUBSTRATES` — the simpler infrastructure wins when
    the money says they are equal.

    ``time_value_usd_per_hour=0`` degenerates to pure cost minimization
    (object storage always wins); large values buy latency with
    provisioned hardware.

    ``partition_skew`` is the expected max-over-mean partition bytes of
    the workload (1.0 = uniform keys).  Every candidate model prices
    its straggler reducer with it, and because the substrates expose
    different shares of their runtime to that reducer — the hot
    reducer's fetch crosses a function NIC on object storage but an
    in-VPC relay NIC on the relay family — a skewed workload can pick a
    *different* substrate, mode, worker count or shard count than the
    uniform workload of the same total bytes.

    ``shuffle_cost``/``cache_cost``/``relay_cost`` supply the
    workload-side throughput constants per substrate (defaults:
    library-default cost models).  Callers that will *execute* the
    chosen sort with calibrated workload parameters — the ``auto_sort``
    stage does — must pass the same models here, or the decision is
    priced for a different workload than the one that runs.
    """
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    if time_value_usd_per_hour < 0:
        raise ShuffleError(
            f"time_value_usd_per_hour must be >= 0, got {time_value_usd_per_hour}"
        )
    if max_relay_shards < 1:
        raise ShuffleError(
            f"max_relay_shards must be >= 1, got {max_relay_shards}"
        )
    if partition_skew < 1.0:
        raise ShuffleError(
            f"partition_skew must be >= 1 (max/mean), got {partition_skew}"
        )
    wanted = tuple(substrates) if substrates is not None else EXCHANGE_SUBSTRATES
    for name in wanted:
        if name not in EXCHANGE_SUBSTRATES:
            raise ShuffleError(
                f"unknown exchange substrate {name!r}; expected a subset "
                f"of {EXCHANGE_SUBSTRATES}"
            )
    if not wanted:
        raise ShuffleError("empty candidate substrate set")
    wanted_modes = tuple(modes)
    for mode in wanted_modes:
        if mode not in EXCHANGE_MODES:
            raise ShuffleError(
                f"unknown execution mode {mode!r}; expected a subset of "
                f"{EXCHANGE_MODES}"
            )
    if not wanted_modes:
        raise ShuffleError("empty candidate mode set")
    if report is not None:
        profile = fit_profile(profile, report)
    time_value_per_s = time_value_usd_per_hour / 3600.0

    estimates: list[SubstrateEstimate] = []

    def add_infeasible(substrate: str, detail: str) -> None:
        estimates.append(
            SubstrateEstimate(
                substrate=substrate, workers=0, predicted_s=float("inf"),
                provisioned_usd=float("inf"), score_usd=float("inf"),
                feasible=False, detail=detail,
            )
        )

    def mode_points(
        substrate: str, staged_points: t.Sequence[PlanPoint], mode: str
    ) -> list[PlanPoint]:
        """The candidate curve of one execution mode (staged = as-is)."""
        if mode == "staged":
            return list(staged_points)
        overhead = streaming_chunk_overhead_s(profile, substrate)
        return [
            predict_streaming_shuffle_time(
                point,
                streaming_chunk_count(
                    logical_bytes, point.workers, stream_chunk_bytes
                ),
                overhead,
                chunked_input=stream_chunked_input,
            )
            for point in staged_points
        ]

    def best_estimate(
        substrate: str,
        staged_points: t.Sequence[PlanPoint],
        infra_usd_of: t.Callable[[float], float],
        mode: str,
        shards: int = 1,
        instance_type: str = "",
    ) -> SubstrateEstimate:
        """The mode's best-scoring point of one substrate configuration."""
        point = min(
            mode_points(substrate, staged_points, mode),
            key=lambda point: (point.total_s, point.workers),
        )
        infra = infra_usd_of(point.total_s)
        return SubstrateEstimate(
            substrate=substrate,
            workers=point.workers,
            predicted_s=point.total_s,
            provisioned_usd=infra,
            score_usd=point.total_s * time_value_per_s + infra,
            feasible=True,
            shards=shards,
            instance_type=instance_type,
            mode=mode,
        )

    def add_modes(
        substrate: str,
        staged_points: t.Sequence[PlanPoint],
        infra_usd_of: t.Callable[[float], float],
        shards: int = 1,
        instance_type: str = "",
    ) -> None:
        for mode in EXCHANGE_MODES:
            if mode in wanted_modes:
                estimates.append(
                    best_estimate(
                        substrate, staged_points, infra_usd_of, mode,
                        shards=shards, instance_type=instance_type,
                    )
                )

    def relay_infra_usd(predicted_s: float, instance_type, shards: int) -> float:
        billed = max(predicted_s, profile.vm.minimum_billed_s)
        per_instance = billed * instance_type.per_second_usd + (
            profile.vm.boot_volume_gb
            * (billed / 3600.0)
            * profile.vm.volume_gb_hour_usd
        )
        return shards * per_instance

    relay_cost = relay_cost if relay_cost is not None else RelayShuffleCostModel()

    def relay_points(instance_type, shards: int) -> list[PlanPoint]:
        if workers is None:
            return list(
                plan_relay_shuffle(
                    logical_bytes, profile, instance_type.name, relay_cost,
                    max_workers=max_workers, shards=shards,
                    skew=partition_skew,
                ).curve
            )
        return [
            predict_relay_shuffle_time(
                logical_bytes, workers, profile, instance_type, relay_cost,
                shards=shards, skew=partition_skew,
            )
        ]

    # --- object storage: pay-as-you-go, no provisioned term -----------
    if "objectstore" in wanted:
        cos_cost = shuffle_cost if shuffle_cost is not None else ShuffleCostModel()
        if workers is None:
            cos_points = list(
                plan_shuffle(
                    logical_bytes, profile, cos_cost, max_workers=max_workers,
                    skew=partition_skew,
                ).curve
            )
        else:
            cos_points = [
                predict_shuffle_time(
                    logical_bytes, workers, profile, cos_cost,
                    skew=partition_skew,
                )
            ]
        add_modes("objectstore", cos_points, lambda _s: 0.0)

    # --- cache cluster: node-seconds over the predicted duration ------
    if "cache" in wanted:
        nodes = required_cache_nodes(
            logical_bytes, profile, cache_node_type,
            partition_skew=partition_skew,
        )
        node_type = profile.memstore.catalog[cache_node_type]
        cache_cost = cache_cost if cache_cost is not None else CacheShuffleCostModel()
        if workers is None:
            cache_points = list(
                plan_cache_shuffle(
                    logical_bytes, profile, cache_node_type, nodes, cache_cost,
                    max_workers=max_workers, skew=partition_skew,
                ).curve
            )
        else:
            cache_points = [
                predict_cache_shuffle_time(
                    logical_bytes, workers, profile, node_type, nodes,
                    cache_cost, skew=partition_skew,
                )
            ]

        def cache_infra(predicted_s: float) -> float:
            billed = max(predicted_s, profile.memstore.minimum_billed_s)
            return nodes * node_type.per_second_usd * billed

        add_modes(
            "cache", cache_points, cache_infra,
            shards=nodes, instance_type=cache_node_type,
        )

    # --- VM relay: instance-seconds + volume, scale-up feasibility ----
    if "relay" in wanted:
        if relay_instance_type is not None:
            # An explicitly pinned flavour that does not exist is a caller
            # configuration error, not infeasibility — surface it.
            instance_type = resolve_relay_instance(profile, relay_instance_type)
            relay_type_name: str | None = relay_instance_type
            usable = relay_usable_bytes(profile, instance_type)
            if logical_bytes > usable:
                # A real flavour that cannot hold the shuffle is genuine
                # infeasibility (RelayExchange.validate would reject it).
                relay_type_name = None
                add_infeasible(
                    "relay",
                    f"{logical_bytes:.0f} logical bytes exceed "
                    f"{instance_type.name}'s usable relay memory "
                    f"({usable:.0f} bytes) — the relay substrate is "
                    "scale-up only",
                )
        else:
            try:
                relay_type_name = required_relay_instance(logical_bytes, profile)
                instance_type = resolve_relay_instance(profile, relay_type_name)
            except ShuffleError as exc:
                relay_type_name = None
                add_infeasible("relay", str(exc))
        if relay_type_name is not None:
            add_modes(
                "relay",
                relay_points(instance_type, shards=1),
                lambda s: relay_infra_usd(s, instance_type, shards=1),
                shards=1, instance_type=instance_type.name,
            )

    # --- sharded relay fleet: best-scoring shard count per mode -------
    if "sharded-relay" in wanted:
        if relay_instance_type is not None:
            # Typoed pins are caller errors here too, not infeasibility.
            resolve_relay_instance(profile, relay_instance_type)
        try:
            # Feasibility sizing prices the *hot shard* of the skewed
            # workload; the default load-aware rebalancing of
            # ``ShardedRelayExchange`` spreads it back out, so this is
            # the safe (CRC-routed) lower bound on the fleet.
            fleet_skew = 1.0 if relay_cost.rebalance else partition_skew
            fleet_type_name, min_shards = required_relay_fleet(
                logical_bytes, profile,
                instance_type_name=relay_instance_type,
                max_shards=max_relay_shards,
                partition_skew=fleet_skew,
            )
        except ShuffleError as exc:
            add_infeasible("sharded-relay", str(exc))
        else:
            fleet_instance = resolve_relay_instance(profile, fleet_type_name)
            # One staged curve per shard count, shared across modes
            # (mode_points derives the streaming curve from it).
            shard_curves = {
                shards: relay_points(fleet_instance, shards)
                for shards in range(min_shards, max_relay_shards + 1)
            }
            for mode in EXCHANGE_MODES:
                if mode not in wanted_modes:
                    continue
                best: SubstrateEstimate | None = None
                for shards, points in shard_curves.items():
                    candidate = best_estimate(
                        "sharded-relay",
                        points,
                        lambda s, n=shards: relay_infra_usd(
                            s, fleet_instance, n
                        ),
                        mode,
                        shards=shards,
                        instance_type=fleet_instance.name,
                    )
                    if best is None or (candidate.score_usd, candidate.shards) < (
                        best.score_usd, best.shards
                    ):
                        best = candidate
                estimates.append(t.cast(SubstrateEstimate, best))

    # Keep the estimates in the canonical tie-breaking order.
    order = {name: index for index, name in enumerate(EXCHANGE_SUBSTRATES)}
    mode_order = {name: index for index, name in enumerate(EXCHANGE_MODES)}
    estimates.sort(
        key=lambda estimate: (
            order[estimate.substrate], mode_order.get(estimate.mode, 0)
        )
    )

    feasible = [estimate for estimate in estimates if estimate.feasible]
    if not feasible:
        details = "; ".join(
            f"{estimate.substrate}: {estimate.detail}" for estimate in estimates
        )
        raise ShuffleError(
            f"no feasible exchange substrate among {wanted} for "
            f"{logical_bytes:.0f} logical bytes — {details}"
        )
    chosen = min(
        feasible,
        key=lambda estimate: (
            estimate.score_usd,
            order[estimate.substrate],
            mode_order.get(estimate.mode, 0),
        ),
    )
    return SubstrateDecision(
        chosen=chosen, estimates=tuple(estimates), partition_skew=partition_skew
    )


# ----------------------------------------------------------------------
# Fleet autoscaling policy (the multi-tenant ExchangeService's brain)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class FleetScaleDecision:
    """One autoscaling verdict for a shared relay fleet.

    Attributes
    ----------
    instance_type:
        Relay VM flavour of the target fleet (the policy keeps the
        flavour pinned; shard count is the scaling axis).
    shards:
        Target shard count.
    direction:
        ``"up"`` or ``"down"`` relative to the current fleet.
    reason:
        Human-readable one-liner for the service's scale-event log.
    """

    instance_type: str
    shards: int
    direction: str
    reason: str


def plan_fleet_scale(
    demand_bytes: float,
    profile: CloudProfile,
    current_shards: int,
    instance_type_name: str,
    *,
    min_shards: int = 1,
    max_shards: int = 8,
    headroom: float = SHARD_IMBALANCE_HEADROOM,
    partition_skew: float = 1.0,
    scale_down_margin: float = 0.5,
) -> FleetScaleDecision | None:
    """Decide whether a shared relay fleet should change shard count.

    ``demand_bytes`` is the observed load — the sum of logical exchange
    bytes of every running *and queued* job (the service's queue depth
    expressed in the unit the sizing model understands).  The target is
    whatever :func:`~repro.shuffle.relayplanner.required_relay_fleet`
    sizes for that demand with the given ``partition_skew``, clamped to
    ``[min_shards, max_shards]``.

    Scaling **up** happens as soon as the target exceeds the current
    count — an undersized fleet backpressures every tenant.  Scaling
    **down** is hysteretic: the fleet only shrinks when demand inflated
    by ``scale_down_margin`` *still* fits the smaller count, so a
    sawtooth arrival pattern near a sizing boundary does not thrash the
    fleet through provision/terminate cycles (each of which strands a
    generation's minimum billed seconds).

    Returns ``None`` when the fleet should stay as it is.
    """
    if current_shards < 1:
        raise ShuffleError(f"current_shards must be >= 1, got {current_shards}")
    if not 1 <= min_shards <= max_shards:
        raise ShuffleError(
            f"need 1 <= min_shards <= max_shards, got "
            f"{min_shards}..{max_shards}"
        )
    if scale_down_margin < 0.0:
        raise ShuffleError(
            f"scale_down_margin must be >= 0, got {scale_down_margin}"
        )

    def shards_for(load: float) -> int:
        if load <= 0:
            return min_shards
        _name, shards = required_relay_fleet(
            load,
            profile,
            instance_type_name=instance_type_name,
            max_shards=max_shards,
            headroom=headroom,
            partition_skew=partition_skew,
        )
        return max(min_shards, shards)

    target = shards_for(demand_bytes)
    if target > current_shards:
        return FleetScaleDecision(
            instance_type=instance_type_name,
            shards=target,
            direction="up",
            reason=(
                f"demand {demand_bytes:.0f}B needs {target} shards "
                f"(have {current_shards})"
            ),
        )
    if target < current_shards:
        # Hysteresis: only shrink if padded demand still fits the target.
        padded = shards_for(demand_bytes * (1.0 + scale_down_margin))
        if padded < current_shards:
            return FleetScaleDecision(
                instance_type=instance_type_name,
                shards=padded,
                direction="down",
                reason=(
                    f"demand {demand_bytes:.0f}B (+{scale_down_margin:.0%} "
                    f"margin) fits {padded} shards (have {current_shards})"
                ),
            )
    return None
