"""Analytic model of the VM-relay shuffle.

Counterpart of :mod:`repro.shuffle.planner` (object storage) and
:mod:`repro.shuffle.cacheplanner` (cache cluster) for the third
data-exchange strategy: intermediate partitions rendezvous in the
memory of one provisioned VM.  The input split read and the final
sorted-run write still go through object storage, so those terms are
shared with the other models.

What changes is the all-to-all itself:

* request latency is a single in-VPC round trip, *batched* — a mapper's
  MPUSH and a reducer's MPULL pay one latency for their whole batch
  (one server, one connection), even cheaper than the cache's
  one-per-node-touched;
* the ops/s ceiling of a single-purpose in-memory server is far above
  the object-storage account's, so the W² request floor nearly
  vanishes;
* bandwidth is bounded by **the fleet's aggregate NIC** crossed twice
  (every byte goes in on the map wave and out on the reduce wave).  A
  single relay (``shards=1``) has the scale-up ceiling of one instance
  line rate; a sharded fleet multiplies it by N, which is the whole
  point of sharding — at the price of N instances' billing clocks;
* capacity is the fleet's total memory: a hard feasibility constraint
  (:func:`required_relay_instance` picks the smallest single flavour
  that fits; :func:`required_relay_fleet` additionally sizes a shard
  count when no single flavour does).

The model therefore predicts the flattest right flank of the three at
high worker counts, a bandwidth ceiling that moves with the shard
count, and — in cold mode — the Table 1 provisioning penalty up front.

The shard count is a genuine decision variable:
:func:`plan_relay_shuffle` with ``shards=None`` searches worker count
and shard count jointly, preferring the *smallest* fleet within a small
tolerance of the best predicted time (more shards past the point where
worker NICs dominate buy nothing but instance-hours; the monetized
trade-off lives in
:func:`~repro.shuffle.adaptive.choose_exchange_substrate`).
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.cloud.profiles import CloudProfile, InstanceType
from repro.errors import ShuffleError
from repro.shuffle.planner import PlanPoint, ShufflePlan

#: Slack multiplier between a fleet's mean per-shard load and what each
#: shard must be able to hold: hash routing never splits perfectly, so
#: sizing (:func:`required_relay_fleet`) and runtime admission
#: (``RelayExchange.validate``) both budget this margin — they must
#: agree, or a planner-sized fleet would be rejected at execution time.
SHARD_IMBALANCE_HEADROOM = 1.3


@dataclasses.dataclass(slots=True)
class RelayShuffleCostModel:
    """Workload-side constants of the relay-shuffle cost model."""

    #: Full-core throughput of the partitioning pass (bytes/s).
    partition_throughput: float = 180e6
    #: Full-core throughput of the reduce-side sort (bytes/s).
    sort_throughput: float = 90e6
    #: Peek window appended to splits for record alignment (bytes).
    peek_bytes: int = 64 * 1024
    #: Bytes each sampler reads for boundary estimation.
    sample_bytes: int = 256 * 1024
    #: Number of key samples kept per sampler.
    sample_keys: int = 512
    #: Sampling windows per sampler, strided across its split (see
    #: :class:`~repro.shuffle.planner.ShuffleCostModel.sample_strides`).
    sample_strides: int = 4
    #: Reducers delete their partitions after writing their sorted run,
    #: freeing relay memory as the reduce wave drains.  Crash-safe:
    #: worker-attempt consuming pulls take *read-leases* that only
    #: remove entries when the activation commits — a reducer that dies
    #: mid-consume has its leases reinstated, so the retry finds every
    #: partition intact (see
    #: :meth:`~repro.cloud.vm.relay.PartitionRelay.commit_attempt`).
    #: Off by default (mirroring the cache substrate's ``cleanup``);
    #: long-lived shared fleets opt in so memory self-reclaims between
    #: jobs instead of waiting for terminate.
    consume: bool = False
    #: Charge the VM boot latency into the plan (cold relay).  Warm
    #: (pre-provisioned) relays leave it out, like the cache planner.
    include_boot: bool = False
    #: Shard counts within this fraction of the best predicted time
    #: collapse to the smallest such fleet (diminishing-returns cutoff
    #: of the ``shards=None`` search).
    shard_convergence: float = 0.02
    #: Expected max-over-mean partition bytes (the straggler term's
    #: default when the caller has no better estimate; 1.0 = balanced).
    expected_skew: float = 1.0
    #: Route fleet shards by planned partition bytes instead of raw
    #: CRC (``ShardedRelayExchange``): the sampling pass's load profile
    #: is balanced across shard NICs/memory with a deterministic LPT
    #: assignment.  Disable to measure the naive hash routing S11
    #: contrasts it with.
    rebalance: bool = True


def predict_relay_shuffle_time(
    logical_bytes: float,
    workers: int,
    profile: CloudProfile,
    instance_type: InstanceType,
    cost: RelayShuffleCostModel,
    shards: int = 1,
    skew: float | None = None,
) -> PlanPoint:
    """Evaluate the relay-shuffle analytic model at one worker count.

    ``shards`` models a :class:`~repro.cloud.vm.fleet.RelayFleet` of N
    identical instances: the all-to-all aggregates N instance NICs and
    N request loops, while each worker stays bounded by its own NIC
    (its fan-out sub-flows share the function's line rate).

    ``skew`` is the expected max-over-mean partition bytes (default:
    ``cost.expected_skew``).  Input splits are byte-even whatever the
    key distribution, so the map side is unaffected; the *reduce* side
    is paced by the straggler that owns the hottest partition — its
    fetch transfer, sort CPU and output write all scale by ``skew``.
    The fleet NIC term stays aggregate: load-aware rebalancing (the
    ``ShardedRelayExchange`` default) spreads the hot partition's
    segments across shard NICs.
    """
    if workers < 1:
        raise ShuffleError(f"workers must be >= 1, got {workers}")
    if shards < 1:
        raise ShuffleError(f"shards must be >= 1, got {shards}")
    skew = cost.expected_skew if skew is None else skew
    if skew < 1.0:
        raise ShuffleError(f"skew must be >= 1 (max/mean), got {skew}")
    size = float(logical_bytes)
    store = profile.objectstore
    faas = profile.faas
    vm = profile.vm
    per_worker = size / workers
    instance_bw = min(faas.instance_bandwidth, store.per_connection_bandwidth)
    relay_conn_bw = min(faas.instance_bandwidth, instance_type.nic_bandwidth)
    relay_nic = instance_type.nic_bandwidth * shards

    startup = faas.invoke_overhead.mean + faas.cold_start.mean
    if cost.include_boot:
        startup += vm.boot.mean

    # Input split still comes from object storage.
    map_read = (
        max(per_worker / instance_bw, size / store.aggregate_bandwidth)
        + store.read_latency.mean
    )
    partition_cpu = per_worker / cost.partition_throughput

    # All-to-all through the relay: one MPUSH per mapper, one MPULL per
    # reducer (the per-shard sub-batches fan out in parallel, so a batch
    # costs one request latency regardless of shard count); every byte
    # crosses the fleet's aggregate NIC once per wave, and the request
    # load spreads over N independent token buckets.
    relay_transfer = max(per_worker / relay_conn_bw, size / relay_nic)
    request = vm.relay_request_latency.mean
    ops_floor = (workers * workers) / (shards * vm.relay_ops_per_second)
    map_write = max(request + relay_transfer, ops_floor)
    straggler = per_worker * skew
    reduce_fetch = max(
        request + max(straggler / relay_conn_bw, size / relay_nic), ops_floor
    )

    sort_cpu = straggler / cost.sort_throughput
    # Sorted runs land back in object storage for the encode stage.
    reduce_write = (
        max(straggler / instance_bw, size / store.aggregate_bandwidth)
        + store.write_latency.mean
    )
    driver = 3.0 * workers * (store.write_latency.mean + store.read_latency.mean)

    breakdown = {
        "startup": startup,
        "map_read": map_read,
        "partition_cpu": partition_cpu,
        "map_write": map_write,
        "reduce_fetch": reduce_fetch,
        "sort_cpu": sort_cpu,
        "reduce_write": reduce_write,
        "driver": driver,
    }
    return PlanPoint(workers, sum(breakdown.values()), dict(breakdown))


def resolve_relay_instance(profile: CloudProfile, type_name: str) -> InstanceType:
    """Look up a relay VM flavour, raising a helpful error when unknown."""
    try:
        return profile.vm.catalog[type_name]
    except KeyError:
        raise ShuffleError(
            f"unknown relay instance type {type_name!r}; available: "
            f"{sorted(profile.vm.catalog)}"
        ) from None


def relay_usable_bytes(profile: CloudProfile, instance_type: InstanceType) -> float:
    """Logical bytes of partitions a relay on this flavour can hold.

    Delegates to :meth:`~repro.cloud.profiles.VmProfile.relay_usable_bytes`
    so planner feasibility and runtime capacity share one formula.
    """
    return profile.vm.relay_usable_bytes(instance_type)


@dataclasses.dataclass(frozen=True, slots=True)
class RelayShufflePlan(ShufflePlan):
    """A :class:`ShufflePlan` that also fixes the fleet configuration."""

    shards: int = 1
    instance_type: str = ""


def plan_relay_shuffle(
    logical_bytes: float,
    profile: CloudProfile,
    instance_type_name: str,
    cost: RelayShuffleCostModel | None = None,
    max_workers: int = 256,
    candidates: t.Sequence[int] | None = None,
    shards: int | None = 1,
    min_shards: int = 1,
    max_shards: int = 8,
    skew: float | None = None,
) -> RelayShufflePlan:
    """Pick ``(workers, shards)`` minimizing predicted relay-shuffle time.

    ``shards`` pins the fleet size (1 = the classic single relay);
    ``shards=None`` searches ``min_shards..max_shards`` jointly with the
    worker count and returns the *smallest* fleet whose best time is
    within ``cost.shard_convergence`` of the global optimum — once the
    worker NICs (not the fleet NIC) bound the exchange, extra shards
    only cost money.  ``skew`` prices the straggler reducer (see
    :func:`predict_relay_shuffle_time`).
    """
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    cost = cost if cost is not None else RelayShuffleCostModel()
    instance_type = resolve_relay_instance(profile, instance_type_name)
    pool = (
        list(candidates) if candidates is not None else list(range(1, max_workers + 1))
    )
    if not pool:
        raise ShuffleError("empty candidate worker set")
    if shards is not None:
        shard_pool = [shards]
    else:
        if not 1 <= min_shards <= max_shards:
            raise ShuffleError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{min_shards}..{max_shards}"
            )
        shard_pool = list(range(min_shards, max_shards + 1))

    curves: dict[int, tuple[PlanPoint, ...]] = {
        n: tuple(
            predict_relay_shuffle_time(
                logical_bytes, workers, profile, instance_type, cost,
                shards=n, skew=skew,
            )
            for workers in sorted(set(pool))
        )
        for n in shard_pool
    }
    best_points = {
        n: min(curve, key=lambda point: (point.total_s, point.workers))
        for n, curve in curves.items()
    }
    optimum = min(point.total_s for point in best_points.values())
    chosen_shards = min(
        n
        for n, point in best_points.items()
        if point.total_s <= optimum * (1.0 + cost.shard_convergence)
    )
    best = best_points[chosen_shards]
    return RelayShufflePlan(
        workers=best.workers,
        predicted_s=best.total_s,
        curve=curves[chosen_shards],
        shards=chosen_shards,
        instance_type=instance_type.name,
    )


def required_relay_instance(
    logical_bytes: float,
    profile: CloudProfile,
    headroom: float = SHARD_IMBALANCE_HEADROOM,
) -> str:
    """Smallest catalog instance whose usable memory holds the shuffle data.

    ``headroom`` leaves slack for partition imbalance.  The relay is
    scale-up: when even the fattest flavour cannot hold the dataset the
    substrate is infeasible and this raises — the qualitative limit the
    comparison reports (the cache scales out, object storage is
    unbounded).
    """
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    if headroom < 1.0:
        raise ShuffleError(f"headroom must be >= 1, got {headroom}")
    needed = logical_bytes * headroom
    fitting = [
        instance
        for instance in profile.vm.catalog.values()
        if relay_usable_bytes(profile, instance) >= needed
    ]
    if not fitting:
        largest = max(
            profile.vm.catalog.values(), key=lambda instance: instance.memory_gb
        )
        raise ShuffleError(
            f"no instance type holds {logical_bytes:.0f} logical bytes "
            f"(x{headroom:.2f} headroom); largest is {largest.name} with "
            f"{largest.memory_gb} GB — the relay substrate is scale-up only"
        )
    best = min(fitting, key=lambda instance: (instance.memory_gb, instance.name))
    return best.name


def hot_shard_bytes(
    logical_bytes: float, shards: int, partition_skew: float = 1.0
) -> float:
    """Expected logical bytes on the *hottest* shard of a fleet.

    Hash routing only realises the mean ``logical / shards`` on balanced
    keys: a partition skew of ``s`` (max-over-mean partition bytes)
    concentrates up to ``s * logical / shards`` on the shard that owns
    the hot partition, capped at the whole dataset (one shard can never
    receive more than everything).  ``partition_skew=1.0`` reduces to
    the mean — the pre-skew-aware sizing.
    """
    return min(float(logical_bytes), partition_skew * logical_bytes / shards)


def _fleet_shards_for(
    logical_bytes: float, usable: float, headroom: float, partition_skew: float
) -> int:
    """Smallest shard count whose hottest shard fits in ``usable``.

    Feasibility is ``headroom * hot_shard_bytes(logical, n, skew) <=
    usable``, which is monotone in ``n``: one shard suffices whenever the
    whole dataset fits, otherwise the hot-shard term dictates
    ``ceil(headroom * logical * skew / usable)`` — the skew-aware
    generalisation of the old mean-based ``ceil(headroom * logical /
    usable)`` that under-provisioned Zipf workloads when rebalancing is
    off.
    """
    if usable >= headroom * logical_bytes:
        return 1
    return max(1, math.ceil(headroom * logical_bytes * partition_skew / usable))


def required_relay_fleet(
    logical_bytes: float,
    profile: CloudProfile,
    instance_type_name: str | None = None,
    max_shards: int = 8,
    headroom: float = SHARD_IMBALANCE_HEADROOM,
    partition_skew: float = 1.0,
) -> tuple[str, int]:
    """Cheapest ``(instance_type, shards)`` whose fleet holds the data.

    With ``instance_type_name`` pinned, returns the smallest shard count
    (``<= max_shards``) of that flavour that fits; otherwise searches
    the catalog for the fleet minimizing total instance-hours (then
    shard count, then name).  Sharding is what makes datasets beyond
    the fattest single flavour feasible on the relay substrate at all —
    when even ``max_shards`` of the fattest flavour cannot hold the data
    this raises, mirroring :func:`required_relay_instance`.

    ``partition_skew`` (max-over-mean partition bytes) sizes the fleet
    so the *hot shard's* expected bytes — not the mean — fit in
    :func:`relay_usable_bytes`: CRC routing parks a hot partition
    entirely on one shard, so a Zipf workload needs roughly ``skew``
    times the balanced shard count unless load-aware rebalancing spreads
    it (in which case callers should keep the default of 1.0).
    """
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    if headroom < 1.0:
        raise ShuffleError(f"headroom must be >= 1, got {headroom}")
    if max_shards < 1:
        raise ShuffleError(f"max_shards must be >= 1, got {max_shards}")
    if partition_skew < 1.0:
        raise ShuffleError(
            f"partition_skew must be >= 1 (max/mean), got {partition_skew}"
        )
    if instance_type_name is not None:
        instance = resolve_relay_instance(profile, instance_type_name)
        usable = relay_usable_bytes(profile, instance)
        shards = _fleet_shards_for(logical_bytes, usable, headroom, partition_skew)
        if shards > max_shards:
            raise ShuffleError(
                f"{logical_bytes:.0f} logical bytes (x{headroom:.2f} headroom, "
                f"partition skew {partition_skew:.2f}) need {shards} shards of "
                f"{instance.name}, beyond the max_shards={max_shards} fleet limit"
            )
        return instance.name, shards
    options: list[tuple[float, int, str]] = []
    for instance in profile.vm.catalog.values():
        usable = relay_usable_bytes(profile, instance)
        shards = _fleet_shards_for(logical_bytes, usable, headroom, partition_skew)
        if shards <= max_shards:
            options.append((shards * instance.hourly_usd, shards, instance.name))
    if not options:
        largest = max(
            profile.vm.catalog.values(), key=lambda instance: instance.memory_gb
        )
        raise ShuffleError(
            f"no fleet of <= {max_shards} instances holds {logical_bytes:.0f} "
            f"logical bytes (x{headroom:.2f} headroom); largest flavour is "
            f"{largest.name} with {largest.memory_gb} GB"
        )
    _cost, shards, name = min(options)
    return name, shards
