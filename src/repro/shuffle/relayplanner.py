"""Analytic model of the VM-relay shuffle.

Counterpart of :mod:`repro.shuffle.planner` (object storage) and
:mod:`repro.shuffle.cacheplanner` (cache cluster) for the third
data-exchange strategy: intermediate partitions rendezvous in the
memory of one provisioned VM.  The input split read and the final
sorted-run write still go through object storage, so those terms are
shared with the other models.

What changes is the all-to-all itself:

* request latency is a single in-VPC round trip, *batched* — a mapper's
  MPUSH and a reducer's MPULL pay one latency for their whole batch
  (one server, one connection), even cheaper than the cache's
  one-per-node-touched;
* the ops/s ceiling of a single-purpose in-memory server is far above
  the object-storage account's, so the W² request floor nearly
  vanishes;
* bandwidth is bounded by **one instance NIC** crossed twice (every
  byte goes in on the map wave and out on the reduce wave) — the
  scale-up ceiling that distinguishes the relay from the cache's
  scale-out aggregate;
* capacity is one instance's memory: a hard feasibility constraint
  (:func:`required_relay_instance` picks the smallest flavour that
  fits).

The model therefore predicts the flattest right flank of the three at
high worker counts, but the earliest bandwidth ceiling and — in cold
mode — the Table 1 provisioning penalty up front.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cloud.profiles import CloudProfile, InstanceType
from repro.errors import ShuffleError
from repro.shuffle.planner import PlanPoint, ShufflePlan


@dataclasses.dataclass(slots=True)
class RelayShuffleCostModel:
    """Workload-side constants of the relay-shuffle cost model."""

    #: Full-core throughput of the partitioning pass (bytes/s).
    partition_throughput: float = 180e6
    #: Full-core throughput of the reduce-side sort (bytes/s).
    sort_throughput: float = 90e6
    #: Peek window appended to splits for record alignment (bytes).
    peek_bytes: int = 64 * 1024
    #: Bytes each sampler reads for boundary estimation.
    sample_bytes: int = 256 * 1024
    #: Number of key samples kept per sampler.
    sample_keys: int = 512
    #: Reducers delete their partitions after writing their sorted run,
    #: freeing relay memory as the reduce wave drains.  Off by default
    #: (mirroring the cache substrate's ``cleanup``): a reducer that
    #: crashes *after* its delete is re-invoked by the executor and
    #: finds its partitions gone, so only crash-free runs should opt in.
    #: The relay is per-run scratch — terminating it reclaims everything.
    consume: bool = False
    #: Charge the VM boot latency into the plan (cold relay).  Warm
    #: (pre-provisioned) relays leave it out, like the cache planner.
    include_boot: bool = False


def predict_relay_shuffle_time(
    logical_bytes: float,
    workers: int,
    profile: CloudProfile,
    instance_type: InstanceType,
    cost: RelayShuffleCostModel,
) -> PlanPoint:
    """Evaluate the relay-shuffle analytic model at one worker count."""
    if workers < 1:
        raise ShuffleError(f"workers must be >= 1, got {workers}")
    size = float(logical_bytes)
    store = profile.objectstore
    faas = profile.faas
    vm = profile.vm
    per_worker = size / workers
    instance_bw = min(faas.instance_bandwidth, store.per_connection_bandwidth)
    relay_conn_bw = min(faas.instance_bandwidth, instance_type.nic_bandwidth)
    relay_nic = instance_type.nic_bandwidth

    startup = faas.invoke_overhead.mean + faas.cold_start.mean
    if cost.include_boot:
        startup += vm.boot.mean

    # Input split still comes from object storage.
    map_read = (
        max(per_worker / instance_bw, size / store.aggregate_bandwidth)
        + store.read_latency.mean
    )
    partition_cpu = per_worker / cost.partition_throughput

    # All-to-all through the relay: one MPUSH per mapper, one MPULL per
    # reducer (one request latency each); every byte crosses the single
    # instance NIC once per wave.
    relay_transfer = max(per_worker / relay_conn_bw, size / relay_nic)
    request = vm.relay_request_latency.mean
    ops_floor = (workers * workers) / vm.relay_ops_per_second
    map_write = max(request + relay_transfer, ops_floor)
    reduce_fetch = max(request + relay_transfer, ops_floor)

    sort_cpu = per_worker / cost.sort_throughput
    # Sorted runs land back in object storage for the encode stage.
    reduce_write = (
        max(per_worker / instance_bw, size / store.aggregate_bandwidth)
        + store.write_latency.mean
    )
    driver = 3.0 * workers * (store.write_latency.mean + store.read_latency.mean)

    breakdown = {
        "startup": startup,
        "map_read": map_read,
        "partition_cpu": partition_cpu,
        "map_write": map_write,
        "reduce_fetch": reduce_fetch,
        "sort_cpu": sort_cpu,
        "reduce_write": reduce_write,
        "driver": driver,
    }
    return PlanPoint(workers, sum(breakdown.values()), dict(breakdown))


def resolve_relay_instance(profile: CloudProfile, type_name: str) -> InstanceType:
    """Look up a relay VM flavour, raising a helpful error when unknown."""
    try:
        return profile.vm.catalog[type_name]
    except KeyError:
        raise ShuffleError(
            f"unknown relay instance type {type_name!r}; available: "
            f"{sorted(profile.vm.catalog)}"
        ) from None


def relay_usable_bytes(profile: CloudProfile, instance_type: InstanceType) -> float:
    """Logical bytes of partitions a relay on this flavour can hold.

    Delegates to :meth:`~repro.cloud.profiles.VmProfile.relay_usable_bytes`
    so planner feasibility and runtime capacity share one formula.
    """
    return profile.vm.relay_usable_bytes(instance_type)


def plan_relay_shuffle(
    logical_bytes: float,
    profile: CloudProfile,
    instance_type_name: str,
    cost: RelayShuffleCostModel | None = None,
    max_workers: int = 256,
    candidates: t.Sequence[int] | None = None,
) -> ShufflePlan:
    """Pick the worker count minimizing predicted relay-shuffle time."""
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    cost = cost if cost is not None else RelayShuffleCostModel()
    instance_type = resolve_relay_instance(profile, instance_type_name)
    pool = (
        list(candidates) if candidates is not None else list(range(1, max_workers + 1))
    )
    if not pool:
        raise ShuffleError("empty candidate worker set")
    curve = tuple(
        predict_relay_shuffle_time(logical_bytes, workers, profile, instance_type, cost)
        for workers in sorted(set(pool))
    )
    best = min(curve, key=lambda point: (point.total_s, point.workers))
    return ShufflePlan(workers=best.workers, predicted_s=best.total_s, curve=curve)


def required_relay_instance(
    logical_bytes: float,
    profile: CloudProfile,
    headroom: float = 1.3,
) -> str:
    """Smallest catalog instance whose usable memory holds the shuffle data.

    ``headroom`` leaves slack for partition imbalance.  The relay is
    scale-up: when even the fattest flavour cannot hold the dataset the
    substrate is infeasible and this raises — the qualitative limit the
    comparison reports (the cache scales out, object storage is
    unbounded).
    """
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    if headroom < 1.0:
        raise ShuffleError(f"headroom must be >= 1, got {headroom}")
    needed = logical_bytes * headroom
    fitting = [
        instance
        for instance in profile.vm.catalog.values()
        if relay_usable_bytes(profile, instance) >= needed
    ]
    if not fitting:
        largest = max(
            profile.vm.catalog.values(), key=lambda instance: instance.memory_gb
        )
        raise ShuffleError(
            f"no instance type holds {logical_bytes:.0f} logical bytes "
            f"(x{headroom:.2f} headroom); largest is {largest.name} with "
            f"{largest.memory_gb} GB — the relay substrate is scale-up only"
        )
    best = min(fitting, key=lambda instance: (instance.memory_gb, instance.name))
    return best.name
