"""Worker stages and operators for the VM-relay shuffles.

Mappers PUSH their partitions to an in-memory rendezvous hosted on
provisioned VMs, reducers PULL their range; the relay side is per-run
scratch, reclaimed when its VMs terminate (reducer-side deletion is an
opt-in, ``consume``, for crash-free runs).  Two flavours share
everything but the hardware: the classic single relay
(:class:`~repro.cloud.vm.relay.PartitionRelay` — one fat NIC, Table 1's
provisioned-VM economics) and the sharded fleet
(:class:`~repro.cloud.vm.fleet.RelayFleet` — N instances aggregating N
NICs, for the worker counts and dataset sizes where one line rate
caps the exchange).  Sampling and the sorted-run artifact are identical
to the other substrates.

Task payloads carry the *relay id*; workers resolve it through their
:meth:`~repro.cloud.faas.context.FunctionContext.relay` accessor, which
binds the client to the activation's **attempt id**.  That binding is
what makes the substrate safe under fault handling: a crashed or
cancelled mapper's in-flight MPUSH is aborted and its memory
reservation reclaimed immediately (no orphaned transfer races its
retried successor), a replacing MPUSH swaps old for new atomically (a
concurrent reducer never observes a missing key), and the loser of a
speculative race is fenced out of the relay entirely.  Retries and
speculation are therefore supported on the relay exactly as on object
storage.
"""

from __future__ import annotations

import re
import typing as t

from repro.cloud.profiles import CloudProfile
from repro.cloud.vm.fleet import RelayFleet
from repro.cloud.vm.relay import PartitionRelay
from repro.errors import ShuffleError
from repro.executor.partitioner import assign_balanced
from repro.shuffle.exchange import ExchangeBackend
from repro.shuffle.operator import ShuffleSort
from repro.shuffle.planner import ShufflePlan
from repro.shuffle.records import RecordCodec
from repro.shuffle.relayplanner import (
    SHARD_IMBALANCE_HEADROOM,
    RelayShuffleCostModel,
    plan_relay_shuffle,
)
from repro.shuffle import kernels
from repro.storage import paths


def relay_partition_key(prefix: str, mapper_id: int, reducer_id: int) -> str:
    """Relay key of mapper ``mapper_id``'s segment for reducer ``reducer_id``."""
    return f"{prefix}/m{mapper_id:05d}.r{reducer_id:05d}"


#: Shuffle-layout key token shared by the staged keys
#: (``.../m00001.r00002``) and the streaming segment keys
#: (``.../m00001.r00002.c00003``); header/EOS keys carry no ``.r`` and
#: fall through to the fleet's CRC hash.  Anchored to the key *tail* so
#: a caller-supplied out_prefix that happens to contain an ``m1.r2``
#: substring cannot hijack the routing of every key under it.  The
#: chunk index is captured so :class:`PartitionLoadRouter` can route
#: *individual streaming chunks* (chunk epochs) at finer grain than the
#: (mapper, reducer) cell.
_RELAY_KEY_TOKEN = re.compile(r"m(\d+)\.r(\d+)(?:\.c(\d+))?$")


class PartitionLoadRouter:
    """Routes shuffle relay keys to fleet shards by planned load.

    ``assignments[mapper][reducer]`` is the shard index of that
    (mapper, reducer) segment — a pure lookup, so routing stays
    identical across mappers, reducers, retries and speculative
    attempts (the rendezvous requirement).  Keys outside the matrix, or
    without the shuffle's ``m.r`` token (stream headers), return
    ``None`` and fall back to the fleet's CRC hash.

    **Chunk epochs** refine streaming routes mid-run: an epoch ``(start_chunk,
    table)`` overrides the base table for every streaming key whose
    chunk index is ``>= start_chunk`` (later epochs shadow earlier
    ones).  Installing an epoch whose ``start_chunk`` has not been
    published yet preserves the rendezvous invariant — keys already
    written keep the routes they were written under, and every future
    key (including its retries and speculative twins) is governed by
    one immutable epoch table.  An epoch cell may be :data:`SPREAD`,
    meaning no single shard should own that hot (mapper, reducer) cell:
    its chunks fan out deterministically (``mapper + reducer + chunk``,
    reduced modulo the fleet size by the caller) across every shard NIC.
    """

    #: Sentinel shard index in an epoch table: spread this cell's
    #: future chunks across the whole fleet instead of pinning them.
    SPREAD = -1

    def __init__(
        self,
        assignments: t.Sequence[t.Sequence[int]],
        chunk_epochs: t.Sequence[
            tuple[int, t.Sequence[t.Sequence[int]]]
        ] = (),
    ):
        if not assignments:
            raise ShuffleError("rebalance assignments must not be empty")
        self.assignments: tuple[tuple[int, ...], ...] = tuple(
            tuple(row) for row in assignments
        )
        epochs: list[tuple[int, tuple[tuple[int, ...], ...]]] = []
        previous = -1
        for start_chunk, table in chunk_epochs:
            start_chunk = int(start_chunk)
            if start_chunk <= previous:
                raise ShuffleError(
                    "chunk epochs must have strictly increasing start "
                    f"chunks, got {start_chunk} after {previous}"
                )
            if not table:
                raise ShuffleError("chunk epoch table must not be empty")
            previous = start_chunk
            epochs.append(
                (start_chunk, tuple(tuple(row) for row in table))
            )
        self.chunk_epochs: tuple[
            tuple[int, tuple[tuple[int, ...], ...]], ...
        ] = tuple(epochs)

    def with_chunk_epoch(
        self, start_chunk: int, assignments: t.Sequence[t.Sequence[int]]
    ) -> "PartitionLoadRouter":
        """A new router whose routes change from ``start_chunk`` onward.

        The caller must guarantee no chunk ``>= start_chunk`` has been
        published yet (install at a chunk boundary); the returned router
        shares the base table and all earlier epochs, so already-written
        keys keep their routes.
        """
        return PartitionLoadRouter(
            self.assignments,
            self.chunk_epochs + ((int(start_chunk), assignments),),
        )

    def _table_for(
        self, chunk: int | None
    ) -> tuple[tuple[int, ...], ...]:
        if chunk is not None:
            for start_chunk, table in reversed(self.chunk_epochs):
                if chunk >= start_chunk:
                    return table
        return self.assignments

    def cell(
        self, mapper: int, reducer: int, chunk: int | None = None
    ) -> int | None:
        """The raw table cell governing ``(mapper, reducer)`` at ``chunk``.

        Returns the shard index, :data:`SPREAD`, or ``None`` when the
        indices fall outside the table — the load-projection hook the
        online control loop uses to ask "where would the *next* chunks
        of this cell go?" without formatting a relay key.
        """
        table = self._table_for(chunk)
        if mapper >= len(table):
            return None
        row = table[mapper]
        if reducer >= len(row):
            return None
        return row[reducer]

    def __call__(self, key: str) -> int | None:
        match = _RELAY_KEY_TOKEN.search(key)
        if match is None:
            return None
        mapper, reducer = int(match.group(1)), int(match.group(2))
        chunk = int(match.group(3)) if match.group(3) is not None else None
        shard = self.cell(mapper, reducer, chunk)
        if shard is None:
            return None
        if shard == self.SPREAD:
            # Deterministic pure function of the key's own indices, so
            # the spread keeps the rendezvous property.
            return mapper + reducer + (chunk if chunk is not None else 0)
        return shard


def build_rebalance_assignments(
    predicted_partition_bytes: t.Sequence[float], workers: int, shards: int
) -> tuple[tuple[int, ...], ...]:
    """LPT shard placement of every (mapper, reducer) segment.

    Input splits are byte-even, so mapper ``i``'s segment for reducer
    ``j`` is expected to carry ``predicted_partition_bytes[j] /
    workers`` — a hot partition's segments are individually heavy but
    *divisible across mappers*, which is exactly the freedom the
    balanced assignment exploits: the W² weighted segments are placed
    with :func:`~repro.executor.partitioner.assign_balanced`, spreading
    the hot partition's traffic over every shard NIC instead of letting
    the hash land it wherever.
    """
    if workers < 1:
        raise ShuffleError(f"workers must be >= 1, got {workers}")
    if shards < 1:
        raise ShuffleError(f"shards must be >= 1, got {shards}")
    if len(predicted_partition_bytes) != workers:
        raise ShuffleError(
            f"expected one predicted size per partition ({workers}), got "
            f"{len(predicted_partition_bytes)}"
        )
    weights = [
        predicted_partition_bytes[reducer] / workers
        for _mapper in range(workers)
        for reducer in range(workers)
    ]
    flat = assign_balanced(weights, shards)
    return tuple(
        tuple(flat[mapper * workers : (mapper + 1) * workers])
        for mapper in range(workers)
    )


def build_chunk_rebalance_assignments(
    observed_cell_bytes: t.Sequence[t.Sequence[float]],
    shards: int,
    spread_fraction: float = 0.5,
) -> tuple[tuple[int, ...], ...]:
    """LPT shard placement of (mapper, reducer) cells from *observed* bytes.

    Mid-stream counterpart of :func:`build_rebalance_assignments`:
    instead of spreading a partition's predicted bytes evenly over
    mappers, it places the cell-byte matrix actually observed so far
    (``observed_cell_bytes[mapper][reducer]`` = logical bytes that
    mapper published for that reducer).  A cell heavier than
    ``spread_fraction`` of a fair shard share gets
    :data:`PartitionLoadRouter.SPREAD` — pinning it anywhere would
    recreate the hot shard, so its future chunks round-robin across the
    fleet — and the remaining cells are LPT-balanced around it.  Meant
    to be installed as a chunk epoch
    (:meth:`PartitionLoadRouter.with_chunk_epoch`) when a hot partition
    emerges mid-stream.
    """
    if shards < 1:
        raise ShuffleError(f"shards must be >= 1, got {shards}")
    rows = [list(row) for row in observed_cell_bytes]
    if not rows or not rows[0]:
        raise ShuffleError("observed cell bytes must not be empty")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise ShuffleError("observed cell byte rows must have equal length")
    total = sum(sum(row) for row in rows)
    fair_share = total / shards
    spread = [
        [
            shards > 1 and total > 0 and cell > spread_fraction * fair_share
            for cell in row
        ]
        for row in rows
    ]
    weights = [
        0.0 if spread[mapper][reducer] else rows[mapper][reducer]
        for mapper in range(len(rows))
        for reducer in range(width)
    ]
    flat = assign_balanced(weights, shards)
    return tuple(
        tuple(
            PartitionLoadRouter.SPREAD
            if spread[mapper][reducer]
            else flat[mapper * width + reducer]
            for reducer in range(width)
        )
        for mapper in range(len(rows))
    )


def relay_shuffle_mapper(ctx, task: dict) -> t.Generator:
    """Partition one record-aligned split and PUSH it to the relay.

    Task fields: ``bucket, key, start, end, object_size, peek_bytes,
    boundaries, codec, relay_id, relay_prefix, mapper_id,
    partition_throughput``.
    """
    codec: RecordCodec = task["codec"]
    start, end = task["start"], task["end"]
    object_size = task["object_size"]
    scope = task.get("relay_scope")
    window_end = min(object_size, end + task["peek_bytes"])
    raw = yield ctx.storage.get_range(task["bucket"], task["key"], start, window_end)
    base, tail = raw[: end - start], raw[end - start :]
    owned = codec.extract_split(
        base,
        tail,
        is_first=(start == 0),
        at_end=(end >= object_size),
        global_start=start,
    )

    outcome = kernels.partition_buffer(codec, owned, task["boundaries"])
    yield ctx.compute_bytes(len(owned), task["partition_throughput"])

    client = ctx.relay(task["relay_id"], scope=scope)
    mapper_id = task["mapper_id"]
    items = [
        (
            relay_partition_key(task["relay_prefix"], mapper_id, reducer_id),
            segment,
        )
        for reducer_id, segment in enumerate(outcome.segments())
    ]
    yield client.mpush(items)
    return {
        "records": outcome.records,
        "bytes": len(outcome.combined),
        "partition_sizes": outcome.partition_sizes,
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }


def relay_shuffle_reducer(ctx, task: dict) -> t.Generator:
    """PULL one partition from every mapper via the relay, sort, write.

    Task fields: ``relay_id, relay_prefix, reducer_id, mappers,
    out_bucket, output_key, codec, sort_throughput, consume``.

    With ``consume`` the reducer's partitions are reclaimed once its
    sorted run is written — via **read-leases**: the consuming MPULL
    grants the attempt a lease and the relay removes the entries only
    when the activation *commits* (handler success).  An attempt killed
    at any point before commit — even after the pull — simply drops its
    lease, so the retry finds every partition resident.  Destructive
    reads are therefore crash-safe, no longer an opt-in for crash-free
    runs only.
    """
    codec: RecordCodec = task["codec"]
    client = ctx.relay(task["relay_id"], scope=task.get("relay_scope"))
    reducer_id = task["reducer_id"]
    keys = [
        relay_partition_key(task["relay_prefix"], mapper_id, reducer_id)
        for mapper_id in range(task["mappers"])
    ]
    segments = yield client.mpull(keys, consume=task.get("consume", False))

    buffer = b"".join(segments)
    yield ctx.compute_bytes(len(buffer), task["sort_throughput"])
    outcome = kernels.sort_buffer(codec, buffer)
    yield ctx.storage.put(
        task["out_bucket"], task["output_key"], outcome.output, dedup=True
    )
    return {
        "records": outcome.records,
        "bytes": len(outcome.output),
        "output_key": task["output_key"],
        "kernel": outcome.kernel,
        "kernel_records": outcome.records,
        "kernel_s": outcome.elapsed_s,
    }


class RelayExchange(ExchangeBackend):
    """Exchange partitions through VM-hosted in-memory relays.

    Accepts either a single :class:`~repro.cloud.vm.relay.PartitionRelay`
    or a sharded :class:`~repro.cloud.vm.fleet.RelayFleet` — the two
    expose the same façade (id-addressed clients, aggregate capacity,
    fleet-wide cancellation), so the worker stages and task payloads are
    shared verbatim; only the planner's shard count and the billing
    multiplier differ.
    """

    name = "relay"
    process_label = "relayshuffle"
    default_out_prefix = "relay-shuffle"

    def __init__(
        self,
        relay: PartitionRelay | RelayFleet,
        cost: RelayShuffleCostModel | None = None,
    ):
        self.relay = relay
        self.cost = cost if cost is not None else RelayShuffleCostModel()
        self._stats_baseline: dict[str, float] = {}
        #: Tenant/job scope label stamped on every worker's relay client
        #: (``None`` outside a multi-tenant service): the lever behind
        #: :meth:`~repro.cloud.vm.relay.PartitionRelay.cancel_scope`.
        self.tenant: str | None = None
        #: This sort's key-prefix namespace (set by :meth:`begin_sort`);
        #: scopes router installs and clears on a *shared* fleet.
        self._namespace: str | None = None
        #: Open peak-tracking epoch of the current sort (``None`` between
        #: sorts); epoch-scoped so concurrent jobs on a shared relay
        #: never reset each other's high watermark.
        self._peak_token = None

    @property
    def shards(self) -> int:
        return self.relay.shard_count

    def begin_sort(self, out_bucket: str, out_prefix: str) -> None:
        self._namespace = out_prefix

    def validate(self, logical_size: float) -> None:
        self.relay.ensure_running()
        if isinstance(self.relay, RelayFleet):
            # Any relay exchange over a fleet starts from hash routing:
            # a rebalance map a *previous* sort installed (possibly for
            # a different worker grid and load profile) must never leak
            # into this one.  ShardedRelayExchange re-installs its own
            # map in on_boundaries, after sampling.  With a resolved
            # namespace only *this sort's* routing is cleared — other
            # exchanges running concurrently on a shared fleet keep
            # theirs; without one (legacy single-job callers) the global
            # router is cleared as before.
            self.relay.set_router(None, namespace=self._namespace)
        if logical_size > self.relay.capacity_bytes:
            raise ShuffleError(
                f"shuffle data ({logical_size:.0f} logical bytes) exceeds "
                f"relay capacity ({self.relay.capacity_bytes:.0f}) of "
                f"{self.shards} x {self.relay.instance_type_name}; "
                "provision a larger instance or more shards"
            )
        if self.shards > 1:
            # Admission is per shard, not aggregate: a key-hash split is
            # never perfectly even, so a fleet that only *just* fits in
            # total can still overflow (and backpressure-deadlock) its
            # hottest shard.  Fail fast instead, budgeting the same
            # imbalance margin required_relay_fleet sizes with — and,
            # when load-aware rebalancing is off, the workload's
            # expected partition skew on top (hash routing parks a hot
            # partition entirely on one shard).  This is a heuristic,
            # not a guarantee: realized imbalance is unbounded for very
            # small key grids (W=2 puts ~4 keys on the hash ring),
            # where a hot shard can exceed the margin — a wider margin
            # or more workers is the operator's lever.
            per_shard = logical_size / self.shards
            expected_hot = min(
                float(logical_size), per_shard * self._shard_skew_budget()
            )
            shard_capacity = min(
                shard.capacity_bytes for shard in self.relay.shards
            )
            if expected_hot * SHARD_IMBALANCE_HEADROOM > shard_capacity:
                raise ShuffleError(
                    f"shuffle data ({logical_size:.0f} logical bytes over "
                    f"{self.shards} shards, per-shard skew budget "
                    f"{self._shard_skew_budget():.2f}) leaves no imbalance "
                    f"headroom: each shard holds {shard_capacity:.0f} bytes "
                    f"but may receive up to "
                    f"~{expected_hot * SHARD_IMBALANCE_HEADROOM:.0f}"
                    "; provision larger instances or more shards"
                )
        # The relay may be reused across sorts (its lifecycle belongs to
        # the caller); report per-sort deltas, not lifetime totals.
        self._stats_baseline = self.relay.stats.as_dict()
        # Epoch-scoped peak: each sort measures its own high watermark
        # without resetting anyone else's (relay-global reset_peak would
        # clobber concurrent jobs sharing this relay/fleet).
        if self._peak_token is not None:
            self.relay.end_peak_epoch(self._peak_token)
        self._peak_token = self.relay.begin_peak_epoch()

    def _shard_skew_budget(self) -> float:
        """Max-over-mean factor each shard must budget at admission.

        Without load-aware rebalancing, hash routing can park a hot
        partition entirely on one shard, so admission budgets the
        workload's expected partition skew — the runtime twin of
        :func:`~repro.shuffle.relayplanner.required_relay_fleet`'s
        skew-aware sizing.
        """
        return max(1.0, self.cost.expected_skew)

    def plan(
        self, logical_size: float, profile: CloudProfile, max_workers: int
    ) -> ShufflePlan:
        return plan_relay_shuffle(
            logical_size,
            profile,
            self.relay.instance_type_name,
            self.cost,
            max_workers=max_workers,
            shards=self.shards,
        )

    def mapper_stage(self):
        return relay_shuffle_mapper

    def reducer_stage(self):
        return relay_shuffle_reducer

    def mapper_task(
        self, base: dict, mapper_id: int, out_bucket: str, out_prefix: str
    ) -> dict:
        base.update(
            relay_id=self.relay.relay_id,
            relay_prefix=out_prefix,
            mapper_id=mapper_id,
        )
        if self.tenant is not None:
            base["relay_scope"] = self.tenant
        return base

    def reducer_task(
        self,
        reducer_id: int,
        workers: int,
        map_tasks: list[dict],
        map_results: list[dict],
        out_bucket: str,
        out_prefix: str,
        codec: RecordCodec,
    ) -> dict:
        task = {
            "relay_id": self.relay.relay_id,
            "relay_prefix": out_prefix,
            "reducer_id": reducer_id,
            "mappers": workers,
            "out_bucket": out_bucket,
            "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
            "codec": codec,
            "sort_throughput": self.cost.sort_throughput,
            "consume": self.cost.consume,
        }
        if self.tenant is not None:
            task["relay_scope"] = self.tenant
        return task

    def provisioned_rate_usd_per_s(self) -> float:
        profile = self.relay.service.profile
        instance = self.relay.instance_type
        volume_per_s = (
            profile.boot_volume_gb * profile.volume_gb_hour_usd / 3600.0
        )
        return self.shards * (instance.per_second_usd + volume_per_s)

    def minimum_billed_s(self) -> float:
        return self.relay.service.profile.minimum_billed_s

    def extra_report(self) -> dict:
        baseline = self._stats_baseline
        totals = self.relay.stats.as_dict()
        if self._peak_token is not None:
            peak_fill = self.relay.end_peak_epoch(self._peak_token)
            self._peak_token = None
        else:
            peak_fill = self.relay.peak_fill_fraction
        return {
            "relay_id": self.relay.relay_id,
            "instance_type": self.relay.instance_type_name,
            "shards": self.shards,
            "peak_fill_fraction": peak_fill,
            "pushes": int(totals["pushes"] - baseline.get("pushes", 0)),
            "pulls": int(totals["pulls"] - baseline.get("pulls", 0)),
            "backpressure_waits": int(
                totals["backpressure_waits"]
                - baseline.get("backpressure_waits", 0)
            ),
            "dedup_hits": int(
                totals["dedup_hits"] - baseline.get("dedup_hits", 0)
            ),
            "dedup_bytes": totals["dedup_bytes"] - baseline.get("dedup_bytes", 0.0),
        }

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        return self.relay.cas_entries(prefix)


class RelayShuffleSort(ShuffleSort):
    """Sort a storage object with W functions exchanging via a VM relay.

    Parameters
    ----------
    executor:
        A :class:`~repro.executor.FunctionExecutor`.
    codec:
        Record format of the input object.
    relay:
        A *running* :class:`~repro.cloud.vm.relay.PartitionRelay`.
        Lifecycle (provision/terminate) belongs to the caller, exactly
        as with the cache cluster: whether its VM-seconds are billed per
        run or amortized is an experiment decision.
    cost:
        Cost-model constants; also control sampling and consumption.
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        relay: PartitionRelay,
        cost: RelayShuffleCostModel | None = None,
    ):
        super().__init__(executor, codec, backend=RelayExchange(relay, cost))
        self.relay = relay


class ShardedRelayExchange(RelayExchange):
    """Exchange partitions through a sharded multi-relay fleet.

    Same worker stages and payloads as :class:`RelayExchange` — the
    fleet routes keys to shards underneath the shared relay-id
    indirection — but planned and priced as N instances, and reported
    as its own substrate so sweeps can contrast it with the single
    relay's NIC ceiling.

    **Load-aware shard routing** (``cost.rebalance``, on by default):
    once the sampling pass has estimated each partition's bytes, the
    exchange installs a :class:`PartitionLoadRouter` on the fleet that
    places every (mapper, reducer) segment with a deterministic LPT
    assignment over those planned bytes, so a Zipf-hot partition's
    traffic is spread across the shard NICs instead of landing wherever
    CRC-32 happens to put it.  The assignment is recorded in the
    uniform report (``rebalanced``, ``hot_shard_share``,
    ``shard_bytes``) and kept on :attr:`rebalance_assignments` for
    inspection.
    """

    name = "sharded-relay"
    process_label = "fleetshuffle"
    default_out_prefix = "fleet-shuffle"

    def __init__(self, fleet: RelayFleet, cost: RelayShuffleCostModel | None = None):
        if not isinstance(fleet, RelayFleet):
            raise ShuffleError(
                "ShardedRelayExchange needs a RelayFleet; wrap a single "
                "relay in a one-shard fleet or use RelayExchange"
            )
        super().__init__(fleet, cost)
        self.fleet = fleet
        #: ``assignments[mapper][reducer]`` of the last rebalanced sort
        #: (``None`` while routing falls back to the CRC hash).
        self.rebalance_assignments: tuple[tuple[int, ...], ...] | None = None
        self._post_map_shard_bytes: tuple[float, ...] = ()

    def _shard_skew_budget(self) -> float:
        # Load-aware rebalancing spreads the hot partition's segments
        # across shards, so a rebalanced fleet only budgets the hash
        # imbalance margin; without it the base (skewed) budget applies.
        if self.cost.rebalance and self.shards >= 2:
            return 1.0
        return super()._shard_skew_budget()

    def validate(self, logical_size: float) -> None:
        # Per-sort routing state: the base validate already cleared the
        # fleet's router; no traffic flows before on_boundaries
        # installs this sort's map, so the window is safe.
        super().validate(logical_size)
        self.rebalance_assignments = None
        self._post_map_shard_bytes = ()

    def on_boundaries(
        self,
        boundaries: t.Sequence[t.Any],
        predicted_partition_bytes: t.Sequence[float],
    ) -> None:
        if not self.cost.rebalance or self.fleet.shard_count < 2:
            return
        workers = len(predicted_partition_bytes)
        self.rebalance_assignments = build_rebalance_assignments(
            predicted_partition_bytes, workers, self.fleet.shard_count
        )
        # Namespaced under this sort's key prefix, so concurrent sorts
        # on a shared fleet each keep their own rebalanced routing;
        # legacy single-job callers (no begin_sort) install globally.
        self.fleet.set_router(
            PartitionLoadRouter(self.rebalance_assignments),
            namespace=self._namespace,
        )

    def on_map_done(self, map_results: list[dict]) -> None:
        # Post-map-wave shard fill: the direct observable of routing
        # imbalance.  Every published partition byte is resident at
        # this point in both modes: staged reducers have not started
        # (consume-mode deletion happens in the reduce wave, after this
        # snapshot), and streaming reducers read via the rendezvous
        # pull_wait, which never consumes.
        self._post_map_shard_bytes = tuple(
            shard.entry_bytes for shard in self.fleet.shards
        )

    def extra_report(self) -> dict:
        out = super().extra_report()
        out["rebalanced"] = self.rebalance_assignments is not None
        total = sum(self._post_map_shard_bytes)
        out["hot_shard_share"] = (
            max(self._post_map_shard_bytes) / total if total > 0 else 0.0
        )
        out["shard_bytes"] = self._post_map_shard_bytes
        if self._namespace is not None and self.rebalance_assignments is not None:
            # The sort is over: retire its namespaced router so a
            # long-running shared fleet's router table stays bounded.
            # (Global routers are left for validate's legacy clear.)
            self.fleet.set_router(None, namespace=self._namespace)
        return out


class ShardedRelayShuffleSort(ShuffleSort):
    """Sort with W functions exchanging via a sharded VM-relay fleet.

    Parameters mirror :class:`RelayShuffleSort`, with a *running*
    :class:`~repro.cloud.vm.fleet.RelayFleet` in place of the single
    relay; the fleet's lifecycle (provision/terminate, and therefore N
    instances' billing) belongs to the caller.
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        fleet: RelayFleet,
        cost: RelayShuffleCostModel | None = None,
    ):
        super().__init__(executor, codec, backend=ShardedRelayExchange(fleet, cost))
        self.fleet = fleet
