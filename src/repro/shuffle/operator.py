"""The high-level shuffle/sort operator (Primula reimplementation).

:class:`ShuffleSort` sorts one big object-storage object into ``W``
range-partitioned sorted runs whose concatenation (in partition order)
is globally sorted.  All intermediate data flows through object storage;
there is no function-to-function communication, exactly as in the paper.

Phases (each an executor map job, sharing warm containers):

1. **sample** — a handful of samplers read small windows and pool record
   keys; the driver picks range boundaries;
2. **map** — ``W`` mappers read record-aligned splits, partition by
   range, and write one combined object each (write-combining);
3. **reduce** — ``W`` reducers range-GET their segment from every mapper
   output, sort, and write one run each.

The worker count is chosen by the analytic planner
(:func:`~repro.shuffle.planner.plan_shuffle`) unless pinned by the
caller — this is Primula's "optimal number of functions on the fly".
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ShuffleError
from repro.shuffle.planner import ShuffleCostModel, ShufflePlan, plan_shuffle
from repro.shuffle.records import RecordCodec
from repro.shuffle.sampler import choose_boundaries
from repro.shuffle.stages import shuffle_mapper, shuffle_reducer, shuffle_sampler
from repro.sim import SimEvent
from repro.storage import paths


@dataclasses.dataclass(frozen=True, slots=True)
class SortedRun:
    """One reducer output: a sorted range partition."""

    bucket: str
    key: str
    records: int
    size_bytes: int


@dataclasses.dataclass(frozen=True, slots=True)
class ShuffleResult:
    """Outcome of a shuffle/sort: ordered runs plus execution metadata."""

    runs: tuple[SortedRun, ...]
    workers: int
    planned: ShufflePlan | None
    boundaries: tuple[t.Any, ...]
    total_records: int
    duration_s: float

    @property
    def total_bytes(self) -> int:
        return sum(run.size_bytes for run in self.runs)


class ShuffleSort:
    """Sort a storage object through object storage with W functions.

    Parameters
    ----------
    executor:
        A :class:`~repro.executor.FunctionExecutor` (or the VM-backed
        standalone executor — the stages are substrate-portable).
    codec:
        Record format of the input object.
    cost:
        Cost-model constants; also control sampling and fetch batching.
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        cost: ShuffleCostModel | None = None,
    ):
        self.executor = executor
        self.sim = executor.sim
        self.codec = codec
        self.cost = cost if cost is not None else ShuffleCostModel()

    # ------------------------------------------------------------------
    def sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str | None = None,
        out_prefix: str = "shuffle-out",
        workers: int | None = None,
        samplers: int = 8,
        max_workers: int = 256,
    ) -> SimEvent:
        """Sort ``bucket/key``; event → :class:`ShuffleResult`."""
        return self.sim.process(
            self._sort(
                bucket,
                key,
                out_bucket if out_bucket is not None else bucket,
                out_prefix,
                workers,
                samplers,
                max_workers,
            ),
            name=f"shuffle.sort:{key}",
        ).completion

    # ------------------------------------------------------------------
    def _sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str,
        out_prefix: str,
        pinned_workers: int | None,
        samplers: int,
        max_workers: int,
    ) -> t.Generator:
        started_at = self.sim.now
        meta = yield self.executor.storage.head_object(bucket, key)
        real_size = meta.size
        logical_size = meta.logical_size
        if real_size == 0:
            raise ShuffleError(f"cannot shuffle empty object {bucket}/{key}")

        # --- plan ------------------------------------------------------
        plan: ShufflePlan | None = None
        if pinned_workers is not None:
            workers = pinned_workers
        else:
            plan = plan_shuffle(
                logical_size,
                self.executor.cloud.profile,
                self.cost,
                max_workers=max_workers,
            )
            workers = plan.workers
        if workers < 1:
            raise ShuffleError(f"workers must be >= 1, got {workers}")

        # --- sample ------------------------------------------------------
        sampler_count = max(1, min(samplers, workers))
        sample_splits = _split(real_size, sampler_count)
        window = _sample_window_bytes(real_size, sampler_count, self.cost.sample_bytes)
        sample_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": real_size,
                "sample_bytes": window,
                "sample_keys": self.cost.sample_keys,
                "codec": self.codec,
                "sampler_id": index,
            }
            for index, (start, end) in enumerate(sample_splits)
        ]
        sample_futures = yield self.executor.map(shuffle_sampler, sample_tasks)
        sample_results = yield self.executor.get_result(sample_futures)
        pooled_keys = [k for result in sample_results for k in result["keys"]]
        if not pooled_keys:
            raise ShuffleError(f"sampling found no records in {bucket}/{key}")
        boundaries = choose_boundaries(pooled_keys, workers)

        # --- map ---------------------------------------------------------
        map_splits = _split(real_size, workers)
        map_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": real_size,
                "peek_bytes": self.cost.peek_bytes,
                "boundaries": boundaries,
                "codec": self.codec,
                "out_bucket": out_bucket,
                "out_key": paths.shuffle_map_output_key(out_prefix, mapper_id),
                "partition_throughput": self.cost.partition_throughput,
                "write_combining": self.cost.write_combining,
            }
            for mapper_id, (start, end) in enumerate(map_splits)
        ]
        map_futures = yield self.executor.map(shuffle_mapper, map_tasks)
        map_results = yield self.executor.get_result(map_futures)

        # --- reduce --------------------------------------------------------
        reduce_tasks = []
        for reducer_id in range(workers):
            if self.cost.write_combining:
                segments = [
                    (
                        map_tasks[mapper_id]["out_key"],
                        *map_results[mapper_id]["offsets"][reducer_id],
                    )
                    for mapper_id in range(workers)
                ]
            else:
                segments = [
                    (map_results[mapper_id]["partition_keys"][reducer_id], None, None)
                    for mapper_id in range(workers)
                ]
            reduce_tasks.append(
                {
                    "out_bucket": out_bucket,
                    "segments": segments,
                    "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
                    "codec": self.codec,
                    "sort_throughput": self.cost.sort_throughput,
                    "fetch_parallelism": self.cost.fetch_parallelism,
                }
            )
        reduce_futures = yield self.executor.map(shuffle_reducer, reduce_tasks)
        reduce_results = yield self.executor.get_result(reduce_futures)

        runs = tuple(
            SortedRun(
                bucket=out_bucket,
                key=result["output_key"],
                records=result["records"],
                size_bytes=result["bytes"],
            )
            for result in reduce_results
        )
        total_records = sum(run.records for run in runs)
        mapped_records = sum(result["records"] for result in map_results)
        if total_records != mapped_records:
            raise ShuffleError(
                f"shuffle lost records: mapped {mapped_records}, "
                f"reduced {total_records}"
            )
        return ShuffleResult(
            runs=runs,
            workers=workers,
            planned=plan,
            boundaries=tuple(boundaries),
            total_records=total_records,
            duration_s=self.sim.now - started_at,
        )


def _split(size: int, parts: int) -> list[tuple[int, int]]:
    """Cut ``[0, size)`` into ``parts`` near-equal contiguous ranges."""
    base, remainder = divmod(size, parts)
    ranges = []
    cursor = 0
    for index in range(parts):
        length = base + (1 if index < remainder else 0)
        ranges.append((cursor, cursor + length))
        cursor += length
    return ranges


def _sample_window_bytes(real_size: int, samplers: int, configured: int) -> int:
    """Per-sampler read window, bounded by a fraction of the object.

    Primula reads a fixed window (``configured``, default 256 KiB) per
    sampler.  On scaled-down experiment data the same absolute window
    would cover — and be charged as — a disproportionate slice of the
    (logical) object, so the window is additionally capped at ~5% of the
    object per sampler.  At full scale the cap is far above the
    configured window and this reduces to Primula's behaviour.
    """
    proportional_cap = max(4096, real_size // (samplers * 20))
    return max(1024, min(configured, proportional_cap))
