"""The high-level shuffle/sort operator (Primula reimplementation).

:class:`ShuffleSort` sorts one big object-storage object into ``W``
range-partitioned sorted runs whose concatenation (in partition order)
is globally sorted.  Where the intermediate data flows is delegated to
an :class:`~repro.shuffle.exchange.ExchangeBackend` — by default the
paper's object-storage substrate (no function-to-function
communication); the cache and VM-relay substrates plug into the same
orchestration (see :mod:`repro.shuffle.cacheoperator` and
:mod:`repro.shuffle.relay`).

Phases (each an executor map job, sharing warm containers):

1. **sample** — a handful of samplers read small windows and pool record
   keys; the driver picks range boundaries;
2. **map** — ``W`` mappers read record-aligned splits, partition by
   range, and publish their partitions through the exchange substrate;
3. **reduce** — ``W`` reducers collect their range from every mapper,
   sort, and write one run each to object storage.

The worker count is chosen by the substrate's analytic planner unless
pinned by the caller — this is Primula's "optimal number of functions
on the fly".
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cas import cas_enabled, sha256_hex
from repro.errors import ShuffleError
from repro.shuffle import kernels
from repro.shuffle.content import RunManifest, build_run_manifest
from repro.shuffle.exchange import ExchangeBackend, ObjectStoreExchange
from repro.shuffle.planner import ShuffleCostModel, ShufflePlan
from repro.shuffle.records import RecordCodec
from repro.shuffle.sampler import (
    choose_weighted_boundaries,
    estimate_partition_weights,
    partition_skew_of,
)
from repro.shuffle.stages import shuffle_sampler
from repro.sim import SimEvent


@dataclasses.dataclass(frozen=True, slots=True)
class SortedRun:
    """One reducer output: a sorted range partition."""

    bucket: str
    key: str
    records: int
    size_bytes: int


@dataclasses.dataclass(frozen=True, slots=True)
class ShuffleResult:
    """Outcome of a shuffle/sort: ordered runs plus execution metadata."""

    runs: tuple[SortedRun, ...]
    workers: int
    planned: ShufflePlan | None
    boundaries: tuple[t.Any, ...]
    total_records: int
    duration_s: float

    @property
    def total_bytes(self) -> int:
        return sum(run.size_bytes for run in self.runs)


class ShuffleSort:
    """Sort a storage object with W functions over one exchange substrate.

    Parameters
    ----------
    executor:
        A :class:`~repro.executor.FunctionExecutor` (or the VM-backed
        standalone executor — the stages are substrate-portable).
    codec:
        Record format of the input object.
    cost:
        Cost-model constants for the default object-storage substrate;
        also control sampling and fetch batching.  Mutually exclusive
        with ``backend`` (a backend carries its own cost model).
    backend:
        The :class:`~repro.shuffle.exchange.ExchangeBackend` carrying
        the intermediate data; defaults to the paper's object-storage
        substrate.
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        cost: ShuffleCostModel | None = None,
        backend: ExchangeBackend | None = None,
    ):
        if cost is not None and backend is not None:
            raise ShuffleError(
                "pass either cost or backend, not both: a backend carries "
                "its own cost model and the cost argument would be ignored"
            )
        self.executor = executor
        self.sim = executor.sim
        self.codec = codec
        self.backend = backend if backend is not None else ObjectStoreExchange(cost)
        self.cost = self.backend.cost
        self.backend.bind_executor(executor)
        #: Uniform :class:`~repro.shuffle.exchange.ExchangeReport` of the
        #: last sort (``None`` until a sort completed).
        self.report = None
        #: Hash-chained :class:`~repro.shuffle.content.RunManifest` of
        #: the last sort (``None`` until a sort completed, or when
        #: content addressing is disabled via ``REPRO_CAS=off``).
        self.run_manifest: RunManifest | None = None
        #: Sample-based per-partition logical-byte estimate of the last
        #: sort's load profile (set by the sampling pass; the skew
        #: signal behind load-aware fleet routing and the reports).
        self.predicted_partition_bytes: tuple[float, ...] = ()

    # ------------------------------------------------------------------
    def sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str | None = None,
        out_prefix: str | None = None,
        workers: int | None = None,
        samplers: int = 8,
        max_workers: int = 256,
    ) -> SimEvent:
        """Sort ``bucket/key``; event → :class:`ShuffleResult`."""
        return self.sim.process(
            self._sort(
                bucket,
                key,
                out_bucket if out_bucket is not None else bucket,
                out_prefix if out_prefix is not None else self.backend.default_out_prefix,
                workers,
                samplers,
                max_workers,
            ),
            name=f"{self.backend.process_label}.sort:{key}",
        ).completion

    # ------------------------------------------------------------------
    # shared phases (the staged and streaming operators both use these)
    # ------------------------------------------------------------------
    def _preflight(self, bucket: str, key: str) -> t.Generator:
        """HEAD the input, check speculation support and substrate fit."""
        if (
            getattr(self.executor, "speculation", None) is not None
            and not self.backend.supports_speculation
        ):
            raise ShuffleError(
                f"substrate {self.backend.name!r} does not support "
                "speculative execution; disable the executor's speculation "
                "policy for this sort"
            )
        meta = yield self.executor.storage.head_object(bucket, key)
        if meta.size == 0:
            raise ShuffleError(f"cannot shuffle empty object {bucket}/{key}")
        self.backend.validate(meta.logical_size)
        return meta

    def _plan_workers(
        self, logical_size: float, pinned_workers: int | None, max_workers: int
    ) -> tuple[ShufflePlan | None, int]:
        plan: ShufflePlan | None = None
        if pinned_workers is not None:
            workers = pinned_workers
        else:
            plan = self.backend.plan(
                logical_size, self.executor.cloud.profile, max_workers
            )
            workers = plan.workers
        if workers < 1:
            raise ShuffleError(f"workers must be >= 1, got {workers}")
        return plan, workers

    def _sample(
        self,
        bucket: str,
        key: str,
        real_size: int,
        logical_size: float,
        workers: int,
        samplers: int,
        span=None,
    ) -> t.Generator:
        """Run the sampler wave, pick boundaries, estimate partition load.

        Boundaries come from the duplicate-aware weighted mode
        (:func:`~repro.shuffle.sampler.choose_weighted_boundaries`), so
        heavy-duplicate and Zipf inputs degrade to "one hot key per
        reducer" instead of collapsing whole key neighbourhoods onto
        one.  The same pooled sample yields the per-partition
        predicted-bytes profile, handed to the backend
        (:meth:`~repro.shuffle.exchange.ExchangeBackend.on_boundaries`)
        before any exchange traffic — the fleet rebalances its shard
        routing on it.
        """
        sampler_count = max(1, min(samplers, workers))
        sample_splits = _split(real_size, sampler_count)
        window = _sample_window_bytes(real_size, sampler_count, self.cost.sample_bytes)
        sample_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": real_size,
                "sample_bytes": window,
                "sample_keys": self.cost.sample_keys,
                "sample_strides": getattr(self.cost, "sample_strides", 1),
                "codec": self.codec,
                "sampler_id": index,
            }
            for index, (start, end) in enumerate(sample_splits)
        ]
        wave_span = self.sim.tracer.span(
            "wave:sample", category="wave", parent=span, samplers=sampler_count
        )
        with wave_span:
            sample_futures = yield self.executor.map(
                shuffle_sampler, sample_tasks, span=wave_span
            )
            sample_results = yield self.executor.get_result(sample_futures)
        pooled_keys = [k for result in sample_results for k in result["keys"]]
        if not pooled_keys:
            raise ShuffleError(f"sampling found no records in {bucket}/{key}")
        boundaries = choose_weighted_boundaries(pooled_keys, workers)
        weights = estimate_partition_weights(pooled_keys, boundaries)
        self.predicted_partition_bytes = tuple(
            weight * logical_size for weight in weights
        )
        self.backend.on_boundaries(boundaries, self.predicted_partition_bytes)
        return boundaries

    def _map_tasks(
        self,
        bucket: str,
        key: str,
        real_size: int,
        boundaries: t.Sequence[t.Any],
        workers: int,
        out_bucket: str,
        out_prefix: str,
    ) -> list[dict]:
        return [
            self.backend.mapper_task(
                {
                    "bucket": bucket,
                    "key": key,
                    "start": start,
                    "end": end,
                    "object_size": real_size,
                    "peek_bytes": self.cost.peek_bytes,
                    "boundaries": boundaries,
                    "codec": self.codec,
                    "partition_throughput": self.cost.partition_throughput,
                },
                mapper_id,
                out_bucket,
                out_prefix,
            )
            for mapper_id, (start, end) in enumerate(_split(real_size, workers))
        ]

    def _collect_runs(
        self, map_results: list[dict], reduce_results: list[dict], out_bucket: str
    ) -> tuple[tuple[SortedRun, ...], int]:
        """Assemble the sorted-run artifact, checking record conservation."""
        runs = tuple(
            SortedRun(
                bucket=out_bucket,
                key=result["output_key"],
                records=result["records"],
                size_bytes=result["bytes"],
            )
            for result in reduce_results
        )
        total_records = sum(run.records for run in runs)
        mapped_records = sum(result["records"] for result in map_results)
        if total_records != mapped_records:
            raise ShuffleError(
                f"shuffle lost records: mapped {mapped_records}, "
                f"reduced {total_records}"
            )
        return runs, total_records

    def _record_wave(self, job: str, wave: str, edge: str) -> None:
        """Timeline marker pairing into a Gantt wave span (traced runs)."""
        self.sim.timeline.record(
            self.sim.now, "shuffle", f"wave_{edge}", job=job, wave=wave
        )

    def _build_manifest(
        self,
        bucket: str,
        key: str,
        meta: t.Any,
        workers: int,
        boundaries: t.Sequence[t.Any],
        runs: t.Sequence[SortedRun],
        out_prefix: str,
    ) -> RunManifest | None:
        """Hash-chain this sort into a verifiable :class:`RunManifest`.

        Inputs (what was sorted) → decision (substrate/mode/workers/
        boundaries) → chunks (the backend's content log of exchange
        traffic under this sort's prefix) → outputs (the sorted runs,
        re-hashed from the bytes actually at rest).  ``None`` when
        content addressing is disabled (``REPRO_CAS=off``).
        """
        if not cas_enabled():
            return None
        store = self.executor.cloud.store
        inputs = {
            "bucket": bucket,
            "key": key,
            "etag": meta.etag,
            "logical_size": meta.logical_size,
        }
        decision = {
            "substrate": self.backend.name,
            "mode": self.backend.mode,
            "workers": workers,
            "boundaries": [_jsonable(boundary) for boundary in boundaries],
        }
        outputs = [
            {
                "bucket": run.bucket,
                "key": run.key,
                "sha256": sha256_hex(store.peek(run.bucket, run.key)),
                "logical": float(run.size_bytes),
            }
            for run in runs
        ]
        return build_run_manifest(
            inputs=inputs,
            decision=decision,
            chunks=self.backend.cas_entries(out_prefix),
            outputs=outputs,
        )

    # ------------------------------------------------------------------
    def _sort(
        self,
        bucket: str,
        key: str,
        out_bucket: str,
        out_prefix: str,
        pinned_workers: int | None,
        samplers: int,
        max_workers: int,
    ) -> t.Generator:
        started_at = self.sim.now
        sort_span = self.sim.tracer.span(
            f"sort:{out_prefix}",
            category="sort",
            substrate=self.backend.name,
            mode=self.backend.mode,
        )
        with sort_span:
            self.backend.begin_sort(out_bucket, out_prefix)
            meta = yield from self._preflight(bucket, key)
            real_size = meta.size
            plan, workers = self._plan_workers(
                meta.logical_size, pinned_workers, max_workers
            )
            boundaries = yield from self._sample(
                bucket, key, real_size, meta.logical_size, workers, samplers,
                span=sort_span,
            )
            job = f"{self.backend.process_label}:{out_prefix}@{started_at:.3f}"

            # --- map -------------------------------------------------------
            map_tasks = self._map_tasks(
                bucket, key, real_size, boundaries, workers, out_bucket, out_prefix
            )
            self._record_wave(job, "map", "start")
            map_span = self.sim.tracer.span(
                "wave:map", category="wave", parent=sort_span, workers=workers
            )
            with map_span:
                map_futures = yield self.executor.map(
                    self.backend.mapper_stage(), map_tasks, span=map_span
                )
                map_results = yield self.executor.get_result(map_futures)
            self._record_wave(job, "map", "end")
            self.backend.on_map_done(map_results)

            # --- reduce ------------------------------------------------------
            reduce_tasks = [
                self.backend.reducer_task(
                    reducer_id,
                    workers,
                    map_tasks,
                    map_results,
                    out_bucket,
                    out_prefix,
                    self.codec,
                )
                for reducer_id in range(workers)
            ]
            self._record_wave(job, "reduce", "start")
            reduce_span = self.sim.tracer.span(
                "wave:reduce", category="wave", parent=sort_span, workers=workers
            )
            with reduce_span:
                reduce_futures = yield self.executor.map(
                    self.backend.reducer_stage(), reduce_tasks, span=reduce_span
                )
                reduce_results = yield self.executor.get_result(reduce_futures)
            self._record_wave(job, "reduce", "end")

            runs, total_records = self._collect_runs(
                map_results, reduce_results, out_bucket
            )
            self.run_manifest = self._build_manifest(
                bucket, key, meta, workers, boundaries, runs, out_prefix
            )
            self.report = self.backend.report(
                workers,
                plan,
                self.sim.now - started_at,
                partition_skew=partition_skew_of([run.size_bytes for run in runs]),
                extra={
                    "predicted_partition_skew": partition_skew_of(
                        self.predicted_partition_bytes
                    ),
                    **kernels.kernel_report_extras(map_results, reduce_results),
                },
            )
            return ShuffleResult(
                runs=runs,
                workers=workers,
                planned=plan,
                boundaries=tuple(boundaries),
                total_records=total_records,
                duration_s=self.sim.now - started_at,
            )


def _jsonable(value: t.Any) -> t.Any:
    """A JSON-safe, deterministic rendering of a boundary key.

    Range boundaries may be bytes (binary codecs); the manifest must be
    both hashable by :func:`repro.cas.content_hash` and serializable by
    ``RunManifest.to_json``, so non-JSON types collapse to their repr.
    """
    if isinstance(value, (int, float, str)) or value is None:
        return value
    return repr(value)


def _split(size: int, parts: int) -> list[tuple[int, int]]:
    """Cut ``[0, size)`` into ``parts`` near-equal contiguous ranges."""
    base, remainder = divmod(size, parts)
    ranges = []
    cursor = 0
    for index in range(parts):
        length = base + (1 if index < remainder else 0)
        ranges.append((cursor, cursor + length))
        cursor += length
    return ranges


def _sample_window_bytes(real_size: int, samplers: int, configured: int) -> int:
    """Per-sampler read window, bounded by a fraction of the object.

    Primula reads a fixed window (``configured``, default 256 KiB) per
    sampler.  On scaled-down experiment data the same absolute window
    would cover — and be charged as — a disproportionate slice of the
    (logical) object, so the window is additionally capped at ~5% of the
    object per sampler.  At full scale the cap is far above the
    configured window and this reduces to Primula's behaviour.
    """
    proportional_cap = max(4096, real_size // (samplers * 20))
    return max(1024, min(configured, proportional_cap))
