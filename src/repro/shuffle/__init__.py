"""Primula-like shuffle/sort (and GroupBy) over pluggable substrates.

The generic :class:`ShuffleSort` drives one
:class:`~repro.shuffle.exchange.ExchangeBackend`; four substrates ship:
object storage (the paper's serverless default), an in-memory cache
cluster (:class:`CacheShuffleSort`), a VM-hosted partition relay
(:class:`RelayShuffleSort`) and a sharded multi-relay fleet
(:class:`ShardedRelayShuffleSort`).  Each substrate also runs in a
pipelined *streaming* mode (:class:`StreamingShuffleSort` over the
:mod:`repro.shuffle.streaming` backends), where the reduce wave
overlaps the map wave.  :func:`choose_exchange_substrate` picks
substrate — and execution mode — analytically.
"""

from repro.shuffle.adaptive import (
    EXCHANGE_MODES,
    EXCHANGE_SUBSTRATES,
    DecisionPoint,
    DecisionTimeline,
    OnlineTuner,
    ProbeReport,
    StreamRateSample,
    SubstrateDecision,
    SubstrateEstimate,
    choose_exchange_substrate,
    fit_profile,
    fit_stream_profiles,
    streaming_chunk_count,
    streaming_chunk_overhead_s,
)
from repro.shuffle.cacheoperator import (
    CacheExchange,
    CacheShuffleSort,
)
from repro.shuffle.cacheplanner import (
    CacheShuffleCostModel,
    plan_cache_shuffle,
    predict_cache_shuffle_time,
    required_cache_nodes,
)
from repro.shuffle.cachestages import (
    cache_partition_key,
    cache_shuffle_mapper,
    cache_shuffle_reducer,
)
from repro.shuffle.kernels import (
    DecimalFieldKeySpec,
    KernelFallback,
    KeySpec,
    PartitionOutcome,
    PrefixKeySpec,
    ReversedKeySpec,
    SortOutcome,
    grouped_records,
    kernel_report_extras,
    kernels_enabled,
    partition_buffer,
    record_view,
    sort_buffer,
    window_keys,
)
from repro.shuffle.groupby import (
    AggregateFn,
    GroupByResult,
    GroupKeyCodec,
    ShuffleGroupBy,
    shuffle_group_reducer,
)
from repro.shuffle.exchange import (
    ExchangeBackend,
    ExchangeReport,
    ObjectStoreExchange,
)
from repro.shuffle.online import OnlineShuffleSort
from repro.shuffle.operator import ShuffleResult, ShuffleSort, SortedRun
from repro.shuffle.orderby import (
    OrderByResult,
    ReversedKey,
    ShuffleOrderBy,
)
from repro.shuffle.planner import (
    PlanPoint,
    ShuffleCostModel,
    ShufflePlan,
    plan_shuffle,
    predict_shuffle_time,
    predict_streaming_shuffle_time,
)
from repro.shuffle.records import FixedWidthCodec, LineRecordCodec, RecordCodec
from repro.shuffle.relay import (
    PartitionLoadRouter,
    RelayExchange,
    RelayShuffleSort,
    ShardedRelayExchange,
    ShardedRelayShuffleSort,
    build_rebalance_assignments,
    relay_partition_key,
    relay_shuffle_mapper,
    relay_shuffle_reducer,
)
from repro.shuffle.relayplanner import (
    RelayShuffleCostModel,
    RelayShufflePlan,
    plan_relay_shuffle,
    predict_relay_shuffle_time,
    relay_usable_bytes,
    required_relay_fleet,
    required_relay_instance,
    resolve_relay_instance,
)
from repro.shuffle.sampler import (
    choose_boundaries,
    choose_weighted_boundaries,
    estimate_partition_weights,
    partition_index,
    partition_skew_of,
    reservoir_sample,
)
from repro.shuffle.skew import (
    KEY_DISTRIBUTIONS,
    SkewSpec,
    skewed_fixed_payload,
    skewed_keys,
    zipf_weights,
)
from repro.shuffle.streaming import (
    STREAMING_BACKENDS,
    StreamConfig,
    StreamingCacheExchange,
    StreamingObjectStoreExchange,
    StreamingRelayExchange,
    StreamingShardedRelayExchange,
    StreamingShuffleSort,
    streaming_shuffle_mapper,
    streaming_shuffle_reducer,
)
from repro.shuffle.stages import shuffle_mapper, shuffle_reducer, shuffle_sampler

__all__ = [
    "AggregateFn",
    "CacheExchange",
    "CacheShuffleCostModel",
    "CacheShuffleSort",
    "EXCHANGE_MODES",
    "EXCHANGE_SUBSTRATES",
    "KEY_DISTRIBUTIONS",
    "STREAMING_BACKENDS",
    "SkewSpec",
    "StreamConfig",
    "StreamingCacheExchange",
    "StreamingObjectStoreExchange",
    "StreamingRelayExchange",
    "StreamingShardedRelayExchange",
    "StreamingShuffleSort",
    "ExchangeBackend",
    "ExchangeReport",
    "ObjectStoreExchange",
    "DecisionPoint",
    "DecisionTimeline",
    "OnlineShuffleSort",
    "OnlineTuner",
    "StreamRateSample",
    "PartitionLoadRouter",
    "ProbeReport",
    "RelayExchange",
    "RelayShuffleCostModel",
    "RelayShufflePlan",
    "RelayShuffleSort",
    "ShardedRelayExchange",
    "ShardedRelayShuffleSort",
    "SubstrateDecision",
    "SubstrateEstimate",
    "build_rebalance_assignments",
    "choose_exchange_substrate",
    "fit_profile",
    "fit_stream_profiles",
    "plan_relay_shuffle",
    "predict_relay_shuffle_time",
    "relay_partition_key",
    "relay_shuffle_mapper",
    "relay_shuffle_reducer",
    "relay_usable_bytes",
    "required_relay_fleet",
    "required_relay_instance",
    "resolve_relay_instance",
    "cache_partition_key",
    "cache_shuffle_mapper",
    "cache_shuffle_reducer",
    "plan_cache_shuffle",
    "predict_cache_shuffle_time",
    "required_cache_nodes",
    "DecimalFieldKeySpec",
    "FixedWidthCodec",
    "GroupByResult",
    "GroupKeyCodec",
    "KernelFallback",
    "KeySpec",
    "LineRecordCodec",
    "PartitionOutcome",
    "PrefixKeySpec",
    "ReversedKeySpec",
    "SortOutcome",
    "grouped_records",
    "kernel_report_extras",
    "kernels_enabled",
    "partition_buffer",
    "record_view",
    "sort_buffer",
    "window_keys",
    "OrderByResult",
    "PlanPoint",
    "RecordCodec",
    "ReversedKey",
    "ShuffleCostModel",
    "ShuffleGroupBy",
    "ShuffleOrderBy",
    "ShufflePlan",
    "ShuffleResult",
    "ShuffleSort",
    "SortedRun",
    "shuffle_group_reducer",
    "choose_boundaries",
    "choose_weighted_boundaries",
    "estimate_partition_weights",
    "partition_index",
    "partition_skew_of",
    "plan_shuffle",
    "predict_shuffle_time",
    "predict_streaming_shuffle_time",
    "reservoir_sample",
    "skewed_fixed_payload",
    "skewed_keys",
    "zipf_weights",
    "shuffle_mapper",
    "shuffle_reducer",
    "shuffle_sampler",
    "streaming_chunk_count",
    "streaming_chunk_overhead_s",
    "streaming_shuffle_mapper",
    "streaming_shuffle_reducer",
]
