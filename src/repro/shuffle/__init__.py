"""Primula-like shuffle/sort (and GroupBy) through object storage.

Also hosts the cache-mediated shuffle variant
(:class:`CacheShuffleSort`), which exchanges intermediate partitions
through the in-memory key-value store instead.
"""

from repro.shuffle.cacheoperator import CacheShuffleReport, CacheShuffleSort
from repro.shuffle.cacheplanner import (
    CacheShuffleCostModel,
    plan_cache_shuffle,
    predict_cache_shuffle_time,
    required_cache_nodes,
)
from repro.shuffle.cachestages import (
    cache_partition_key,
    cache_shuffle_mapper,
    cache_shuffle_reducer,
)
from repro.shuffle.groupby import (
    AggregateFn,
    GroupByResult,
    GroupKeyCodec,
    ShuffleGroupBy,
    shuffle_group_reducer,
)
from repro.shuffle.operator import ShuffleResult, ShuffleSort, SortedRun
from repro.shuffle.orderby import (
    OrderByResult,
    ReversedKey,
    ShuffleOrderBy,
)
from repro.shuffle.planner import (
    PlanPoint,
    ShuffleCostModel,
    ShufflePlan,
    plan_shuffle,
    predict_shuffle_time,
)
from repro.shuffle.records import FixedWidthCodec, LineRecordCodec, RecordCodec
from repro.shuffle.sampler import (
    choose_boundaries,
    partition_index,
    reservoir_sample,
)
from repro.shuffle.stages import shuffle_mapper, shuffle_reducer, shuffle_sampler

__all__ = [
    "AggregateFn",
    "CacheShuffleCostModel",
    "CacheShuffleReport",
    "CacheShuffleSort",
    "cache_partition_key",
    "cache_shuffle_mapper",
    "cache_shuffle_reducer",
    "plan_cache_shuffle",
    "predict_cache_shuffle_time",
    "required_cache_nodes",
    "FixedWidthCodec",
    "GroupByResult",
    "GroupKeyCodec",
    "LineRecordCodec",
    "OrderByResult",
    "PlanPoint",
    "RecordCodec",
    "ReversedKey",
    "ShuffleCostModel",
    "ShuffleGroupBy",
    "ShuffleOrderBy",
    "ShufflePlan",
    "ShuffleResult",
    "ShuffleSort",
    "SortedRun",
    "shuffle_group_reducer",
    "choose_boundaries",
    "partition_index",
    "plan_shuffle",
    "predict_shuffle_time",
    "reservoir_sample",
    "shuffle_mapper",
    "shuffle_reducer",
    "shuffle_sampler",
]
