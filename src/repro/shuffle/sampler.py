"""Key sampling and range-boundary selection for the shuffle.

Primula partitions by *range* so reducer outputs concatenate into a
globally sorted result.  Boundaries come from a cheap sampling pass:
each sampler reads a small window of its input split, extracts record
keys, and the driver picks quantiles over the pooled sample.

Two boundary modes exist:

* :func:`choose_boundaries` — classic positional quantiles.  Fast and
  exact on distinct keys, but on duplicate-heavy samples the quantile
  positions can land on the *same* key repeatedly, emitting duplicate
  boundaries: every partition strictly between two equal boundaries is
  guaranteed empty, and all of the duplicated key's mass collapses onto
  one reducer.
* :func:`choose_weighted_boundaries` — duplicate-aware quantiles.  The
  sample is grouped into distinct-key runs and cut points are chosen
  between runs, as close to the ideal mass quantiles as the duplicate
  structure allows.  Boundaries are strictly ascending whenever the
  sample has enough distinct keys, so skewed (Zipf, heavy-duplicate)
  workloads degrade to "one hot key per reducer" instead of "all hot
  keys plus their neighbours on one reducer".  The shuffle operators
  use this mode.

:func:`estimate_partition_weights` turns the same pooled sample into a
per-partition mass estimate — the planner-side skew signal that the
sharded relay fleet uses for load-aware routing and the reports surface
as predicted partition bytes.
"""

from __future__ import annotations

import bisect
import itertools
import typing as t

from repro.errors import ShuffleError
from repro.shuffle import kernels


def reservoir_sample(items: t.Iterable[t.Any], capacity: int, rng) -> list[t.Any]:
    """Classic reservoir sampling: ``capacity`` items, uniform over input."""
    if capacity < 1:
        raise ShuffleError(f"sample capacity must be >= 1, got {capacity}")
    reservoir: list[t.Any] = []
    for index, item in enumerate(items):
        if index < capacity:
            reservoir.append(item)
        else:
            slot = rng.randint(0, index)
            if slot < capacity:
                reservoir[slot] = item
    return reservoir


def choose_boundaries(sampled_keys: t.Sequence[t.Any], partitions: int) -> list[t.Any]:
    """Pick ``partitions - 1`` split points from pooled sample keys.

    Returns an ascending list of boundary keys; partition ``i`` holds the
    records with ``boundary[i-1] <= key < boundary[i]``.  With fewer
    distinct keys than partitions, some partitions simply end up empty —
    correctness is preserved, parallelism degrades gracefully.
    """
    if partitions < 1:
        raise ShuffleError(f"partitions must be >= 1, got {partitions}")
    if partitions == 1:
        return []
    if not sampled_keys:
        raise ShuffleError("cannot choose boundaries from an empty sample")
    ordered = sorted(sampled_keys)
    boundaries = []
    for index in range(1, partitions):
        position = (index * len(ordered)) // partitions
        boundaries.append(ordered[position])
    return boundaries


def choose_weighted_boundaries(
    sampled_keys: t.Sequence[t.Any], partitions: int
) -> list[t.Any]:
    """Duplicate-aware quantiles: split sample *mass* across partitions.

    The sorted sample is grouped into runs of equal keys; cut points may
    only fall between runs (equal keys are indivisible — they must land
    on one reducer), and each cut is placed where the cumulative run
    mass is closest to the ideal quantile ``i * n / partitions``, while
    staying strictly after the previous cut.  The emitted boundaries are
    therefore strictly ascending distinct keys whenever the sample has
    at least ``partitions`` distinct keys — no guaranteed-empty
    partitions, and a hot key caps its reducer's share at its own mass
    instead of absorbing its neighbours too.

    With fewer distinct keys than partitions the surplus boundaries
    repeat the largest key, parking the surplus partitions empty at the
    *end* (every real key still compares below-or-equal, so coverage and
    ordering are preserved).  On an all-distinct sample this is the
    classic quantile split up to cut placement.
    """
    if partitions < 1:
        raise ShuffleError(f"partitions must be >= 1, got {partitions}")
    if partitions == 1:
        return []
    if not sampled_keys:
        raise ShuffleError("cannot choose boundaries from an empty sample")
    ordered = sorted(sampled_keys)
    total = len(ordered)
    # Distinct-key runs and the cumulative count before each run.
    run_keys: list[t.Any] = []
    prefix: list[int] = []  # prefix[j] = samples strictly before run j
    seen = 0
    for key, group in itertools.groupby(ordered):
        run_keys.append(key)
        prefix.append(seen)
        seen += len(list(group))

    boundaries: list[t.Any] = []
    cut = 1  # candidate run index; a cut before run j emits boundary run_keys[j]
    for index in range(1, partitions):
        if cut >= len(run_keys):
            # Out of distinct keys: surplus partitions park empty at the
            # end, after every real key.
            boundaries.append(run_keys[-1])
            continue
        target = index * total / partitions
        # Reserve one candidate per *remaining* cut, so a greedy early
        # cut can never starve a later one of a distinct boundary —
        # clamped to at least one candidate when supply is short (the
        # next run in order, keeping boundaries monotone).
        remaining_after = (partitions - 1) - index
        upper = max(cut + 1, min(len(run_keys), len(run_keys) - remaining_after))
        best = cut
        for candidate in range(cut, upper):
            if abs(prefix[candidate] - target) < abs(prefix[best] - target):
                best = candidate
            if prefix[candidate] >= target:
                break  # later cuts only move further from the target
        boundaries.append(run_keys[best])
        cut = best + 1
    return boundaries


def estimate_partition_weights(
    sampled_keys: t.Sequence[t.Any], boundaries: t.Sequence[t.Any]
) -> list[float]:
    """Fraction of sample mass per partition (length ``len(boundaries)+1``).

    The sample is the only data-dependent signal the driver has before
    the map wave, so this is the shuffle's *predicted* load profile:
    multiplied by the dataset's logical size it estimates each
    reducer's bytes, which the sharded relay fleet uses to rebalance
    shard routing and the planners use to price the straggler reducer.
    """
    if not sampled_keys:
        raise ShuffleError("cannot estimate partition weights from an empty sample")
    counts = kernels.partition_counts(sampled_keys, boundaries)
    if counts is None:  # non-integer keys: count with the scalar search
        counts = [0] * (len(boundaries) + 1)
        for key in sampled_keys:
            counts[partition_index(key, boundaries)] += 1
    total = len(sampled_keys)
    return [count / total for count in counts]


def partition_skew_of(sizes: t.Sequence[float]) -> float:
    """Max-over-mean partition size: 1.0 is perfectly balanced.

    The scalar skew signal shared by the measured reports
    (``ExchangeReport.partition_skew`` over reducer output bytes) and
    the planners' straggler term (the hot reducer handles
    ``skew * size / workers`` bytes).
    """
    if not sizes:
        return 1.0
    mean = sum(sizes) / len(sizes)
    if mean <= 0:
        return 1.0
    return max(sizes) / mean


def partition_index(key: t.Any, boundaries: t.Sequence[t.Any]) -> int:
    """Which partition ``key`` belongs to.

    ``bisect_right`` semantics: a key equal to ``boundaries[i]`` lands
    in partition ``i + 1`` (partition ``i`` holds ``boundary[i-1] <=
    key < boundary[i]``).  The C bisect compares with ``<`` exactly
    like the hand-rolled binary search it replaced, so any totally
    ordered key type works.
    """
    return bisect.bisect_right(boundaries, key)
