"""Key sampling and range-boundary selection for the shuffle.

Primula partitions by *range* so reducer outputs concatenate into a
globally sorted result.  Boundaries come from a cheap sampling pass:
each sampler reads a small window of its input split, extracts record
keys, and the driver picks quantiles over the pooled sample.
"""

from __future__ import annotations

import typing as t

from repro.errors import ShuffleError


def reservoir_sample(items: t.Iterable[t.Any], capacity: int, rng) -> list[t.Any]:
    """Classic reservoir sampling: ``capacity`` items, uniform over input."""
    if capacity < 1:
        raise ShuffleError(f"sample capacity must be >= 1, got {capacity}")
    reservoir: list[t.Any] = []
    for index, item in enumerate(items):
        if index < capacity:
            reservoir.append(item)
        else:
            slot = rng.randint(0, index)
            if slot < capacity:
                reservoir[slot] = item
    return reservoir


def choose_boundaries(sampled_keys: t.Sequence[t.Any], partitions: int) -> list[t.Any]:
    """Pick ``partitions - 1`` split points from pooled sample keys.

    Returns an ascending list of boundary keys; partition ``i`` holds the
    records with ``boundary[i-1] <= key < boundary[i]``.  With fewer
    distinct keys than partitions, some partitions simply end up empty —
    correctness is preserved, parallelism degrades gracefully.
    """
    if partitions < 1:
        raise ShuffleError(f"partitions must be >= 1, got {partitions}")
    if partitions == 1:
        return []
    if not sampled_keys:
        raise ShuffleError("cannot choose boundaries from an empty sample")
    ordered = sorted(sampled_keys)
    boundaries = []
    for index in range(1, partitions):
        position = (index * len(ordered)) // partitions
        boundaries.append(ordered[position])
    return boundaries


def partition_index(key: t.Any, boundaries: t.Sequence[t.Any]) -> int:
    """Which partition ``key`` belongs to (binary search over boundaries)."""
    low, high = 0, len(boundaries)
    while low < high:
        mid = (low + high) // 2
        if key < boundaries[mid]:
            high = mid
        else:
            low = mid + 1
    return low
