"""Analytic planner: the optimal number of shuffle functions.

This is the heart of the Primula reimplementation and of the paper's
thesis: "object storage performs well **when the appropriate number of
functions is used** in I/O-bound stages".

The planner models end-to-end shuffle time as a function of the worker
count ``W`` (we use ``W`` mappers and ``W`` reducers, Primula's default
square layout) and picks the minimizing ``W``:

* **too few functions** — each worker moves ``S/W`` bytes through its
  own NIC: bandwidth-starved, compute-starved;
* **too many functions** — the all-to-all phase issues ``W²`` requests:
  per-request latency and the object store's ops/s ceiling dominate,
  plus every extra worker pays a cold start.

The model's terms (per phase, seconds):

==============  =====================================================
startup         invoke overhead + cold start (parallel across workers)
map read        ``max(S / (W·b), S / A)`` — instance NIC vs aggregate
partition CPU   ``(S/W) / partition_throughput``
map write       same bandwidth law as read, + one PUT latency
reduce fetch    ``max(ceil(W/K)·L_r + (S/W)/b, W²/Q)`` — K-way batched
                range-GETs per reducer, floored by the ops/s ceiling Q
sort CPU        ``(S/W) / sort_throughput``
reduce write    bandwidth law + one PUT latency
driver          ``3·W·(L_w + L_r)`` — the orchestrator uploads one
                payload and fetches one result per call, serially, for
                each of the three phases (Lithops driver behaviour)
==============  =====================================================

The planned curve is itself an experiment artifact: benchmark S1 sweeps
the *simulated* shuffle over ``W`` and checks it reproduces this
U-shape with a compatible minimizer.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cloud.profiles import CloudProfile
from repro.errors import ShuffleError


@dataclasses.dataclass(slots=True)
class ShuffleCostModel:
    """Workload-side constants of the shuffle cost model."""

    #: Full-core throughput of the partitioning pass (bytes/s).
    partition_throughput: float = 180e6
    #: Full-core throughput of the reduce-side sort (bytes/s).
    sort_throughput: float = 90e6
    #: Concurrent range-GETs per reducer (latency hiding).
    fetch_parallelism: int = 4
    #: Primula's write-combining I/O optimization: each mapper writes one
    #: combined object (W PUTs per map phase) instead of one object per
    #: partition (W² PUTs).  Disable to measure the naive all-to-all the
    #: paper warns about.
    write_combining: bool = True
    #: Peek window appended to splits for record alignment (bytes).
    peek_bytes: int = 64 * 1024
    #: Bytes each sampler reads for boundary estimation.
    sample_bytes: int = 256 * 1024
    #: Number of key samples kept per sampler.
    sample_keys: int = 512
    #: Sampling windows per sampler, spread across its split.  A single
    #: head-of-split window is biased on locally-sorted inputs
    #: (``sorted-runs``): the head of each split over-represents low
    #: keys, skewing :func:`~repro.shuffle.sampler.choose_weighted_boundaries`.
    #: Strided windows restore uniform coverage at the same byte budget.
    sample_strides: int = 4
    #: Expected max-over-mean partition bytes (straggler-reducer term;
    #: 1.0 = balanced key distribution).
    expected_skew: float = 1.0


@dataclasses.dataclass(frozen=True, slots=True)
class PlanPoint:
    """Predicted shuffle timing at one worker count."""

    workers: int
    total_s: float
    breakdown: dict[str, float]


@dataclasses.dataclass(frozen=True, slots=True)
class ShufflePlan:
    """Planner output: chosen worker count plus the full predicted curve."""

    workers: int
    predicted_s: float
    curve: tuple[PlanPoint, ...]

    def point(self, workers: int) -> PlanPoint:
        for candidate in self.curve:
            if candidate.workers == workers:
                return candidate
        raise ShuffleError(f"no plan point for {workers} workers")


def predict_shuffle_time(
    logical_bytes: float,
    workers: int,
    profile: CloudProfile,
    cost: ShuffleCostModel,
    skew: float | None = None,
) -> PlanPoint:
    """Evaluate the analytic model at one worker count.

    ``skew`` is the expected max-over-mean partition bytes (default:
    ``cost.expected_skew``).  Input splits stay byte-even under any key
    distribution, so the map side is unaffected; the reduce side is
    paced by the straggler owning the hottest partition, whose fetch
    transfer, sort CPU and output write scale by ``skew``.
    """
    if workers < 1:
        raise ShuffleError(f"workers must be >= 1, got {workers}")
    skew = cost.expected_skew if skew is None else skew
    if skew < 1.0:
        raise ShuffleError(f"skew must be >= 1 (max/mean), got {skew}")
    size = float(logical_bytes)
    store = profile.objectstore
    faas = profile.faas
    instance_bw = min(faas.instance_bandwidth, store.per_connection_bandwidth)
    aggregate_bw = store.aggregate_bandwidth
    per_worker = size / workers

    startup = faas.invoke_overhead.mean + faas.cold_start.mean
    bandwidth_bound = max(per_worker / instance_bw, size / aggregate_bw)

    map_read = bandwidth_bound + store.read_latency.mean
    partition_cpu = per_worker / cost.partition_throughput
    map_write = bandwidth_bound + store.write_latency.mean

    batches = -(-workers // max(1, cost.fetch_parallelism))  # ceil division
    fetch_latency = batches * store.read_latency.mean
    straggler = per_worker * skew
    fetch_transfer = max(straggler / instance_bw, size / aggregate_bw)
    ops_floor = (workers * workers) / store.ops_per_second
    reduce_fetch = max(fetch_latency + fetch_transfer, ops_floor)

    sort_cpu = straggler / cost.sort_throughput
    reduce_write = (
        max(straggler / instance_bw, size / aggregate_bw)
        + store.write_latency.mean
    )
    driver = 3.0 * workers * (store.write_latency.mean + store.read_latency.mean)

    breakdown = {
        "startup": startup,
        "map_read": map_read,
        "partition_cpu": partition_cpu,
        "map_write": map_write,
        "reduce_fetch": reduce_fetch,
        "sort_cpu": sort_cpu,
        "reduce_write": reduce_write,
        "driver": driver,
    }
    return PlanPoint(workers, sum(breakdown.values()), dict(breakdown))


def predict_streaming_shuffle_time(
    staged: PlanPoint,
    chunks: int,
    per_chunk_overhead_s: float = 0.0,
    chunked_input: bool = False,
) -> PlanPoint:
    """Overlap-aware completion time of the pipelined map→reduce exchange.

    Transforms a *staged* prediction (any substrate's — all three
    analytic models emit the same canonical breakdown keys) into the
    streaming execution mode's: the producer side of the exchange
    (partitioning + publishing) and the consumer side (fetching +
    sorting) run as a two-stage pipeline over ``chunks`` chunks per
    mapper, so the critical path is the slower side plus one chunk's
    worth of the faster side (the pipeline fill/drain), instead of
    their sum::

        pipelined = max(P, C) + min(P, C) / chunks
        P = partition_cpu + map_write
        C = reduce_fetch + sort_cpu

    ``per_chunk_overhead_s`` charges what staging never pays: the extra
    per-chunk requests of the readiness protocol (manifest PUT/poll on
    object storage, notification reads on cache/relay), linear in the
    chunk count — which is why infinitely fine chunking does not win.
    Input read, output write, startup and driver terms are unchanged;
    with ``chunks == 1`` and zero overhead this degenerates to the
    staged total.

    ``chunked_input`` models the online sort's chunked map-side *input*
    reads: the mapper range-GETs each chunk's sub-range just before
    partitioning it, so the whole-split read joins the producer side of
    the pipeline (``P = map_read + partition_cpu + map_write``) instead
    of serialising before it — pipeline fill drops below ``map_read +
    first chunk``.
    """
    if chunks < 1:
        raise ShuffleError(f"chunks must be >= 1, got {chunks}")
    if per_chunk_overhead_s < 0:
        raise ShuffleError(
            f"per_chunk_overhead_s must be >= 0, got {per_chunk_overhead_s}"
        )
    b = staged.breakdown
    producer = b["partition_cpu"] + b["map_write"]
    serial_read = b["map_read"]
    if chunked_input:
        producer += serial_read
        serial_read = 0.0
    consumer = b["reduce_fetch"] + b["sort_cpu"]
    breakdown = {
        "startup": b["startup"],
        "map_read": serial_read,
        "pipelined_exchange": max(producer, consumer)
        + min(producer, consumer) / chunks,
        "chunk_overhead": chunks * per_chunk_overhead_s,
        "reduce_write": b["reduce_write"],
        "driver": b["driver"],
    }
    return PlanPoint(staged.workers, sum(breakdown.values()), breakdown)


def plan_shuffle(
    logical_bytes: float,
    profile: CloudProfile,
    cost: ShuffleCostModel | None = None,
    max_workers: int = 256,
    candidates: t.Sequence[int] | None = None,
    skew: float | None = None,
) -> ShufflePlan:
    """Pick the worker count minimizing predicted shuffle time.

    ``candidates`` defaults to every integer in ``[1, max_workers]``;
    pass an explicit sequence (e.g. powers of two) to restrict the
    search the way Primula's on-the-fly heuristic does.  ``skew``
    prices the straggler reducer (see :func:`predict_shuffle_time`).
    """
    if logical_bytes <= 0:
        raise ShuffleError(f"logical_bytes must be positive, got {logical_bytes}")
    cost = cost if cost is not None else ShuffleCostModel()
    pool = list(candidates) if candidates is not None else list(range(1, max_workers + 1))
    if not pool:
        raise ShuffleError("empty candidate worker set")
    curve = tuple(
        predict_shuffle_time(logical_bytes, workers, profile, cost, skew=skew)
        for workers in sorted(set(pool))
    )
    best = min(curve, key=lambda point: (point.total_s, point.workers))
    return ShufflePlan(workers=best.workers, predicted_s=best.total_s, curve=curve)
