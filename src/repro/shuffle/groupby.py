"""GroupBy through object storage — the other I/O-bound stage.

The paper names "GroupBy and OrderBy" as the all-to-all stages that
bottleneck serverless workflows.  :class:`ShuffleSort` covers OrderBy;
this module provides GroupBy on the same machinery: records are
range-partitioned *by group key* (so a group never spans reducers), and
each reducer applies a user aggregation per group.

The aggregation function must be picklable and has the signature
``aggregate(group_key, records: list[bytes]) -> list[bytes]`` — it
receives every record of one group and returns the output records for
that group (any number, in the input codec's format).
"""

from __future__ import annotations

import dataclasses
import time
import typing as t

from repro.errors import ShuffleError
from repro.shuffle import kernels
from repro.shuffle.operator import _split
from repro.shuffle.planner import ShuffleCostModel, plan_shuffle
from repro.shuffle.records import RecordCodec
from repro.shuffle.sampler import choose_weighted_boundaries
from repro.shuffle.stages import shuffle_mapper, shuffle_sampler
from repro.sim import SimEvent
from repro.storage import paths

#: ``aggregate(group_key, records) -> list[records]``
AggregateFn = t.Callable[[t.Any, list[bytes]], list[bytes]]


class GroupKeyCodec(RecordCodec):
    """A codec view whose sort key is the *group* key.

    Record layout (split/join/alignment) is delegated to the base codec;
    only the key changes, so the shuffle partitions by group.
    """

    def __init__(
        self,
        base: RecordCodec,
        group_key_fn: t.Callable[[bytes], t.Any],
        key_spec: kernels.KeySpec | None = None,
    ):
        self.base = base
        self.group_key_fn = group_key_fn
        #: Optional vectorized encoding of the *group* key (must compute
        #: the same keys as ``group_key_fn`` on the full record).
        self.key_spec = key_spec

    def split(self, buffer: bytes) -> list[bytes]:
        return self.base.split(buffer)

    def join(self, records: t.Iterable[bytes]) -> bytes:
        return self.base.join(records)

    def key(self, record: bytes) -> t.Any:
        return self.group_key_fn(record)

    def extract_split(self, base, tail, is_first, at_end, global_start):
        return self.base.extract_split(base, tail, is_first, at_end, global_start)

    def sample_window(self, window, is_first, global_start):
        return self.base.sample_window(window, is_first, global_start)

    def vector_layout(self, buffer: bytes):
        return self.base.vector_layout(buffer)

    def vector_spec(self) -> kernels.KeySpec | None:
        return self.key_spec

    def align_window(self, window, is_first, global_start):
        return self.base.align_window(window, is_first, global_start)


def shuffle_group_reducer(ctx, task: dict) -> t.Generator:
    """Fetch one partition, group records by key, apply the aggregation.

    Task fields: ``out_bucket, segments, output_key, codec,
    aggregate_fn, sort_throughput, fetch_parallelism``.
    """
    codec: RecordCodec = task["codec"]
    aggregate_fn: AggregateFn = task["aggregate_fn"]
    segments = [
        (key, start, end)
        for key, start, end in task["segments"]
        if start is None or end > start
    ]
    parallelism = max(1, task["fetch_parallelism"])
    fetch_storage = ctx.storage
    if parallelism > 1 and ctx.storage.connection_bandwidth is not None:
        fetch_storage = ctx.storage.bounded(
            ctx.storage.connection_bandwidth / parallelism
        )

    chunks: dict[int, bytes] = {}

    def fetch_one(index: int, key: str, seg_start, seg_end) -> t.Generator:
        if seg_start is None:
            chunks[index] = yield fetch_storage.get(task["out_bucket"], key)
        else:
            chunks[index] = yield fetch_storage.get_range(
                task["out_bucket"], key, seg_start, seg_end
            )

    for batch_start in range(0, len(segments), parallelism):
        batch = segments[batch_start : batch_start + parallelism]
        processes = [
            ctx.sim.process(
                fetch_one(batch_start + offset, key, seg_start, seg_end),
                name=f"group-fetch-{batch_start + offset}",
            )
            for offset, (key, seg_start, seg_end) in enumerate(batch)
        ]
        if processes:
            yield ctx.sim.all_of([process.completion for process in processes])

    buffer = b"".join(chunks[index] for index in sorted(chunks))
    yield ctx.compute_bytes(len(buffer), task["sort_throughput"])

    kernel_started = time.perf_counter()
    groups, records_in, kernel = kernels.grouped_records(codec, buffer)
    output_records: list[bytes] = []
    for group_key, group_records in groups:
        output_records.extend(aggregate_fn(group_key, group_records))
    output = codec.join(output_records)
    kernel_s = time.perf_counter() - kernel_started
    yield ctx.storage.put(task["out_bucket"], task["output_key"], output)
    return {
        "groups": len(groups),
        "records_in": records_in,
        "records_out": len(output_records),
        "bytes": len(output),
        "output_key": task["output_key"],
        "kernel": kernel,
        "kernel_records": records_in,
        "kernel_s": kernel_s,
    }


@dataclasses.dataclass(frozen=True, slots=True)
class GroupByResult:
    """Outcome of a grouped aggregation."""

    outputs: tuple[dict, ...]
    workers: int
    total_groups: int
    records_in: int
    records_out: int
    duration_s: float


class ShuffleGroupBy:
    """Range-partitioned GroupBy over object storage.

    Parameters mirror :class:`~repro.shuffle.operator.ShuffleSort`, plus
    ``group_key_fn`` (picklable) extracting the grouping key from a
    record.
    """

    def __init__(
        self,
        executor,
        codec: RecordCodec,
        group_key_fn: t.Callable[[bytes], t.Any],
        cost: ShuffleCostModel | None = None,
    ):
        self.executor = executor
        self.sim = executor.sim
        self.codec = GroupKeyCodec(codec, group_key_fn)
        self.cost = cost if cost is not None else ShuffleCostModel()

    def group_by(
        self,
        bucket: str,
        key: str,
        aggregate_fn: AggregateFn,
        out_bucket: str | None = None,
        out_prefix: str = "groupby-out",
        workers: int | None = None,
        samplers: int = 8,
        max_workers: int = 256,
    ) -> SimEvent:
        """Group and aggregate ``bucket/key``; event → :class:`GroupByResult`."""
        return self.sim.process(
            self._group_by(
                bucket,
                key,
                aggregate_fn,
                out_bucket if out_bucket is not None else bucket,
                out_prefix,
                workers,
                samplers,
                max_workers,
            ),
            name=f"shuffle.group_by:{key}",
        ).completion

    def _group_by(
        self,
        bucket: str,
        key: str,
        aggregate_fn: AggregateFn,
        out_bucket: str,
        out_prefix: str,
        pinned_workers: int | None,
        samplers: int,
        max_workers: int,
    ) -> t.Generator:
        started_at = self.sim.now
        meta = yield self.executor.storage.head_object(bucket, key)
        if meta.size == 0:
            raise ShuffleError(f"cannot group empty object {bucket}/{key}")

        if pinned_workers is not None:
            workers = pinned_workers
        else:
            plan = plan_shuffle(
                meta.logical_size,
                self.executor.cloud.profile,
                self.cost,
                max_workers=max_workers,
            )
            workers = plan.workers

        # --- sample (by group key) -------------------------------------
        sampler_count = max(1, min(samplers, workers))
        from repro.shuffle.operator import _sample_window_bytes

        window = _sample_window_bytes(meta.size, sampler_count, self.cost.sample_bytes)
        sample_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": meta.size,
                "sample_bytes": window,
                "sample_keys": self.cost.sample_keys,
                "codec": self.codec,
                "sampler_id": index,
            }
            for index, (start, end) in enumerate(_split(meta.size, sampler_count))
        ]
        sample_futures = yield self.executor.map(shuffle_sampler, sample_tasks)
        sample_results = yield self.executor.get_result(sample_futures)
        pooled = [k for result in sample_results for k in result["keys"]]
        if not pooled:
            raise ShuffleError(f"sampling found no records in {bucket}/{key}")
        boundaries = choose_weighted_boundaries(pooled, workers)

        # --- map ---------------------------------------------------------
        map_tasks = [
            {
                "bucket": bucket,
                "key": key,
                "start": start,
                "end": end,
                "object_size": meta.size,
                "peek_bytes": self.cost.peek_bytes,
                "boundaries": boundaries,
                "codec": self.codec,
                "out_bucket": out_bucket,
                "out_key": paths.shuffle_map_output_key(out_prefix, mapper_id),
                "partition_throughput": self.cost.partition_throughput,
                "write_combining": self.cost.write_combining,
            }
            for mapper_id, (start, end) in enumerate(_split(meta.size, workers))
        ]
        map_futures = yield self.executor.map(shuffle_mapper, map_tasks)
        map_results = yield self.executor.get_result(map_futures)

        # --- group-reduce ---------------------------------------------------
        reduce_tasks = []
        for reducer_id in range(workers):
            if self.cost.write_combining:
                segments = [
                    (
                        map_tasks[mapper_id]["out_key"],
                        *map_results[mapper_id]["offsets"][reducer_id],
                    )
                    for mapper_id in range(workers)
                ]
            else:
                segments = [
                    (map_results[mapper_id]["partition_keys"][reducer_id], None, None)
                    for mapper_id in range(workers)
                ]
            reduce_tasks.append(
                {
                    "out_bucket": out_bucket,
                    "segments": segments,
                    "output_key": paths.shuffle_output_key(out_prefix, reducer_id),
                    "codec": self.codec,
                    "aggregate_fn": aggregate_fn,
                    "sort_throughput": self.cost.sort_throughput,
                    "fetch_parallelism": self.cost.fetch_parallelism,
                }
            )
        reduce_futures = yield self.executor.map(shuffle_group_reducer, reduce_tasks)
        reduce_results = yield self.executor.get_result(reduce_futures)

        records_in = sum(result["records_in"] for result in reduce_results)
        mapped = sum(result["records"] for result in map_results)
        if records_in != mapped:
            raise ShuffleError(
                f"groupby lost records: mapped {mapped}, reduced {records_in}"
            )
        return GroupByResult(
            outputs=tuple(reduce_results),
            workers=workers,
            total_groups=sum(result["groups"] for result in reduce_results),
            records_in=records_in,
            records_out=sum(result["records_out"] for result in reduce_results),
            duration_s=self.sim.now - started_at,
        )
