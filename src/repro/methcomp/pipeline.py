"""Worker-side stages of the METHCOMP serverless pipeline.

The pipeline the paper ports to serverless has two stages:

1. **sort** — genomic ordering of the raw bedMethyl file (all-to-all;
   provided by :mod:`repro.shuffle` or by a VM task, depending on the
   configuration under study);
2. **encode** — embarrassingly parallel compression of the sorted
   partitions with the METHCOMP codec.

This module supplies the encode/verify stage functions (sim-aware
executor functions doing *real* compression on real bytes) plus the BED
record codec used by the shuffle.
"""

from __future__ import annotations

import typing as t

from repro.methcomp.bed import CHROM_RANK, bed_sort_key, parse_buffer, serialize_records
from repro.methcomp.codec.methcodec import (
    DECODE_THROUGHPUT_BPS,
    ENCODE_THROUGHPUT_BPS,
    compress_records,
    decompress_records,
)
from repro.shuffle import kernels
from repro.shuffle.records import LineRecordCodec

#: Chromosome-code lookup tables for the vectorized BED key, built on
#: first use (kept out of pickled codec payloads).
_BED_TABLES: dict[str, t.Any] = {}


def _bed_tables():
    np = kernels.np
    codes = sorted(
        (int.from_bytes(name.encode("ascii"), "big"), rank)
        for name, rank in CHROM_RANK.items()
    )
    _BED_TABLES["codes"] = np.asarray([code for code, _ in codes], dtype=np.uint64)
    _BED_TABLES["ranks"] = np.asarray([rank for _, rank in codes], dtype=np.uint64)
    return _BED_TABLES


class BedKeySpec(kernels.KeySpec):
    """Vectorized genomic sort key for bedMethyl lines.

    Computes exactly :func:`~repro.methcomp.bed.bed_sort_key` — the
    ``(chromosome rank, start)`` tuple — encoded as ``rank << 32 |
    start`` (starts are far below 2**32 on any real assembly; larger
    values fall back to the scalar path).  Lines naming an unknown
    chromosome also fall back, so the scalar ``key_fn`` raises the same
    :class:`~repro.errors.CodecError` it always did.
    """

    identity = False

    #: Window covering ``chrom\tstart\t`` at every line head: 8 name
    #: bytes + tab + 10 start digits (anything past 10 digits is over
    #: 2**32 and falls back anyway) + tab.
    _WINDOW = 20

    def decode(self, data, starts, ends):
        np = kernels.np
        count = len(starts)
        if count == 0:
            return np.empty(0, dtype=np.uint64)
        # One windowed gather of each line's head instead of scanning
        # the whole buffer for separators: both key fields must sit in
        # the first ``_WINDOW`` bytes of a decodable line.
        dtype = np.int32 if len(data) < 1 << 31 else np.int64
        columns = np.arange(self._WINDOW, dtype=dtype)
        positions = starts.astype(dtype)[:, None] + columns[None, :]
        window = data[np.minimum(positions, dtype(len(data) - 1))]
        in_line = positions < ends.astype(dtype)[:, None]
        tabs = (window == ord("\t")) & in_line
        rows = np.arange(count)
        first_tab = np.argmax(tabs, axis=1)
        remaining = tabs.copy()
        remaining[rows, first_tab] = False
        second_tab = np.argmax(remaining, axis=1)
        if not bool(tabs[rows, first_tab].all()) or not bool(
            remaining[rows, second_tab].all()
        ):
            return None  # a key field leaks past the window: scalar path
        widths = first_tab
        if bool((widths < 1).any()) or int(widths.max()) > 8:
            return None
        # Pack each chromosome name into a big-endian uint64 (Horner on
        # the window columns) and look it up against the known names.
        codes = np.zeros(count, dtype=np.uint64)
        for column in range(int(widths.max())):
            live = column < widths
            codes = np.where(
                live,
                (codes << np.uint64(8)) | window[:, column].astype(np.uint64),
                codes,
            )
        tables = _BED_TABLES or _bed_tables()
        slots = np.searchsorted(tables["codes"], codes)
        slots_clamped = np.minimum(slots, len(tables["codes"]) - 1)
        if bool((tables["codes"][slots_clamped] != codes).any()):
            return None  # unknown chromosome: scalar path raises CodecError
        ranks = tables["ranks"][slots_clamped]
        # Decimal start field between the tabs, again by Horner.
        digit_widths = second_tab - first_tab - 1
        if bool((digit_widths < 1).any()):
            return None
        start_values = np.zeros(count, dtype=np.uint64)
        digits_ok = True
        for offset in range(int(digit_widths.max())):
            live = offset < digit_widths
            digit = window[rows, first_tab + 1 + offset].astype(np.int64) - ord("0")
            digits_ok = digits_ok and bool(
                (~live | ((digit >= 0) & (digit <= 9))).all()
            )
            start_values = np.where(
                live,
                start_values * np.uint64(10) + digit.astype(np.uint64),
                start_values,
            )
        if not digits_ok or bool((start_values >= 2**32).any()):
            return None
        return (ranks << np.uint64(32)) | start_values

    def to_u64(self, key) -> int | None:
        if not isinstance(key, tuple) or len(key) != 2:
            return None
        rank, start = key
        if type(rank) is not int or type(start) is not int:
            return None
        if not (0 <= rank < 2**32 and 0 <= start < 2**32):
            return None
        return rank << 32 | start

    def from_u64(self, value: int) -> tuple[int, int]:
        return (value >> 32, value & 0xFFFFFFFF)


def bed_record_codec() -> LineRecordCodec:
    """Shuffle codec for bedMethyl lines, keyed by genomic position."""
    return LineRecordCodec(key_fn=bed_sort_key, key_spec=BedKeySpec())


def encode_worker(ctx, task: dict) -> t.Generator:
    """Compress one sorted partition with the METHCOMP codec.

    Task fields: ``bucket, key`` (sorted input run), ``out_bucket,
    out_key`` (compressed output).  Returns size metadata used for the
    stage report.  Real records are parsed and really compressed; the
    CPU charge models a native-speed encoder over the logical bytes.
    """
    raw = yield ctx.storage.get(task["bucket"], task["key"])
    records = parse_buffer(raw)
    compressed = compress_records(records)
    throughput = task.get("throughput_bps", ENCODE_THROUGHPUT_BPS)
    yield ctx.compute_bytes(len(raw), throughput)
    yield ctx.storage.put(task["out_bucket"], task["out_key"], compressed)
    return {
        "records": len(records),
        "raw_bytes": len(raw),
        "compressed_bytes": len(compressed),
        "out_key": task["out_key"],
    }


def decode_worker(ctx, task: dict) -> t.Generator:
    """Decompress one METHCOMP block back to bedMethyl text (verification).

    Task fields: ``bucket, key`` (compressed block), ``out_bucket,
    out_key`` (restored text).
    """
    compressed = yield ctx.storage.get(task["bucket"], task["key"])
    records = decompress_records(compressed)
    restored = serialize_records(records)
    throughput = task.get("throughput_bps", DECODE_THROUGHPUT_BPS)
    yield ctx.compute_bytes(len(restored), throughput)
    yield ctx.storage.put(task["out_bucket"], task["out_key"], restored)
    return {
        "records": len(records),
        "restored_bytes": len(restored),
        "out_key": task["out_key"],
    }
