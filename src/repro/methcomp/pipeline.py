"""Worker-side stages of the METHCOMP serverless pipeline.

The pipeline the paper ports to serverless has two stages:

1. **sort** — genomic ordering of the raw bedMethyl file (all-to-all;
   provided by :mod:`repro.shuffle` or by a VM task, depending on the
   configuration under study);
2. **encode** — embarrassingly parallel compression of the sorted
   partitions with the METHCOMP codec.

This module supplies the encode/verify stage functions (sim-aware
executor functions doing *real* compression on real bytes) plus the BED
record codec used by the shuffle.
"""

from __future__ import annotations

import typing as t

from repro.methcomp.bed import bed_sort_key, parse_buffer, serialize_records
from repro.methcomp.codec.methcodec import (
    DECODE_THROUGHPUT_BPS,
    ENCODE_THROUGHPUT_BPS,
    compress_records,
    decompress_records,
)
from repro.shuffle.records import LineRecordCodec


def bed_record_codec() -> LineRecordCodec:
    """Shuffle codec for bedMethyl lines, keyed by genomic position."""
    return LineRecordCodec(key_fn=bed_sort_key)


def encode_worker(ctx, task: dict) -> t.Generator:
    """Compress one sorted partition with the METHCOMP codec.

    Task fields: ``bucket, key`` (sorted input run), ``out_bucket,
    out_key`` (compressed output).  Returns size metadata used for the
    stage report.  Real records are parsed and really compressed; the
    CPU charge models a native-speed encoder over the logical bytes.
    """
    raw = yield ctx.storage.get(task["bucket"], task["key"])
    records = parse_buffer(raw)
    compressed = compress_records(records)
    throughput = task.get("throughput_bps", ENCODE_THROUGHPUT_BPS)
    yield ctx.compute_bytes(len(raw), throughput)
    yield ctx.storage.put(task["out_bucket"], task["out_key"], compressed)
    return {
        "records": len(records),
        "raw_bytes": len(raw),
        "compressed_bytes": len(compressed),
        "out_key": task["out_key"],
    }


def decode_worker(ctx, task: dict) -> t.Generator:
    """Decompress one METHCOMP block back to bedMethyl text (verification).

    Task fields: ``bucket, key`` (compressed block), ``out_bucket,
    out_key`` (restored text).
    """
    compressed = yield ctx.storage.get(task["bucket"], task["key"])
    records = decompress_records(compressed)
    restored = serialize_records(records)
    throughput = task.get("throughput_bps", DECODE_THROUGHPUT_BPS)
    yield ctx.compute_bytes(len(restored), throughput)
    yield ctx.storage.put(task["out_bucket"], task["out_key"], restored)
    return {
        "records": len(records),
        "restored_bytes": len(restored),
        "out_key": task["out_key"],
    }
