"""Synthetic whole-genome bisulfite-sequencing (WGBS) methylome generator.

Substitute for ENCFF988BSW (the paper's 3.5 GB input), which we cannot
download.  The generator reproduces the statistical structure METHCOMP's
compression gain comes from:

* **CpG positions** cluster: long stretches of ~100 bp spacing broken by
  dense CpG islands — so position *deltas* are small and highly skewed;
* **methylation levels** are bimodal: most sites are either heavily
  methylated (~90 %) or nearly unmethylated (~5 %) — so an adaptive
  entropy coder squeezes the ``pct_meth`` column hard;
* **coverage** follows an overdispersed (negative-binomial-like) count
  distribution around a sequencing depth of ~25x.

Records are emitted *shuffled* (deterministically): a raw pipeline input
is not in genomic order, which is exactly why the paper's first stage is
a sort.
"""

from __future__ import annotations

import dataclasses
import random
import typing as t

from repro.methcomp.bed import CHROMOSOMES, MethylationRecord, serialize_records
from repro.shuffle.skew import SkewSpec, skewed_keys

#: Relative chromosome lengths (hg38-proportioned, arbitrary units).
_CHROM_WEIGHTS: dict[str, float] = {
    **{f"chr{i}": 25.0 - i for i in range(1, 23)},
    "chrX": 16.0,
    "chrY": 6.0,
    "chrM": 0.2,
}


@dataclasses.dataclass(slots=True)
class MethylomeProfile:
    """Tunable statistics of the synthetic methylome."""

    #: Mean gap between CpG sites outside islands (bp).
    mean_gap: float = 110.0
    #: Mean gap inside CpG islands (bp).
    island_gap: float = 9.0
    #: Probability that a site starts a CpG island.
    island_start_prob: float = 0.004
    #: Mean number of sites in an island once started.
    island_length: float = 40.0
    #: Probability a site is in the "methylated" mode.
    methylated_fraction: float = 0.72
    #: Beta parameters of the methylated mode (high levels).
    methylated_beta: tuple[float, float] = (12.0, 1.6)
    #: Beta parameters of the unmethylated mode (low levels).
    unmethylated_beta: tuple[float, float] = (1.4, 14.0)
    #: Mean read depth.  Coverage is locally smooth: sequencing reads
    #: span ~150 bp, so neighbouring CpG sites share reads and depth
    #: follows an AR(1) process along the genome rather than being iid.
    coverage_mean: float = 18.0
    #: AR(1) persistence of coverage between neighbouring sites.
    coverage_persistence: float = 0.92
    #: Std-dev of the AR(1) coverage innovation.
    coverage_innovation: float = 1.8
    #: Probability of staying in the current methylation domain per site.
    #: Real methylomes are organised in long domains of consistent
    #: methylation; persistence creates them.
    domain_persistence: float = 0.995
    #: Std-dev of per-site methylation noise around the domain level.
    domain_meth_jitter: float = 3.0
    #: Probability a CpG site is observed on *both* strands.  Bisulfite
    #: sequencing reads the C of a CpG on the + strand and the G's
    #: complement on the - strand one base over, so real bedMethyl files
    #: are dominated by (+ at p, - at p+1) record pairs with correlated
    #: coverage and methylation — structure the codec exploits.
    pair_fraction: float = 0.85
    #: Std-dev of the coverage difference within a strand pair.
    pair_coverage_jitter: float = 1.5
    #: Std-dev of the methylation-percent difference within a pair.
    pair_meth_jitter: float = 2.0


#: Average serialized 11-column bedMethyl line length (bytes).
APPROX_LINE_BYTES = 62


def _clamp_pct(value: float) -> int:
    return min(100, max(0, round(value)))


def estimate_record_count(target_bytes: int) -> int:
    """Roughly how many records serialize to ``target_bytes``."""
    return max(1, target_bytes // APPROX_LINE_BYTES)


class MethylomeGenerator:
    """Deterministic generator of synthetic bedMethyl records."""

    def __init__(self, seed: int = 0, profile: MethylomeProfile | None = None):
        self.profile = profile if profile is not None else MethylomeProfile()
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def records(self, count: int) -> list[MethylationRecord]:
        """Generate ``count`` records in genomic order."""
        profile = self.profile
        rng = self._rng
        weights = [_CHROM_WEIGHTS[chrom] for chrom in CHROMOSOMES]
        total_weight = sum(weights)
        allocations = [
            max(0, round(count * weight / total_weight)) for weight in weights
        ]
        # Fix rounding drift so the total is exact.
        drift = count - sum(allocations)
        allocations[0] += drift

        out: list[MethylationRecord] = []
        for chrom, allocation in zip(CHROMOSOMES, allocations):
            position = rng.randrange(10_000, 50_000)
            island_remaining = 0
            emitted = 0
            coverage_level = profile.coverage_mean
            domain_methylated = rng.random() < profile.methylated_fraction
            domain_level = self._domain_level(rng, domain_methylated)
            while emitted < allocation:
                if island_remaining > 0:
                    island_remaining -= 1
                    gap = 2 + int(rng.expovariate(1.0 / profile.island_gap))
                else:
                    if rng.random() < profile.island_start_prob:
                        island_remaining = 1 + int(
                            rng.expovariate(1.0 / profile.island_length)
                        )
                    gap = 2 + int(rng.expovariate(1.0 / profile.mean_gap))
                position += gap

                # Methylation domains: persist, occasionally switch mode.
                if rng.random() > profile.domain_persistence:
                    domain_methylated = rng.random() < profile.methylated_fraction
                    domain_level = self._domain_level(rng, domain_methylated)
                pct = _clamp_pct(
                    domain_level + rng.gauss(0.0, profile.domain_meth_jitter)
                )

                # Locally smooth coverage (AR(1) around the mean depth).
                coverage_level = (
                    profile.coverage_mean
                    + profile.coverage_persistence
                    * (coverage_level - profile.coverage_mean)
                    + rng.gauss(0.0, profile.coverage_innovation)
                )
                coverage = max(1, round(coverage_level))

                out.append(
                    MethylationRecord(
                        chrom=chrom,
                        start=position,
                        end=position + 2,  # CpG dinucleotide
                        strand="+",
                        coverage=coverage,
                        pct_meth=pct,
                    )
                )
                emitted += 1
                if emitted < allocation and rng.random() < profile.pair_fraction:
                    # Complementary-strand observation of the same CpG.
                    paired_coverage = max(
                        1,
                        coverage
                        + round(rng.gauss(0.0, profile.pair_coverage_jitter)),
                    )
                    paired_pct = _clamp_pct(
                        pct + rng.gauss(0.0, profile.pair_meth_jitter)
                    )
                    out.append(
                        MethylationRecord(
                            chrom=chrom,
                            start=position + 1,
                            end=position + 3,
                            strand="-",
                            coverage=paired_coverage,
                            pct_meth=paired_pct,
                        )
                    )
                    emitted += 1
        return out

    def _domain_level(self, rng: random.Random, methylated: bool) -> float:
        profile = self.profile
        alpha, beta = (
            profile.methylated_beta if methylated else profile.unmethylated_beta
        )
        return 100.0 * rng.betavariate(alpha, beta)

    # ------------------------------------------------------------------
    def shuffled_records(self, count: int) -> list[MethylationRecord]:
        """Generate ``count`` records in scrambled (pipeline-input) order."""
        records = self.records(count)
        self._rng.shuffle(records)
        return records

    def generate_bed(self, count: int, sorted_output: bool = False) -> bytes:
        """Serialized bedMethyl payload of ``count`` records."""
        records = self.records(count) if sorted_output else self.shuffled_records(count)
        return serialize_records(records)

    def generate_bed_bytes(
        self, target_bytes: int, sorted_output: bool = False
    ) -> bytes:
        """Payload of approximately ``target_bytes`` serialized bytes."""
        return self.generate_bed(
            estimate_record_count(target_bytes), sorted_output=sorted_output
        )


def generate_skewed_bed_bytes(
    target_bytes: int,
    seed: int = 0,
    distribution: str = "zipf",
    zipf_s: float = 1.2,
    distinct_keys: int = 64,
    run_length: int = 256,
    late_hot_fraction: float = 0.25,
    late_hot_share: float = 0.8,
) -> bytes:
    """A bedMethyl payload whose *genomic keys* follow a skewed law.

    The uniform :class:`MethylomeGenerator` spreads records across the
    genome in proportion to chromosome length, so range boundaries land
    near-equal sort partitions.  This generator instead draws each
    record's position from one of the skewed key distributions in
    :mod:`repro.shuffle.skew` (``zipf`` popularity over a few hot loci,
    ``heavy-dup`` duplicate sites, ``sorted-runs`` partially ordered
    input, or ``uniform`` as the control) and maps the integer key
    *monotonically* onto ``(chromosome, position)`` — so key-space skew
    becomes genomic-range skew, exactly what the sort's samplers,
    planners and the fleet's shard routing must survive.

    Records stay valid bedMethyl (the full sort → encode → verify
    pipeline runs unchanged); only where the records *sit* changes.
    Emission order is shuffled except for ``sorted-runs`` (whose runs
    are the point) and ``late-hot`` (whose hot key must stay in the
    stream's tail).
    """
    count = estimate_record_count(target_bytes)
    spec = SkewSpec(
        distribution=distribution,
        zipf_s=zipf_s,
        distinct_keys=distinct_keys,
        run_length=run_length,
        late_hot_fraction=late_hot_fraction,
        late_hot_share=late_hot_share,
    )
    rng = random.Random(seed)
    keys = skewed_keys(count, spec, rng)
    # Monotone key → (chromosome, position) map: chromosome rank is the
    # key's high bits, the position its low bits (scaled into a
    # realistic coordinate range), so integer-key order equals
    # bed_sort_key order and the skew survives the mapping.
    per_chrom = max(1, spec.key_space // len(CHROMOSOMES))
    records = []
    for key in keys:
        chrom_rank = min(len(CHROMOSOMES) - 1, key // per_chrom)
        offset = key - chrom_rank * per_chrom
        position = 10_000 + (offset * 200_000_000) // per_chrom
        records.append(
            MethylationRecord(
                chrom=CHROMOSOMES[chrom_rank],
                start=position,
                end=position + 2,
                strand="+",
                coverage=max(1, round(rng.gauss(18.0, 4.0))),
                pct_meth=_clamp_pct(rng.gauss(72.0, 20.0)),
            )
        )
    if distribution not in ("sorted-runs", "late-hot"):
        rng.shuffle(records)
    return serialize_records(records)


def upload_dataset(
    cloud,
    bucket: str,
    key: str,
    real_bytes: int,
    seed: int = 0,
    profile: MethylomeProfile | None = None,
    sorted_output: bool = False,
) -> t.Generator:
    """Simulation process: generate and PUT a dataset; returns metadata.

    ``real_bytes`` is the *real* payload size; with a scaled cloud
    profile the logical size seen by the performance model is
    ``real_bytes * logical_scale``.
    """
    generator = MethylomeGenerator(seed=seed, profile=profile)
    payload = generator.generate_bed_bytes(real_bytes, sorted_output=sorted_output)
    cloud.store.ensure_bucket(bucket)
    meta = yield cloud.store.put(bucket, key, payload)
    return meta
