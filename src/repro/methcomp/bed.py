"""WGBS methylation records in ENCODE bedMethyl format.

The paper's workload is ENCFF988BSW, a whole-genome bisulfite sequencing
(WGBS) methylation annotation in BED format.  A bedMethyl line has the
eleven tab-separated columns of the UCSC/ENCODE convention::

    chrom  start  end  name  score  strand  thickStart  thickEnd
    itemRgb  coverage  pct_meth

Columns 4 and 7-9 are *derived*: ``name`` is always ``"."``,
``thickStart``/``thickEnd`` repeat the interval, ``itemRgb`` encodes the
methylation bucket, and ``score`` is coverage capped at 1000.  A
format-aware compressor (METHCOMP) stores them in zero bits — a generic
one (gzip) cannot, which is a large part of METHCOMP's advantage.

We keep the canonical serialization in one place so the codec can be
exactly lossless at record level: ``parse_line(serialize(record)) ==
record`` and vice versa.
"""

from __future__ import annotations

import dataclasses

from repro.errors import CodecError

#: Chromosomes in genomic sort order (hg38 primary assembly).
CHROMOSOMES: tuple[str, ...] = tuple(
    [f"chr{i}" for i in range(1, 23)] + ["chrX", "chrY", "chrM"]
)

#: chrom name → rank used by the genomic sort key.
CHROM_RANK: dict[str, int] = {name: rank for rank, name in enumerate(CHROMOSOMES)}

#: itemRgb colors used by ENCODE tracks: green = methylated, red = not.
COLOR_METHYLATED = "0,255,0"
COLOR_UNMETHYLATED = "255,0,0"


@dataclasses.dataclass(frozen=True, slots=True)
class MethylationRecord:
    """One CpG site measurement."""

    chrom: str
    start: int
    end: int
    strand: str  # "+" or "-"
    coverage: int  # number of reads covering the site
    pct_meth: int  # methylation percentage, 0..100

    def __post_init__(self):
        if self.chrom not in CHROM_RANK:
            raise CodecError(f"unknown chromosome: {self.chrom!r}")
        if self.start < 0 or self.end < self.start:
            raise CodecError(f"bad interval: [{self.start}, {self.end})")
        if self.strand not in ("+", "-"):
            raise CodecError(f"bad strand: {self.strand!r}")
        if self.coverage < 0:
            raise CodecError(f"bad coverage: {self.coverage}")
        if not 0 <= self.pct_meth <= 100:
            raise CodecError(f"bad methylation percent: {self.pct_meth}")

    @property
    def score(self) -> int:
        """BED score column: coverage capped at 1000 (ENCODE convention)."""
        return min(1000, self.coverage)

    @property
    def color(self) -> str:
        """Track color derived from methylation level."""
        return COLOR_METHYLATED if self.pct_meth >= 50 else COLOR_UNMETHYLATED

    def sort_key(self) -> tuple[int, int]:
        """Genomic order: chromosome rank, then start position."""
        return (CHROM_RANK[self.chrom], self.start)


def serialize_record(record: MethylationRecord) -> bytes:
    """Canonical 11-column bedMethyl line (without trailing newline)."""
    return (
        f"{record.chrom}\t{record.start}\t{record.end}\t.\t{record.score}\t"
        f"{record.strand}\t{record.start}\t{record.end}\t{record.color}\t"
        f"{record.coverage}\t{record.pct_meth}"
    ).encode("ascii")


def parse_line(line: bytes) -> MethylationRecord:
    """Parse one bedMethyl line, validating the derived columns."""
    fields = line.rstrip(b"\n").split(b"\t")
    if len(fields) != 11:
        raise CodecError(
            f"bedMethyl line must have 11 columns, got {len(fields)}: {line!r}"
        )
    try:
        record = MethylationRecord(
            chrom=fields[0].decode("ascii"),
            start=int(fields[1]),
            end=int(fields[2]),
            strand=fields[5].decode("ascii"),
            coverage=int(fields[9]),
            pct_meth=int(fields[10]),
        )
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"malformed bedMethyl line: {line!r}") from exc
    if fields[3] != b".":
        raise CodecError(f"unsupported name column: {fields[3]!r}")
    if int(fields[4]) != record.score:
        raise CodecError("score column does not match capped coverage")
    if int(fields[6]) != record.start or int(fields[7]) != record.end:
        raise CodecError("thickStart/thickEnd do not repeat the interval")
    if fields[8].decode("ascii") != record.color:
        raise CodecError("itemRgb does not match the methylation bucket")
    return record


def bed_sort_key(line: bytes) -> tuple[int, int]:
    """Fast genomic sort key straight from a serialized line.

    Used as the shuffle codec's key function: avoids building a full
    record object per comparison.  Must stay consistent with
    :meth:`MethylationRecord.sort_key`.
    """
    chrom_end = line.find(b"\t")
    start_end = line.find(b"\t", chrom_end + 1)
    chrom = line[:chrom_end].decode("ascii")
    rank = CHROM_RANK.get(chrom)
    if rank is None:
        raise CodecError(f"unknown chromosome in line: {line!r}")
    return (rank, int(line[chrom_end + 1 : start_end]))


def parse_buffer(buffer: bytes) -> list[MethylationRecord]:
    """Parse a newline-terminated buffer of bedMethyl lines."""
    if not buffer:
        return []
    return [parse_line(line) for line in buffer.split(b"\n") if line]


def serialize_records(records: list[MethylationRecord]) -> bytes:
    """Serialize records as newline-terminated bedMethyl lines."""
    return b"".join(serialize_record(record) + b"\n" for record in records)


def is_sorted(records: list[MethylationRecord]) -> bool:
    """Whether records are in genomic order."""
    return all(
        a.sort_key() <= b.sort_key() for a, b in zip(records, records[1:])
    )
