"""File-level CLI for the METHCOMP codec.

The reproduction's codec works on real files, not just inside the
simulation::

    python -m repro.methcomp compress input.bed output.mcmp
    python -m repro.methcomp decompress output.mcmp restored.bed
    python -m repro.methcomp generate --records 100000 sample.bed
    python -m repro.methcomp ratio input.bed

``compress`` requires genomic-sorted input (sort first — the exact
pipeline dependency the paper studies); ``generate`` can emit sorted or
shuffled data.
"""

from __future__ import annotations

import argparse
import sys

from repro.methcomp.bed import bed_sort_key
from repro.methcomp.codec.gzipref import gzip_ratio
from repro.methcomp.codec.methcodec import compress, decompress, compression_ratio
from repro.methcomp.datagen import MethylomeGenerator


def _read(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _write(path: str, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.methcomp",
        description="METHCOMP-style compression for bedMethyl files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress_parser = sub.add_parser("compress", help="compress a sorted BED file")
    compress_parser.add_argument("input")
    compress_parser.add_argument("output")

    decompress_parser = sub.add_parser("decompress", help="restore a BED file")
    decompress_parser.add_argument("input")
    decompress_parser.add_argument("output")

    sort_parser = sub.add_parser("sort", help="genomic-sort a BED file")
    sort_parser.add_argument("input")
    sort_parser.add_argument("output")

    generate_parser = sub.add_parser("generate", help="synthesize a methylome")
    generate_parser.add_argument("output")
    generate_parser.add_argument("--records", type=int, default=100_000)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument(
        "--sorted", action="store_true", help="emit in genomic order"
    )

    ratio_parser = sub.add_parser("ratio", help="report METHCOMP vs gzip ratio")
    ratio_parser.add_argument("input")

    args = parser.parse_args(argv)

    if args.command == "compress":
        raw = _read(args.input)
        compressed = compress(raw)
        _write(args.output, compressed)
        print(
            f"{len(raw):,} B -> {len(compressed):,} B "
            f"({len(raw) / max(1, len(compressed)):.1f}x)"
        )
    elif args.command == "decompress":
        _write(args.output, decompress(_read(args.input)))
        print(f"restored {args.output}")
    elif args.command == "sort":
        lines = _read(args.input).split(b"\n")
        lines = [line for line in lines if line]
        lines.sort(key=bed_sort_key)
        _write(args.output, b"".join(line + b"\n" for line in lines))
        print(f"sorted {len(lines):,} records")
    elif args.command == "generate":
        generator = MethylomeGenerator(seed=args.seed)
        payload = generator.generate_bed(args.records, sorted_output=args.sorted)
        _write(args.output, payload)
        print(f"generated {args.records:,} records ({len(payload):,} B)")
    elif args.command == "ratio":
        raw = _read(args.input)
        ours = compression_ratio(raw)
        gz = gzip_ratio(raw)
        print(f"methcomp: {ours:.1f}x  gzip: {gz:.1f}x  advantage: {ours / gz:.1f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
