"""METHCOMP genomics workload: BED data, synthetic methylomes, codec."""

from repro.methcomp.bed import (
    CHROM_RANK,
    CHROMOSOMES,
    MethylationRecord,
    bed_sort_key,
    is_sorted,
    parse_buffer,
    parse_line,
    serialize_record,
    serialize_records,
)
from repro.methcomp.datagen import (
    APPROX_LINE_BYTES,
    MethylomeGenerator,
    MethylomeProfile,
    estimate_record_count,
    upload_dataset,
)
from repro.methcomp.pipeline import bed_record_codec, decode_worker, encode_worker

__all__ = [
    "APPROX_LINE_BYTES",
    "CHROMOSOMES",
    "CHROM_RANK",
    "MethylationRecord",
    "MethylomeGenerator",
    "MethylomeProfile",
    "bed_record_codec",
    "bed_sort_key",
    "decode_worker",
    "encode_worker",
    "estimate_record_count",
    "is_sorted",
    "parse_buffer",
    "parse_line",
    "serialize_record",
    "serialize_records",
    "upload_dataset",
]
