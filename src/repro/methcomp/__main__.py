"""``python -m repro.methcomp`` entry point."""

import sys

from repro.methcomp.cli import main

sys.exit(main())
