"""Adaptive Golomb-Rice coding (LOCO-I / JPEG-LS style).

Rice codes are optimal for geometrically distributed non-negative
integers — exactly the shape of CpG position deltas and read-coverage
values.  The adaptive variant tracks the running mean per *context* and
derives the Rice parameter ``k`` from it, so encoder and decoder stay in
lockstep without signalling ``k`` explicitly.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.methcomp.codec.bitio import BitReader, BitWriter

#: Unary quotients longer than this escape to a fixed-width raw code.
_ESCAPE_QUOTIENT = 24
#: Raw escape width (bits) — covers any value the pipeline produces.
_ESCAPE_BITS = 40
#: Halve the adaptation counters at this many samples (forgetting).
_RESET_THRESHOLD = 256


class RiceContext:
    """Adaptive state for one coding context."""

    __slots__ = ("accumulated", "count")

    def __init__(self, initial_mean: float = 4.0):
        self.accumulated = max(1, int(initial_mean))
        self.count = 1

    def parameter(self) -> int:
        """Current Rice parameter: smallest k with count·2^k ≥ accumulated."""
        k = 0
        while (self.count << k) < self.accumulated and k < 32:
            k += 1
        return k

    def update(self, value: int) -> None:
        self.accumulated += value
        self.count += 1
        if self.count >= _RESET_THRESHOLD:
            self.accumulated >>= 1
            self.count >>= 1


def rice_encode(writer: BitWriter, value: int, context: RiceContext) -> None:
    """Encode one non-negative integer under ``context``."""
    if value < 0:
        raise CodecError(f"Rice coder requires non-negative values, got {value}")
    k = context.parameter()
    quotient = value >> k
    if quotient < _ESCAPE_QUOTIENT:
        writer.write_unary(quotient)
        writer.write_bits(value & ((1 << k) - 1), k)
    else:
        if value >= (1 << _ESCAPE_BITS):
            raise CodecError(f"value {value} exceeds escape width")
        writer.write_unary(_ESCAPE_QUOTIENT)
        writer.write_bits(value, _ESCAPE_BITS)
    context.update(value)


def rice_decode(reader: BitReader, context: RiceContext) -> int:
    """Decode one integer under ``context`` (mirror of :func:`rice_encode`)."""
    k = context.parameter()
    quotient = reader.read_unary(limit=_ESCAPE_QUOTIENT + 1)
    if quotient < _ESCAPE_QUOTIENT:
        value = (quotient << k) | reader.read_bits(k)
    else:
        value = reader.read_bits(_ESCAPE_BITS)
    context.update(value)
    return value


def rice_encode_block(values: list[int], initial_mean: float = 4.0) -> bytes:
    """Encode a list of integers with one adaptive context."""
    writer = BitWriter()
    context = RiceContext(initial_mean)
    for value in values:
        rice_encode(writer, value, context)
    return writer.getvalue()


def rice_decode_block(data: bytes, count: int, initial_mean: float = 4.0) -> list[int]:
    """Decode ``count`` integers encoded by :func:`rice_encode_block`."""
    reader = BitReader(data)
    context = RiceContext(initial_mean)
    return [rice_decode(reader, context) for _ in range(count)]
