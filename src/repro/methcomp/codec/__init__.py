"""METHCOMP-style compression codec and its baselines."""

from repro.methcomp.codec.arith import (
    FrequencyTable,
    arithmetic_decode,
    arithmetic_encode,
)
from repro.methcomp.codec.bitio import (
    BitReader,
    BitWriter,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)
from repro.methcomp.codec.gzipref import gzip_compress, gzip_decompress, gzip_ratio
from repro.methcomp.codec.methcodec import (
    DECODE_THROUGHPUT_BPS,
    DEFAULT_BLOCK_RECORDS,
    ENCODE_THROUGHPUT_BPS,
    compress,
    compress_records,
    compression_ratio,
    decode_block,
    decompress,
    decompress_records,
    encode_block,
)
from repro.methcomp.codec.rice import (
    RiceContext,
    rice_decode,
    rice_decode_block,
    rice_encode,
    rice_encode_block,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "DECODE_THROUGHPUT_BPS",
    "DEFAULT_BLOCK_RECORDS",
    "ENCODE_THROUGHPUT_BPS",
    "FrequencyTable",
    "RiceContext",
    "arithmetic_decode",
    "arithmetic_encode",
    "compress",
    "compress_records",
    "compression_ratio",
    "decode_block",
    "decompress",
    "decompress_records",
    "encode_block",
    "gzip_compress",
    "gzip_decompress",
    "gzip_ratio",
    "read_varint",
    "rice_decode",
    "rice_decode_block",
    "rice_encode",
    "rice_encode_block",
    "write_varint",
    "zigzag_decode",
    "zigzag_encode",
]
