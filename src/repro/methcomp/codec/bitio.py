"""Bit-level and varint I/O used by the METHCOMP codec."""

from __future__ import annotations

from repro.errors import CodecError


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._out.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, most significant first."""
        if count < 0:
            raise CodecError(f"negative bit count: {count}")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, quotient: int) -> None:
        """``quotient`` one-bits followed by a terminating zero."""
        for _ in range(quotient):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        """Flush (zero-padded to a byte boundary) and return the bytes."""
        out = bytearray(self._out)
        if self._nbits:
            out.append(self._acc << (8 - self._nbits))
        return bytes(out)

    @property
    def bit_length(self) -> int:
        return len(self._out) * 8 + self._nbits


class BitReader:
    """MSB-first bit reader over a bytes object."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # bit position

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise CodecError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self, limit: int = 1 << 20) -> int:
        """Count one-bits until the terminating zero."""
        count = 0
        while self.read_bit():
            count += 1
            if count > limit:
                raise CodecError("runaway unary code (corrupt stream?)")
        return count


def write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise CodecError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long (corrupt stream?)")


def zigzag_encode(value: int) -> int:
    """Map signed to unsigned: 0,-1,1,-2,2 → 0,1,2,3,4."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)
