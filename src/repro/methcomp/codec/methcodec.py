"""The METHCOMP-style methylation codec.

A lossless, column-wise, context-modelled compressor for *sorted*
bedMethyl data — a reimplementation in the spirit of METHCOMP (Peng,
Milenkovic, Ochoa 2018), the compression method the paper's pipeline
ports to serverless.

Column treatment (per block):

===========  ========================================================
chrom        run-length encoded (sorted data → one run per chromosome)
start        per-run absolute start + adaptive three-context Golomb-
             Rice deltas.  Contexts: *after-pair* (previous delta was
             1 — the paired +/- strand records of real WGBS data),
             *island* (previous gap small — inside a CpG island) and
             *open sea* (everything else)
end          width RLE (CpG records are almost always width 2)
strand       predicted from pairing ("-" at paired sites); only the
             mismatch indices are stored, delta-coded
coverage     chained zig-zag differences under two Rice contexts
             (paired vs unpaired) — read depth is locally smooth, so
             differences are near zero
pct_meth     paired sites: zig-zagged Rice difference; unpaired sites:
             static arithmetic coding of the zig-zagged difference with
             a per-block frequency table (methylation domains make
             successive levels strongly correlated)
name/score/  derived columns (".", min(1000, coverage), color from
color        pct_meth) — zero bits, exactly as a format-aware coder can
===========  ========================================================

The sort-first requirement is structural: deltas must be non-negative,
which is precisely why the pipeline's first stage is the all-to-all
sort this paper studies.
"""

from __future__ import annotations

import typing as t

from repro.errors import CodecError
from repro.methcomp.bed import (
    MethylationRecord,
    CHROMOSOMES,
    parse_buffer,
    serialize_records,
)
from repro.methcomp.codec.arith import (
    FrequencyTable,
    arithmetic_decode,
    arithmetic_encode,
)
from repro.methcomp.codec.bitio import (
    BitReader,
    BitWriter,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)
from repro.methcomp.codec.rice import RiceContext, rice_decode, rice_encode

_MAGIC = b"MC01"
#: Records per block; bounds arithmetic-table totals and memory.
DEFAULT_BLOCK_RECORDS = 1 << 17

#: Gaps at or below this are "island" context for the delta coder.
_ISLAND_GAP = 16
#: Baseline predictors at chromosome-run starts (both sides use them).
_BASELINE_COVERAGE = 16
_BASELINE_PCT = 50
#: Alphabet of zig-zagged pct differences: |diff| <= 100 → 0..200.
_PCT_DIFF_ALPHABET = 201


def _delta_context(
    previous_delta: int | None, after_pair: RiceContext, island: RiceContext,
    open_sea: RiceContext,
) -> RiceContext:
    """Start-delta coding context from the previous delta (or run start)."""
    if previous_delta is None:
        return open_sea
    if previous_delta == 1:
        return after_pair
    if previous_delta <= _ISLAND_GAP:
        return island
    return open_sea


# ----------------------------------------------------------------------
# block encoding
# ----------------------------------------------------------------------
def encode_block(records: list[MethylationRecord]) -> bytes:
    """Encode one block of genomic-sorted records."""
    out = bytearray(_MAGIC)
    write_varint(out, len(records))
    if not records:
        return bytes(out)

    # -- chromosome runs + per-record deltas -------------------------------
    runs: list[tuple[int, int]] = []  # (chrom_rank, count)
    run_starts: list[int] = []  # absolute start per run
    deltas: list[int | None] = []  # None at run starts
    previous: MethylationRecord | None = None
    for record in records:
        rank = record.sort_key()[0]
        if runs and runs[-1][0] == rank:
            delta = record.start - previous.start  # type: ignore[union-attr]
            if delta < 0:
                raise CodecError(
                    "records are not genomic-sorted (negative start delta); "
                    "run the sort stage first"
                )
            runs[-1] = (rank, runs[-1][1] + 1)
            deltas.append(delta)
        else:
            if runs and rank < runs[-1][0]:
                raise CodecError(
                    "records are not genomic-sorted (chromosome order)"
                )
            runs.append((rank, 1))
            run_starts.append(record.start)
            deltas.append(None)
        previous = record

    chrom_section = bytearray()
    write_varint(chrom_section, len(runs))
    for rank, count in runs:
        write_varint(chrom_section, rank)
        write_varint(chrom_section, count)

    first_section = bytearray()
    for start in run_starts:
        write_varint(first_section, start)

    # -- start deltas (three-context adaptive Rice) --------------------------
    delta_writer = BitWriter()
    ctx_after_pair = RiceContext(initial_mean=64.0)
    ctx_island = RiceContext(initial_mean=8.0)
    ctx_open = RiceContext(initial_mean=64.0)
    previous_delta: int | None = None
    for delta in deltas:
        if delta is None:
            previous_delta = None
            continue
        context = _delta_context(previous_delta, ctx_after_pair, ctx_island, ctx_open)
        rice_encode(delta_writer, delta, context)
        previous_delta = delta

    # -- paired-site mask shared by coverage and pct -----------------------
    paired = [delta == 1 for delta in deltas]

    # -- widths (RLE) -------------------------------------------------------
    width_section = bytearray()
    width_runs: list[tuple[int, int]] = []
    for record in records:
        width = record.end - record.start
        if width_runs and width_runs[-1][0] == width:
            width_runs[-1] = (width, width_runs[-1][1] + 1)
        else:
            width_runs.append((width, 1))
    write_varint(width_section, len(width_runs))
    for width, count in width_runs:
        write_varint(width_section, width)
        write_varint(width_section, count)

    # -- strands (prediction + exception list) --------------------------------
    # Predicted strand: "-" at paired sites (the complementary-strand
    # record of a CpG), "+" everywhere else.  Only mismatches are stored,
    # as delta-coded indices — near zero bits on WGBS-shaped data.
    strand_section = bytearray()
    exceptions = [
        index
        for index, record in enumerate(records)
        if (record.strand == "-") != paired[index]
    ]
    write_varint(strand_section, len(exceptions))
    previous_index = 0
    for index in exceptions:
        write_varint(strand_section, index - previous_index)
        previous_index = index

    # -- coverage (chained differences, two contexts) --------------------------
    coverage_writer = BitWriter()
    ctx_cov_pair = RiceContext(initial_mean=4.0)
    ctx_cov_chain = RiceContext(initial_mean=6.0)
    previous_coverage = _BASELINE_COVERAGE
    run_lengths = iter(length for _rank, length in runs)
    remaining_in_run = 0
    for index, record in enumerate(records):
        if remaining_in_run == 0:
            remaining_in_run = next(run_lengths)
            previous_coverage = _BASELINE_COVERAGE
        diff = record.coverage - previous_coverage
        context = ctx_cov_pair if paired[index] else ctx_cov_chain
        rice_encode(coverage_writer, zigzag_encode(diff), context)
        previous_coverage = record.coverage
        remaining_in_run -= 1

    # -- methylation percentage -------------------------------------------------
    pct_diff_writer = BitWriter()
    ctx_pct_pair = RiceContext(initial_mean=4.0)
    arith_symbols: list[int] = []
    previous_pct = _BASELINE_PCT
    run_lengths = iter(length for _rank, length in runs)
    remaining_in_run = 0
    for index, record in enumerate(records):
        if remaining_in_run == 0:
            remaining_in_run = next(run_lengths)
            previous_pct = _BASELINE_PCT
        diff = record.pct_meth - previous_pct
        if paired[index]:
            rice_encode(pct_diff_writer, zigzag_encode(diff), ctx_pct_pair)
        else:
            arith_symbols.append(zigzag_encode(diff))
        previous_pct = record.pct_meth
        remaining_in_run -= 1
    if arith_symbols:
        table = FrequencyTable.from_symbols(arith_symbols, _PCT_DIFF_ALPHABET)
        table_section = table.serialize()
        arith_section = arithmetic_encode(arith_symbols, table)
    else:
        table_section = b""
        arith_section = b""

    for section in (
        bytes(chrom_section),
        bytes(first_section),
        delta_writer.getvalue(),
        bytes(width_section),
        bytes(strand_section),
        coverage_writer.getvalue(),
        table_section,
        arith_section,
        pct_diff_writer.getvalue(),
    ):
        write_varint(out, len(section))
        out.extend(section)
    return bytes(out)


def decode_block(data: bytes) -> list[MethylationRecord]:
    """Decode one block (exact inverse of :func:`encode_block`)."""
    if data[:4] != _MAGIC:
        raise CodecError("bad magic: not a METHCOMP block")
    count, offset = read_varint(data, 4)
    if count == 0:
        return []
    sections = []
    for _ in range(9):
        length, offset = read_varint(data, offset)
        sections.append(data[offset : offset + length])
        if offset + length > len(data):
            raise CodecError("truncated block")
        offset += length
    (
        chrom_section,
        first_section,
        delta_section,
        width_section,
        strand_section,
        coverage_section,
        table_section,
        arith_section,
        pct_diff_section,
    ) = sections

    # -- chromosome runs -----------------------------------------------------
    run_count, pos = read_varint(chrom_section, 0)
    runs: list[tuple[int, int]] = []
    for _ in range(run_count):
        rank, pos = read_varint(chrom_section, pos)
        length, pos = read_varint(chrom_section, pos)
        if rank >= len(CHROMOSOMES):
            raise CodecError(f"bad chromosome rank {rank}")
        runs.append((rank, length))
    if sum(length for _rank, length in runs) != count:
        raise CodecError("chromosome runs do not cover the record count")

    run_starts = []
    pos = 0
    for _ in range(run_count):
        start, pos = read_varint(first_section, pos)
        run_starts.append(start)

    # -- starts --------------------------------------------------------------
    delta_reader = BitReader(delta_section)
    ctx_after_pair = RiceContext(initial_mean=64.0)
    ctx_island = RiceContext(initial_mean=8.0)
    ctx_open = RiceContext(initial_mean=64.0)
    starts: list[int] = []
    paired: list[bool] = []
    for run_index, (_rank, length) in enumerate(runs):
        position = run_starts[run_index]
        starts.append(position)
        paired.append(False)
        previous_delta: int | None = None
        for _ in range(length - 1):
            context = _delta_context(
                previous_delta, ctx_after_pair, ctx_island, ctx_open
            )
            delta = rice_decode(delta_reader, context)
            position += delta
            starts.append(position)
            paired.append(delta == 1)
            previous_delta = delta

    # -- widths ----------------------------------------------------------------
    width_run_count, pos = read_varint(width_section, 0)
    widths: list[int] = []
    for _ in range(width_run_count):
        width, pos = read_varint(width_section, pos)
        length, pos = read_varint(width_section, pos)
        widths.extend([width] * length)
    if len(widths) != count:
        raise CodecError("width runs do not cover the record count")

    # -- strands ----------------------------------------------------------------
    exception_count, pos = read_varint(strand_section, 0)
    exception_indices = set()
    cursor_index = 0
    for _ in range(exception_count):
        gap, pos = read_varint(strand_section, pos)
        cursor_index += gap
        exception_indices.add(cursor_index)
    strands = [
        ("-" if (paired[index] != (index in exception_indices)) else "+")
        for index in range(count)
    ]

    # -- run-boundary bookkeeping shared by coverage and pct -------------------
    run_boundaries = set()
    cursor = 0
    for _rank, length in runs:
        run_boundaries.add(cursor)
        cursor += length

    # -- coverage ----------------------------------------------------------------
    coverage_reader = BitReader(coverage_section)
    ctx_cov_pair = RiceContext(initial_mean=4.0)
    ctx_cov_chain = RiceContext(initial_mean=6.0)
    coverages: list[int] = []
    previous_coverage = _BASELINE_COVERAGE
    for index in range(count):
        if index in run_boundaries:
            previous_coverage = _BASELINE_COVERAGE
        context = ctx_cov_pair if paired[index] else ctx_cov_chain
        diff = zigzag_decode(rice_decode(coverage_reader, context))
        previous_coverage += diff
        coverages.append(previous_coverage)

    # -- pct ------------------------------------------------------------------------
    unpaired_count = sum(1 for flag in paired if not flag)
    if unpaired_count:
        table, _pos = FrequencyTable.deserialize(table_section, 0)
        arith_values = arithmetic_decode(arith_section, unpaired_count, table)
    else:
        arith_values = []
    pct_reader = BitReader(pct_diff_section)
    ctx_pct_pair = RiceContext(initial_mean=4.0)
    pcts: list[int] = []
    previous_pct = _BASELINE_PCT
    arith_cursor = 0
    for index in range(count):
        if index in run_boundaries:
            previous_pct = _BASELINE_PCT
        if paired[index]:
            diff = zigzag_decode(rice_decode(pct_reader, ctx_pct_pair))
        else:
            diff = zigzag_decode(arith_values[arith_cursor])
            arith_cursor += 1
        previous_pct += diff
        pcts.append(previous_pct)

    # -- assemble ----------------------------------------------------------------------
    records: list[MethylationRecord] = []
    cursor = 0
    for rank, length in runs:
        chrom = CHROMOSOMES[rank]
        for _ in range(length):
            records.append(
                MethylationRecord(
                    chrom=chrom,
                    start=starts[cursor],
                    end=starts[cursor] + widths[cursor],
                    strand=strands[cursor],
                    coverage=coverages[cursor],
                    pct_meth=pcts[cursor],
                )
            )
            cursor += 1
    return records


# ----------------------------------------------------------------------
# container (multi-block) API
# ----------------------------------------------------------------------
def compress_records(
    records: list[MethylationRecord],
    block_records: int = DEFAULT_BLOCK_RECORDS,
) -> bytes:
    """Compress sorted records into a multi-block container."""
    if block_records < 1:
        raise CodecError(f"block_records must be >= 1, got {block_records}")
    blocks = [
        encode_block(records[start : start + block_records])
        for start in range(0, max(1, len(records)), block_records)
    ]
    out = bytearray()
    write_varint(out, len(blocks))
    for block in blocks:
        write_varint(out, len(block))
        out.extend(block)
    return bytes(out)


def decompress_records(data: bytes) -> list[MethylationRecord]:
    """Inverse of :func:`compress_records`."""
    block_count, offset = read_varint(data, 0)
    records: list[MethylationRecord] = []
    for _ in range(block_count):
        length, offset = read_varint(data, offset)
        records.extend(decode_block(data[offset : offset + length]))
        offset += length
    return records


def compress(buffer: bytes, block_records: int = DEFAULT_BLOCK_RECORDS) -> bytes:
    """Compress a sorted bedMethyl text buffer."""
    return compress_records(parse_buffer(buffer), block_records)


def decompress(data: bytes) -> bytes:
    """Decompress back to the canonical bedMethyl text form."""
    return serialize_records(decompress_records(data))


def compression_ratio(buffer: bytes, block_records: int = DEFAULT_BLOCK_RECORDS) -> float:
    """Raw-to-compressed size ratio on ``buffer``."""
    compressed = compress(buffer, block_records)
    if not compressed:
        raise CodecError("empty compressed output")
    return len(buffer) / len(compressed)


#: Full-core throughput estimates (bytes/s of input text) used by the
#: simulation cost models; measured on CPython for this implementation
#: and scaled to the paper's C++-grade tooling.
ENCODE_THROUGHPUT_BPS = 35e6
DECODE_THROUGHPUT_BPS = 50e6

T = t.TypeVar("T")
