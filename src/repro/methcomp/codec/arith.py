"""Static arithmetic coding over a small alphabet (CACM-87 style).

Used for the methylation-percentage column: levels are heavily bimodal,
so a per-block frequency table plus an arithmetic coder gets close to
the empirical entropy.  The table travels in the block header, keeping
encoder and decoder trivially consistent.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.methcomp.codec.bitio import BitReader, BitWriter, read_varint, write_varint

_PRECISION = 32
_FULL = (1 << _PRECISION) - 1
_HALF = 1 << (_PRECISION - 1)
_QUARTER = 1 << (_PRECISION - 2)
_THREE_QUARTERS = _HALF + _QUARTER
#: Total frequency must stay well below the quarter range.
_MAX_TOTAL = 1 << (_PRECISION - 4)


class FrequencyTable:
    """Static symbol frequencies with cumulative lookup."""

    def __init__(self, counts: list[int]):
        if not counts or all(count == 0 for count in counts):
            raise CodecError("frequency table needs at least one nonzero count")
        if any(count < 0 for count in counts):
            raise CodecError("negative symbol count")
        self.counts = list(counts)
        self.cumulative = [0]
        for count in self.counts:
            self.cumulative.append(self.cumulative[-1] + count)
        self.total = self.cumulative[-1]
        if self.total > _MAX_TOTAL:
            raise CodecError(
                f"total frequency {self.total} exceeds coder precision; "
                "split the block"
            )

    @classmethod
    def from_symbols(cls, symbols: list[int], alphabet_size: int) -> "FrequencyTable":
        counts = [0] * alphabet_size
        for symbol in symbols:
            counts[symbol] += 1
        return cls(counts)

    def range_of(self, symbol: int) -> tuple[int, int]:
        low, high = self.cumulative[symbol], self.cumulative[symbol + 1]
        if low == high:
            raise CodecError(f"symbol {symbol} has zero frequency")
        return low, high

    def symbol_at(self, scaled: int) -> int:
        """Binary search: which symbol owns cumulative position ``scaled``."""
        low, high = 0, len(self.counts)
        while low + 1 < high:
            mid = (low + high) // 2
            if self.cumulative[mid] <= scaled:
                low = mid
            else:
                high = mid
        return low

    def serialize(self) -> bytes:
        out = bytearray()
        write_varint(out, len(self.counts))
        for count in self.counts:
            write_varint(out, count)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes, offset: int) -> tuple["FrequencyTable", int]:
        size, offset = read_varint(data, offset)
        counts = []
        for _ in range(size):
            count, offset = read_varint(data, offset)
            counts.append(count)
        return cls(counts), offset


def arithmetic_encode(symbols: list[int], table: FrequencyTable) -> bytes:
    """Encode ``symbols`` under the static ``table``."""
    writer = BitWriter()
    low, high = 0, _FULL
    pending = 0

    def emit(bit: int) -> None:
        nonlocal pending
        writer.write_bit(bit)
        for _ in range(pending):
            writer.write_bit(1 - bit)
        pending = 0

    for symbol in symbols:
        cum_low, cum_high = table.range_of(symbol)
        span = high - low + 1
        high = low + (span * cum_high) // table.total - 1
        low = low + (span * cum_low) // table.total
        while True:
            if high < _HALF:
                emit(0)
            elif low >= _HALF:
                emit(1)
                low -= _HALF
                high -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                pending += 1
                low -= _QUARTER
                high -= _QUARTER
            else:
                break
            low = low * 2
            high = high * 2 + 1
    # Flush: disambiguate the final interval.
    pending += 1
    emit(0 if low < _QUARTER else 1)
    return writer.getvalue()


def arithmetic_decode(data: bytes, count: int, table: FrequencyTable) -> list[int]:
    """Decode ``count`` symbols (mirror of :func:`arithmetic_encode`)."""
    reader = BitReader(data)
    total_bits = len(data) * 8

    bits_consumed = 0

    def next_bit() -> int:
        nonlocal bits_consumed
        bits_consumed += 1
        if bits_consumed <= total_bits:
            return reader.read_bit()
        return 0  # zero-padding past the stream end

    low, high = 0, _FULL
    code = 0
    for _ in range(_PRECISION):
        code = (code << 1) | next_bit()

    symbols = []
    for _ in range(count):
        span = high - low + 1
        scaled = ((code - low + 1) * table.total - 1) // span
        symbol = table.symbol_at(scaled)
        symbols.append(symbol)
        cum_low, cum_high = table.range_of(symbol)
        high = low + (span * cum_high) // table.total - 1
        low = low + (span * cum_low) // table.total
        while True:
            if high < _HALF:
                pass
            elif low >= _HALF:
                low -= _HALF
                high -= _HALF
                code -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                low -= _QUARTER
                high -= _QUARTER
                code -= _QUARTER
            else:
                break
            low = low * 2
            high = high * 2 + 1
            code = (code << 1) | next_bit()
    return symbols
