"""gzip baseline for the compression-ratio comparison.

METHCOMP's headline claim (cited by the paper) is "about 10x better
compression ratio than gzip" on methylation data; benchmark S5 measures
our codec against this baseline.
"""

from __future__ import annotations

import zlib


def gzip_compress(buffer: bytes, level: int = 6) -> bytes:
    """Deflate ``buffer`` at the given level (gzip's default is 6)."""
    return zlib.compress(buffer, level)


def gzip_decompress(data: bytes) -> bytes:
    """Inverse of :func:`gzip_compress`."""
    return zlib.decompress(data)


def gzip_ratio(buffer: bytes, level: int = 6) -> float:
    """Raw-to-compressed size ratio under gzip."""
    return len(buffer) / len(gzip_compress(buffer, level))
