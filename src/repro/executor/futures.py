"""Futures returned by the function executors.

A :class:`ResponseFuture` tracks one call through its life cycle and
carries the timing/billing stats the job monitor displays.  Futures are
simulation-side objects: waiting on one means yielding
``future.done_event`` inside a process.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as t

from repro.errors import ExecutorError
from repro.sim import SimEvent


class CallState(enum.Enum):
    """Life cycle of one executor call."""

    NEW = "new"
    INVOKED = "invoked"
    SUCCESS = "success"
    ERROR = "error"


@dataclasses.dataclass(slots=True)
class CallStats:
    """Timings (virtual seconds) and sizes for one call."""

    submitted_at: float = 0.0
    finished_at: float = 0.0
    input_bytes: int = 0
    output_bytes: int = 0
    worker: str = ""

    @property
    def wall_time(self) -> float:
        return max(0.0, self.finished_at - self.submitted_at)


class ResponseFuture:
    """Handle to one asynchronous call (FaaS activation or VM task)."""

    def __init__(
        self,
        call_id: int,
        job_id: str,
        executor_id: str,
        done_event: SimEvent,
        output_ref: tuple[str, str] | None,
    ):
        self.call_id = call_id
        self.job_id = job_id
        self.executor_id = executor_id
        #: Triggers when the call finishes (value: worker status dict).
        self.done_event = done_event
        #: ``(bucket, key)`` of the pickled result, if stored remotely.
        self.output_ref = output_ref
        self.state = CallState.INVOKED
        self.stats = CallStats()
        self._result: object = None
        self._result_fetched = False
        done_event.add_callback(self._on_done)

    def _on_done(self, event: SimEvent) -> None:
        self.state = CallState.SUCCESS if event.ok else CallState.ERROR

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.done_event.triggered

    @property
    def error(self) -> BaseException | None:
        """The call's failure, if it failed."""
        if not self.done_event.triggered:
            return None
        return self.done_event.exception

    @property
    def status(self) -> dict:
        """Worker-reported status payload (raises if the call failed)."""
        if not self.done_event.triggered:
            raise ExecutorError(
                f"call {self.job_id}/{self.call_id} has not finished yet"
            )
        return t.cast(dict, self.done_event.value)

    def _store_result(self, value: object) -> None:
        self._result = value
        self._result_fetched = True

    @property
    def result_ready(self) -> bool:
        """Whether the result payload has been fetched from storage."""
        return self._result_fetched

    @property
    def result(self) -> object:
        """The call's return value, once fetched by the executor."""
        if not self._result_fetched:
            raise ExecutorError(
                f"result of call {self.job_id}/{self.call_id} not fetched yet; "
                "use executor.get_result(...)"
            )
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResponseFuture {self.executor_id}/{self.job_id}/{self.call_id} "
            f"{self.state.value}>"
        )
