"""Lithops-like function executors over the simulated cloud."""

from repro.executor.executor import (
    ALL_COMPLETED,
    ANY_COMPLETED,
    CpuModel,
    FunctionExecutor,
)
from repro.executor.futures import CallState, CallStats, ResponseFuture
from repro.executor.job import JobRecord
from repro.executor.speculation import AttemptHandle, JobSpeculator, SpeculationPolicy
from repro.executor.partitioner import (
    ByteRange,
    align_start_to_record,
    chunk_ranges,
    extend_end_to_record,
    split_range,
)
from repro.executor.standalone import StandaloneExecutor, VmWorkerContext

__all__ = [
    "ALL_COMPLETED",
    "ANY_COMPLETED",
    "AttemptHandle",
    "ByteRange",
    "CallState",
    "CallStats",
    "CpuModel",
    "FunctionExecutor",
    "JobRecord",
    "JobSpeculator",
    "SpeculationPolicy",
    "ResponseFuture",
    "StandaloneExecutor",
    "VmWorkerContext",
    "align_start_to_record",
    "chunk_ranges",
    "extend_end_to_record",
    "split_range",
]
