"""The Lithops-like ``FunctionExecutor``.

Mirrors the Lithops programming model on the simulated cloud:

* ``map(func, iterdata)`` — one serverless call per element;
* ``call_async(func, data)`` — a single call;
* ``map_reduce(map_func, iterdata, reduce_func)`` — map then a reduce
  call over the map results;
* ``wait`` / ``get_result`` — synchronization and result fetching.

Data passing is faithful to Lithops-over-COS: the function is pickled
and uploaded once per job, each call's input payload is uploaded as its
own object, and each call writes its pickled result plus a small status
object back to storage.  Those per-call requests are exactly the traffic
that makes object-store ops/s matter in the paper.

Two kinds of user function are supported:

* **plain callables** ``func(data) -> result`` — run verbatim on real
  data; simulated CPU time comes from the optional ``cpu_model``;
* **simulation-aware generator functions** ``func(ctx, data)`` — may
  yield storage and compute effects themselves (used by the shuffle
  operator and the genomics pipeline).
"""

from __future__ import annotations

import inspect
import itertools
import typing as t

from repro.cloud.environment import Cloud
from repro.cloud.faas.context import FunctionContext
from repro.cloud.storageview import BoundStorage
from repro.errors import ExecutorError
from repro.executor.futures import ResponseFuture
from repro.executor.job import JobRecord
from repro.executor.speculation import AttemptHandle, JobSpeculator, SpeculationPolicy
from repro.sim import SimEvent
from repro.storage import paths
from repro.storage.api import Storage
from repro.storage.serializer import deserialize, serialize

#: ``cpu_model(data) -> cpu_seconds`` for plain callables.
CpuModel = t.Callable[[t.Any], float]

#: Return-when modes for :meth:`FunctionExecutor.wait`.
ALL_COMPLETED = "ALL_COMPLETED"
ANY_COMPLETED = "ANY_COMPLETED"


def next_executor_id(cloud: Cloud, prefix: str) -> str:
    """Deterministic per-region executor ids.

    A module-global counter would leak state across runs and break
    reproducibility (RNG stream names derive from executor ids), so the
    counter lives on the cloud instance.
    """
    counters = getattr(cloud, "_executor_counters", None)
    if counters is None:
        counters = {}
        cloud._executor_counters = counters  # type: ignore[attr-defined]
    counters[prefix] = counters.get(prefix, 0) + 1
    return f"{prefix}-{counters[prefix]}"


class FunctionExecutor:
    """Run Python callables as serverless functions on the simulated cloud.

    Parameters
    ----------
    cloud:
        The simulated region.
    runtime_memory_mb:
        Memory size of the runtime used for all calls from this executor.
    bucket:
        Staging bucket for payloads/results (created if missing).
    billing_tags:
        Extra tags stamped on every gb-second charge this executor's
        runtime incurs (e.g. ``{"tenant": ...}`` for per-tenant cost
        attribution in a shared service).
    """

    def __init__(
        self,
        cloud: Cloud,
        runtime_memory_mb: int = 2048,
        bucket: str = "lithops-staging",
        timeout_s: float | None = None,
        retries: int = 2,
        speculation: SpeculationPolicy | None = None,
        billing_tags: dict[str, str] | None = None,
    ):
        self.cloud = cloud
        self.sim = cloud.sim
        self.runtime_memory_mb = runtime_memory_mb
        self.bucket = bucket
        cloud.store.ensure_bucket(bucket)
        self.executor_id = next_executor_id(cloud, "exec")
        #: Re-invocations allowed per call on *infrastructure* failures
        #: (crashes); application exceptions are never retried.
        self.retries = retries
        #: Default straggler-mitigation policy for map jobs (``None``
        #: disables backup tasks unless a map call opts in).
        self.speculation = speculation
        #: Backup attempts launched across all jobs (see
        #: :mod:`repro.executor.speculation`).
        self.speculative_launches = 0
        self._job_ids = itertools.count(0)
        self.jobs: list[JobRecord] = []
        self._runtime_name = f"repro-runtime-{self.executor_id}-{runtime_memory_mb}mb"
        cloud.faas.register(
            self._runtime_name,
            _runtime_handler,
            memory_mb=runtime_memory_mb,
            timeout_s=timeout_s,
            billing_tags=billing_tags,
        )
        # Driver-side storage client (full per-connection speed).
        self.storage = Storage(
            self.sim,
            BoundStorage(cloud.store, None),
            name=f"{self.executor_id}.driver",
        )

    # ------------------------------------------------------------------
    # submission API (all return SimEvents carrying futures)
    # ------------------------------------------------------------------
    def call_async(
        self,
        func: t.Callable,
        data: object,
        cpu_model: CpuModel | None = None,
        span=None,
    ) -> SimEvent:
        """Submit one call; event → a single :class:`ResponseFuture`."""
        return self.sim.process(
            self._submit_job(func, [data], cpu_model, single=True, span=span),
            name=f"{self.executor_id}.call_async",
        ).completion

    def map(
        self,
        func: t.Callable,
        iterdata: t.Iterable[object],
        cpu_model: CpuModel | None = None,
        speculation: SpeculationPolicy | None = None,
        span=None,
    ) -> SimEvent:
        """Submit one call per element; event → list of futures.

        ``speculation`` (or the executor-level default) enables backup
        tasks for straggling calls; the first attempt to finish wins.
        ``span`` parents every attempt span of this job under the
        caller's wave (threaded explicitly — driver generators
        interleave, so there is no usable ambient "current span").
        """
        return self.sim.process(
            self._submit_job(
                func,
                list(iterdata),
                cpu_model,
                single=False,
                speculation=speculation if speculation is not None else self.speculation,
                span=span,
            ),
            name=f"{self.executor_id}.map",
        ).completion

    def map_reduce(
        self,
        map_func: t.Callable,
        iterdata: t.Iterable[object],
        reduce_func: t.Callable,
        map_cpu_model: CpuModel | None = None,
        reduce_cpu_model: CpuModel | None = None,
    ) -> SimEvent:
        """Map, then reduce over the list of map results.

        Event → the reduce call's single future.  The reducer receives
        the *list of map results* as its input, fetched worker-side from
        the map output objects (data stays in object storage, as in
        Lithops' default map-reduce flow).
        """
        return self.sim.process(
            self._map_reduce(
                map_func, list(iterdata), reduce_func, map_cpu_model, reduce_cpu_model
            ),
            name=f"{self.executor_id}.map_reduce",
        ).completion

    # ------------------------------------------------------------------
    # synchronization API
    # ------------------------------------------------------------------
    def wait(
        self,
        futures: t.Sequence[ResponseFuture],
        return_when: str = ALL_COMPLETED,
    ) -> SimEvent:
        """Event that triggers per ``return_when`` over ``futures``.

        Failures do not fail the wait: the returned event succeeds with
        ``(done, not_done)`` lists, mirroring ``concurrent.futures.wait``.
        """
        if return_when not in (ALL_COMPLETED, ANY_COMPLETED):
            raise ExecutorError(f"unknown return_when: {return_when!r}")
        return self.sim.process(
            self._wait(list(futures), return_when), name=f"{self.executor_id}.wait"
        ).completion

    def _wait(self, futures: list[ResponseFuture], return_when: str) -> t.Generator:
        if futures:
            # Wrap each done_event so failures count as completion rather
            # than failing the aggregate wait.
            def absorb(future: ResponseFuture) -> t.Generator:
                try:
                    yield future.done_event
                except Exception:  # noqa: BLE001 - failure == completion here
                    pass

            absorbed = [
                self.sim.process(absorb(future), name="wait.absorb").completion
                for future in futures
            ]
            if return_when == ALL_COMPLETED:
                yield self.sim.all_of(absorbed)
            else:
                yield self.sim.any_of(absorbed)
        done = [future for future in futures if future.done]
        not_done = [future for future in futures if not future.done]
        return done, not_done

    def get_result(self, futures: t.Sequence[ResponseFuture] | ResponseFuture) -> SimEvent:
        """Wait for futures and fetch their results from storage.

        Event → a single result (if one future was given) or the list of
        results in input order.  Fails with the first call error.
        """
        single = isinstance(futures, ResponseFuture)
        future_list = [futures] if single else list(futures)
        return self.sim.process(
            self._get_result(future_list, single), name=f"{self.executor_id}.get_result"
        ).completion

    def _get_result(self, futures: list[ResponseFuture], single: bool) -> t.Generator:
        yield from self._wait(futures, ALL_COMPLETED)
        for future in futures:
            if future.error is not None:
                raise future.error
        results = []
        for future in futures:
            if not future.result_ready:
                if future.output_ref is None:
                    raise ExecutorError("future has no output reference")
                bucket, key = future.output_ref
                payload = yield self.storage.get_object(bucket, key)
                future._store_result(deserialize(payload))
                future.stats.output_bytes = len(payload)
            results.append(future.result)
        return results[0] if single else results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _submit_job(
        self,
        func: t.Callable,
        iterdata: list[object],
        cpu_model: CpuModel | None,
        single: bool,
        speculation: SpeculationPolicy | None = None,
        span=None,
    ) -> t.Generator:
        if not iterdata:
            raise ExecutorError("map over empty iterdata")
        job_id = f"J{next(self._job_ids):03d}"
        record = JobRecord(
            job_id=job_id,
            function_name=getattr(func, "__name__", "<callable>"),
            call_count=len(iterdata),
            submitted_at=self.sim.now,
        )
        self.jobs.append(record)
        speculator = None
        if speculation is not None:
            speculator = JobSpeculator(self, speculation)
            speculator.expect_calls(len(iterdata))

        # One function upload per job (Lithops uploads the pickled
        # function+modules once, not per call).
        func_key = f"{paths.job_prefix(self.executor_id, job_id)}/function.pickle"
        func_blob = serialize((func, cpu_model))
        yield self.storage.put_object(self.bucket, func_key, func_blob)

        futures = []
        for call_id, data in enumerate(iterdata):
            input_key = paths.call_input_key(self.executor_id, job_id, call_id)
            output_key = paths.call_output_key(self.executor_id, job_id, call_id)
            status_key = paths.call_status_key(self.executor_id, job_id, call_id)
            input_blob = serialize(data)
            yield self.storage.put_object(self.bucket, input_key, input_blob)
            payload = {
                "bucket": self.bucket,
                "func_key": func_key,
                "input_key": input_key,
                "output_key": output_key,
                "status_key": status_key,
            }
            track = f"worker-{call_id:03d}"
            if speculator is not None:
                invocation = speculator.register_primary(
                    call_id, payload, span=span, track=track
                )
            else:
                invocation = self.sim.process(
                    self._invoke_with_retries(payload, span=span, track=track),
                    name=f"{self.executor_id}.{job_id}.{call_id}",
                ).completion
            future = ResponseFuture(
                call_id=call_id,
                job_id=job_id,
                executor_id=self.executor_id,
                done_event=invocation,
                output_ref=(self.bucket, output_key),
            )
            future.stats.submitted_at = self.sim.now
            future.stats.input_bytes = len(input_blob)
            invocation.add_callback(
                lambda _event, f=future: setattr(f.stats, "finished_at", self.sim.now)
            )
            futures.append(future)
            record.futures.append(future)

        def mark_finished(_event: SimEvent) -> None:
            record.finished_at = self.sim.now

        self.sim.all_of([f.done_event for f in futures]).add_callback(mark_finished)
        return futures[0] if single else futures

    def _invoke_with_retries(
        self,
        payload: dict,
        handle: "AttemptHandle | None" = None,
        span=None,
        track: str | None = None,
        link_spans: t.Sequence[object] = (),
    ) -> t.Generator:
        """Invoke once, re-invoking on infrastructure failures only.

        Crashes (:class:`FunctionCrashed`) are the platform's fault and
        retried up to ``self.retries`` times, Lithops-style.  Anything
        the user function raised passes straight through — as does
        :class:`FunctionCancelled`: a cancelled attempt (the losing side
        of a speculative race) must never resurrect itself by retrying.

        ``handle`` (owned by a :class:`~repro.executor.speculation.JobSpeculator`)
        is kept pointed at the live activation so the speculator can
        cancel this attempt wherever it currently is — including between
        a crash and the relaunch.
        """
        from repro.cloud.faas.errors import FunctionCancelled, FunctionCrashed

        attempt = 0
        while True:
            if handle is not None and handle.cancel_requested:
                raise FunctionCancelled(self._runtime_name, "attempt cancelled")
            activation = self.cloud.faas.launch(
                self._runtime_name,
                payload,
                parent_span=span,
                span_track=track,
                link_spans=link_spans,
            )
            if handle is not None:
                handle.activation_id = activation.activation_id
            try:
                result = yield activation.completion
                return result
            except FunctionCancelled:
                raise
            except FunctionCrashed:
                attempt += 1
                if attempt > self.retries:
                    raise

    def _map_reduce(
        self,
        map_func: t.Callable,
        iterdata: list[object],
        reduce_func: t.Callable,
        map_cpu_model: CpuModel | None,
        reduce_cpu_model: CpuModel | None,
    ) -> t.Generator:
        map_futures = yield from self._submit_job(
            map_func, iterdata, map_cpu_model, single=False
        )
        yield from self._wait(map_futures, ALL_COMPLETED)
        for future in map_futures:
            if future.error is not None:
                raise future.error
        output_refs = [future.output_ref for future in map_futures]
        reduce_future = yield from self._submit_job(
            _make_reducer(reduce_func),
            [output_refs],
            reduce_cpu_model,
            single=True,
        )
        return reduce_future


def _make_reducer(reduce_func: t.Callable) -> t.Callable:
    """Wrap ``reduce_func`` into a sim-aware call that gathers map outputs."""

    def reducer(ctx: FunctionContext, output_refs: list[tuple[str, str]]) -> t.Generator:
        map_results = []
        for bucket, key in output_refs:
            blob = yield ctx.storage.get(bucket, key)
            map_results.append(deserialize(blob))
        if inspect.isgeneratorfunction(reduce_func):
            result = yield from reduce_func(ctx, map_results)
        else:
            result = reduce_func(map_results)
        return result

    reducer.__name__ = f"reduce:{getattr(reduce_func, '__name__', 'fn')}"
    return reducer


def _runtime_handler(ctx: FunctionContext, invocation: dict) -> t.Generator:
    """The generic worker: fetch function + input, run, store output.

    This is the single FaaS-registered handler through which every
    executor call flows; its storage traffic (1 GET function, 1 GET
    input, 1 PUT output, 1 PUT status) mirrors the Lithops worker.
    """
    bucket = invocation["bucket"]
    func_blob = yield ctx.storage.get(bucket, invocation["func_key"])
    func, cpu_model = deserialize(func_blob)
    input_blob = yield ctx.storage.get(bucket, invocation["input_key"])
    data = deserialize(input_blob)

    if inspect.isgeneratorfunction(func):
        result = yield from func(ctx, data)
    else:
        result = func(data)
        if cpu_model is not None:
            yield ctx.compute(max(0.0, float(cpu_model(data))))

    output_blob = serialize(result)
    yield ctx.storage.put(bucket, invocation["output_key"], output_blob)
    status = {
        "activation_id": ctx.activation_id,
        "input_bytes": len(input_blob),
        "output_bytes": len(output_blob),
        "finished_at": ctx.sim.now,
    }
    yield ctx.storage.put(bucket, invocation["status_key"], serialize(status))
    return status
