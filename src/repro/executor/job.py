"""Job bookkeeping for the executors."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.executor.futures import ResponseFuture


@dataclasses.dataclass(slots=True)
class JobRecord:
    """One submitted job (a batch of calls sharing a function)."""

    job_id: str
    function_name: str
    call_count: int
    submitted_at: float
    futures: list[ResponseFuture] = dataclasses.field(default_factory=list)
    finished_at: float | None = None

    @property
    def done(self) -> bool:
        return all(future.done for future in self.futures)

    @property
    def failed_calls(self) -> list[ResponseFuture]:
        return [future for future in self.futures if future.error is not None]

    def summary(self) -> dict[str, t.Any]:
        return {
            "job_id": self.job_id,
            "function": self.function_name,
            "calls": self.call_count,
            "failed": len(self.failed_calls),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
