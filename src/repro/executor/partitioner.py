"""Input partitioning for map jobs.

The executor maps functions over *iterables* of arbitrary Python data;
this module provides the helpers that turn big storage objects into such
iterables:

* :func:`split_range` — cut ``[0, size)`` into ``n`` near-equal byte
  ranges (the classic input-split of data-parallel systems);
* :func:`chunk_ranges` — cut by target chunk size instead of count;
* :func:`align_range_to_records` — extend/trim a byte range to record
  (newline) boundaries, given a peek window, so record-oriented mappers
  can process a split without seeing torn lines;
* :func:`assign_balanced` — deterministic longest-processing-time
  placement of weighted items onto equal bins (the load-aware shard
  routing of the relay fleet balances planned partition bytes with it).
"""

from __future__ import annotations

import dataclasses
import heapq
import typing as t

from repro.errors import ExecutorError


@dataclasses.dataclass(frozen=True, slots=True)
class ByteRange:
    """A half-open byte interval ``[start, end)`` of one object."""

    bucket: str
    key: str
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


def split_range(bucket: str, key: str, size: int, parts: int) -> list[ByteRange]:
    """Split ``[0, size)`` into ``parts`` contiguous near-equal ranges."""
    if parts < 1:
        raise ExecutorError(f"parts must be >= 1, got {parts}")
    if size < 0:
        raise ExecutorError(f"size must be >= 0, got {size}")
    base, remainder = divmod(size, parts)
    ranges = []
    cursor = 0
    for index in range(parts):
        length = base + (1 if index < remainder else 0)
        ranges.append(ByteRange(bucket, key, cursor, cursor + length))
        cursor += length
    return ranges


def chunk_ranges(bucket: str, key: str, size: int, chunk_size: int) -> list[ByteRange]:
    """Split ``[0, size)`` into ranges of at most ``chunk_size`` bytes."""
    if chunk_size < 1:
        raise ExecutorError(f"chunk_size must be >= 1, got {chunk_size}")
    ranges = []
    for start in range(0, size, chunk_size):
        ranges.append(ByteRange(bucket, key, start, min(size, start + chunk_size)))
    if not ranges:
        ranges.append(ByteRange(bucket, key, 0, 0))
    return ranges


def assign_balanced(weights: t.Sequence[float], bins: int) -> list[int]:
    """Assign weighted items to ``bins`` minimizing the heaviest bin (LPT).

    Classic longest-processing-time greedy: items are placed heaviest
    first onto the currently lightest bin.  Ties break by bin index and
    then by item index, so the assignment is a pure function of the
    inputs — callers that must route identically across processes,
    retries and speculative attempts (the relay fleet's rebalance map)
    can rely on it.  Returns one bin index per item, in input order.
    """
    if bins < 1:
        raise ExecutorError(f"bins must be >= 1, got {bins}")
    for weight in weights:
        if weight < 0:
            raise ExecutorError(f"weights must be >= 0, got {weight}")
    assignment = [0] * len(weights)
    loads = [(0.0, index) for index in range(bins)]
    heapq.heapify(loads)
    order = sorted(range(len(weights)), key=lambda item: (-weights[item], item))
    for item in order:
        load, bin_index = heapq.heappop(loads)
        assignment[item] = bin_index
        heapq.heappush(loads, (load + weights[item], bin_index))
    return assignment


def align_start_to_record(data: bytes, is_first: bool, delimiter: bytes = b"\n") -> int:
    """Offset within ``data`` where this split's first whole record starts.

    Non-first splits skip the (possibly torn) leading record: the bytes
    up to and including the first delimiter belong to the previous split.
    """
    if is_first:
        return 0
    position = data.find(delimiter)
    if position < 0:
        return len(data)  # whole window is a torn record tail
    return position + len(delimiter)


def extend_end_to_record(
    tail: bytes, at_object_end: bool, delimiter: bytes = b"\n"
) -> int:
    """How many bytes of the peek window past ``end`` belong to this split.

    A split owns the record that *starts* inside it, so it must consume
    the continuation bytes up to (and including) the next delimiter.
    """
    if at_object_end:
        return len(tail)
    position = tail.find(delimiter)
    if position < 0:
        raise ExecutorError(
            "record exceeds the peek window; increase the window size"
        )
    return position + len(delimiter)
