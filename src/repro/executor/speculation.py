"""Speculative execution (straggler mitigation) for map jobs.

Lognormal startup jitter and injected crashes make a few calls in every
wide fan-out run long — and a map stage is as slow as its slowest call.
The classical MapReduce remedy is *backup tasks*: once most of the job
has finished, re-invoke the stragglers and take whichever attempt
settles first.

:class:`SpeculationPolicy` captures the trigger rule; :class:`JobSpeculator`
implements it callback-style on the simulation kernel (no polling
process).  The executor exposes it through ``map(..., speculation=...)``.

Duplicated attempts write to the same output key, so the winner is
simply the first attempt to settle.  Losing attempts are not left to
drain: the moment a call settles, the speculator **cancels** every
other outstanding attempt through the platform's attempt-scoped cancel
(:meth:`~repro.cloud.faas.platform.FaasPlatform.cancel`), which stops
their billing, interrupts their in-flight transfers, and fences them
out of stateful substrates like the VM partition relay.  That is what
makes speculation safe on *every* exchange substrate, not only the
idempotent object-storage path.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as t

from repro.errors import ExecutorError
from repro.sim import SimEvent

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.executor.executor import FunctionExecutor


class AttemptHandle:
    """Cancel lever for one retry-looped attempt of one call.

    The executor's retry loop keeps ``activation_id`` pointed at the
    attempt's *current* activation; :meth:`cancel` kills that activation
    and latches ``cancel_requested`` so the loop cannot relaunch after a
    crash that raced the cancellation.
    """

    __slots__ = ("executor", "activation_id", "cancel_requested")

    def __init__(self, executor: "FunctionExecutor"):
        self.executor = executor
        self.activation_id: str | None = None
        self.cancel_requested = False

    def cancel(self, reason: str = "lost speculative race") -> bool:
        self.cancel_requested = True
        if self.activation_id is None:
            return False
        return self.executor.cloud.faas.cancel(self.activation_id, reason)


@dataclasses.dataclass(frozen=True, slots=True)
class SpeculationPolicy:
    """When to launch backup attempts for straggling calls.

    Attributes
    ----------
    quantile:
        Fraction of the job's calls that must have completed before any
        backup launches (speculating early wastes money on healthy
        calls).
    latency_multiplier:
        A call is a straggler once its age exceeds ``latency_multiplier``
        times the median duration of the completed calls.
    max_duplicates:
        Backup attempts allowed per call.
    """

    quantile: float = 0.75
    latency_multiplier: float = 1.5
    max_duplicates: int = 1

    def validate(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ExecutorError(
                f"speculation quantile must be in (0, 1), got {self.quantile}"
            )
        if self.latency_multiplier < 1.0:
            raise ExecutorError(
                "speculation latency_multiplier must be >= 1, got "
                f"{self.latency_multiplier}"
            )
        if self.max_duplicates < 1:
            raise ExecutorError(
                f"speculation max_duplicates must be >= 1, got {self.max_duplicates}"
            )


class JobSpeculator:
    """Drives one job's settle events, launching backups per the policy.

    The executor registers each call with :meth:`register_primary`; the
    speculator owns the call's *settle* event (what the call's
    :class:`~repro.executor.futures.ResponseFuture` waits on) and
    succeeds it with the first attempt that completes.  A call fails
    only when every outstanding attempt for it has failed.
    """

    def __init__(self, executor: "FunctionExecutor", policy: SpeculationPolicy):
        policy.validate()
        self.executor = executor
        self.sim = executor.sim
        self.policy = policy
        self._settles: dict[int, SimEvent] = {}
        self._payloads: dict[int, dict] = {}
        self._started_at: dict[int, float] = {}
        self._outstanding: dict[int, int] = {}
        self._backups_launched: dict[int, int] = {}
        #: Live attempt handles per call; the losers are cancelled the
        #: moment the call settles.
        self._attempts: dict[int, list[AttemptHandle]] = {}
        #: (span, track) trace context per call, shared by all attempts.
        self._spans: dict[int, tuple[object, str | None]] = {}
        self._durations: list[float] = []
        self._expected_calls: int | None = None
        #: Backup attempts launched (visible to tests and reports).
        self.speculative_launches = 0
        #: Losing attempts cancelled after their call settled.
        self.cancelled_losers = 0

    # ------------------------------------------------------------------
    # executor-facing API
    # ------------------------------------------------------------------
    def expect_calls(self, count: int) -> None:
        """Declare the job size (the quantile trigger needs the total)."""
        self._expected_calls = count

    def register_primary(
        self,
        call_id: int,
        payload: dict,
        span=None,
        track: str | None = None,
    ) -> SimEvent:
        """Launch the primary attempt; returns the call's settle event.

        ``span``/``track`` carry the submitting wave's trace context so
        every attempt of this call — primary and backups alike — parents
        under the same wave span and renders on the same worker track.
        """
        settle = self.sim.event(name=f"speculate.settle.{call_id}")
        self._settles[call_id] = settle
        self._payloads[call_id] = payload
        self._started_at[call_id] = self.sim.now
        self._outstanding[call_id] = 0
        self._backups_launched[call_id] = 0
        self._attempts[call_id] = []
        self._spans[call_id] = (span, track)
        self._launch_attempt(call_id)
        return settle

    # ------------------------------------------------------------------
    # attempt plumbing
    # ------------------------------------------------------------------
    def _launch_attempt(
        self, call_id: int, link_spans: t.Sequence[object] = ()
    ) -> None:
        self._outstanding[call_id] += 1
        handle = AttemptHandle(self.executor)
        self._attempts[call_id].append(handle)
        span, track = self._spans[call_id]
        attempt = self.sim.process(
            self.executor._invoke_with_retries(
                self._payloads[call_id],
                handle,
                span=span,
                track=track,
                link_spans=link_spans,
            ),
            name=f"speculate.attempt.{call_id}",
        ).completion
        attempt.add_callback(
            lambda event, call_id=call_id, handle=handle: self._on_attempt_done(
                call_id, handle, event
            )
        )

    def _on_attempt_done(self, call_id: int, handle: AttemptHandle, event: SimEvent) -> None:
        settle = self._settles[call_id]
        self._outstanding[call_id] -= 1
        attempts = self._attempts[call_id]
        if handle in attempts:
            attempts.remove(handle)
        if settle.triggered:
            return  # a faster attempt already decided this call
        if event.ok:
            self._durations.append(self.sim.now - self._started_at[call_id])
            settle.succeed(event.value)
            self._cancel_losers(call_id)
            self._maybe_speculate()
        elif self._outstanding[call_id] == 0:
            # Every attempt for this call has failed — so does the call.
            settle.fail(event.exception)  # type: ignore[arg-type]

    def _cancel_losers(self, call_id: int) -> None:
        """Kill every attempt still running for a settled call.

        The platform's attempt-scoped cancellation stops the loser's
        billing clock and reclaims whatever it reserved on stateful
        exchange substrates — losers no longer drain to completion.
        """
        for handle in list(self._attempts[call_id]):
            handle.cancel()
            self.cancelled_losers += 1
            self.sim.timeline.record(
                self.sim.now,
                "executor",
                "speculative_cancel",
                call_id=call_id,
                activation=handle.activation_id or "",
            )

    # ------------------------------------------------------------------
    # straggler detection
    # ------------------------------------------------------------------
    def _maybe_speculate(self) -> None:
        if self._expected_calls is None:
            return
        threshold = max(1, int(self.policy.quantile * self._expected_calls))
        if len(self._durations) < threshold:
            return
        median = statistics.median(self._durations)
        deadline_age = self.policy.latency_multiplier * median
        for call_id, settle in self._settles.items():
            if settle.triggered:
                continue
            if self._backups_launched[call_id] >= self.policy.max_duplicates:
                continue
            fire_at = self._started_at[call_id] + deadline_age
            delay = max(0.0, fire_at - self.sim.now)
            # Claim the backup slot now so re-entry cannot double-launch.
            self._backups_launched[call_id] += 1
            self.sim.timeout(delay).add_callback(
                lambda _event, call_id=call_id: self._fire_backup(call_id)
            )

    def _fire_backup(self, call_id: int) -> None:
        if self._settles[call_id].triggered:
            return  # finished while the backup timer was pending
        self.speculative_launches += 1
        self.executor.speculative_launches += 1
        self.sim.timeline.record(
            self.sim.now,
            "executor",
            "speculative_launch",
            call_id=call_id,
            job=self._payloads[call_id].get("status_key", ""),
        )
        # Hand the backup its live siblings' attempt spans so the trace
        # carries bidirectional links between the racing attempts (a
        # sibling still queueing has no span yet — links are best-effort).
        siblings = []
        tracer = self.sim.tracer
        for handle in self._attempts[call_id]:
            if handle.activation_id is None:
                continue
            sibling = tracer.attempt_span(handle.activation_id)
            if sibling is not None:
                siblings.append(sibling)
        self._launch_attempt(call_id, link_spans=siblings)
