"""Standalone (VM-backed) executor — Lithops "standalone mode".

Runs the same calls as :class:`~repro.executor.executor.FunctionExecutor`
but inside a provisioned VM instead of serverless functions: calls
contend for the instance's vCPUs, storage I/O flows through the VM NIC,
and billing is per-second of instance lifetime rather than GB-seconds.

Data passing is unchanged — inputs and outputs still travel through
object storage — which is exactly the paper's hybrid configuration.
"""

from __future__ import annotations

import itertools
import typing as t

from repro.cloud.environment import Cloud
from repro.cloud.storageview import BoundStorage
from repro.cloud.vm.instance import VirtualMachine, VmContext
from repro.errors import ExecutorError
from repro.executor.executor import CpuModel, _runtime_handler, next_executor_id
from repro.executor.futures import ResponseFuture
from repro.executor.job import JobRecord
from repro.sim import SimEvent
from repro.storage import paths
from repro.storage.api import Storage
from repro.storage.serializer import serialize


class VmWorkerContext:
    """Adapter giving VM tasks the function-context surface.

    Sim-aware user functions (generator functions taking ``(ctx, data)``)
    run unmodified on either substrate because both contexts expose
    ``storage``, ``compute``, ``compute_bytes``, ``sleep``, ``rng``,
    ``sim`` and ``logical_scale``.
    """

    def __init__(self, vm_context: VmContext, activation_id: str):
        self._vm = vm_context
        self.sim = vm_context.sim
        self.storage = vm_context.storage
        self.logical_scale = vm_context.logical_scale
        self.activation_id = activation_id
        self.cpu_share = 1.0
        self.memory_mb = vm_context.vm.instance_type.memory_gb * 1024

    def compute(self, cpu_seconds: float) -> SimEvent:
        return self._vm.compute(cpu_seconds)

    def compute_bytes(self, real_bytes: float, throughput_bps: float) -> SimEvent:
        return self._vm.compute_bytes(real_bytes, throughput_bps)

    def sleep(self, seconds: float) -> SimEvent:
        return self._vm.sleep(seconds)

    def rng(self, name: str):
        return self.sim.rng.stream(f"vm:{self.activation_id}:{name}")


class StandaloneExecutor:
    """Map/call API executed inside one provisioned VM."""

    def __init__(
        self,
        cloud: Cloud,
        instance_type: str = "bx2-8x32",
        bucket: str = "lithops-staging",
    ):
        self.cloud = cloud
        self.sim = cloud.sim
        self.instance_type = instance_type
        self.bucket = bucket
        cloud.store.ensure_bucket(bucket)
        self.executor_id = next_executor_id(cloud, "vmexec")
        self._job_ids = itertools.count(0)
        self._call_ids = itertools.count(0)
        self.jobs: list[JobRecord] = []
        self.vm: VirtualMachine | None = None
        self.storage = Storage(
            self.sim,
            BoundStorage(cloud.store, None),
            name=f"{self.executor_id}.driver",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> SimEvent:
        """Provision the backing VM; event → the running VM."""
        if self.vm is not None:
            raise ExecutorError("standalone executor already started")
        provision = self.cloud.vms.provision(self.instance_type)

        def remember(event: SimEvent) -> None:
            if event.ok:
                self.vm = t.cast(VirtualMachine, event.value)

        provision.add_callback(remember)
        return provision

    def shutdown(self) -> None:
        """Terminate the backing VM (idempotent for convenience)."""
        if self.vm is not None and self.vm.state != "terminated":
            self.vm.terminate()

    def _require_vm(self) -> VirtualMachine:
        if self.vm is None or self.vm.state != "running":
            raise ExecutorError(
                "standalone executor has no running VM; yield start() first"
            )
        return self.vm

    # ------------------------------------------------------------------
    # submission API (mirrors FunctionExecutor)
    # ------------------------------------------------------------------
    def map(
        self,
        func: t.Callable,
        iterdata: t.Iterable[object],
        cpu_model: CpuModel | None = None,
    ) -> SimEvent:
        """Submit one VM call per element; event → list of futures."""
        return self.sim.process(
            self._submit_job(func, list(iterdata), cpu_model, single=False),
            name=f"{self.executor_id}.map",
        ).completion

    def call_async(
        self, func: t.Callable, data: object, cpu_model: CpuModel | None = None
    ) -> SimEvent:
        """Submit one VM call; event → a single future."""
        return self.sim.process(
            self._submit_job(func, [data], cpu_model, single=True),
            name=f"{self.executor_id}.call_async",
        ).completion

    def get_result(self, futures) -> SimEvent:
        """Same contract as :meth:`FunctionExecutor.get_result`."""
        single = isinstance(futures, ResponseFuture)
        future_list = [futures] if single else list(futures)
        return self.sim.process(
            self._get_result(future_list, single),
            name=f"{self.executor_id}.get_result",
        ).completion

    def _get_result(self, futures: list[ResponseFuture], single: bool) -> t.Generator:
        from repro.storage.serializer import deserialize

        for future in futures:
            try:
                yield future.done_event
            except Exception:  # noqa: BLE001 - surfaced below in order
                pass
        for future in futures:
            if future.error is not None:
                raise future.error
        results = []
        for future in futures:
            if not future.result_ready:
                bucket, key = future.output_ref
                blob = yield self.storage.get_object(bucket, key)
                future._store_result(deserialize(blob))
            results.append(future.result)
        return results[0] if single else results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _submit_job(
        self,
        func: t.Callable,
        iterdata: list[object],
        cpu_model: CpuModel | None,
        single: bool,
    ) -> t.Generator:
        if not iterdata:
            raise ExecutorError("map over empty iterdata")
        vm = self._require_vm()
        job_id = f"V{next(self._job_ids):03d}"
        record = JobRecord(
            job_id=job_id,
            function_name=getattr(func, "__name__", "<callable>"),
            call_count=len(iterdata),
            submitted_at=self.sim.now,
        )
        self.jobs.append(record)

        func_key = f"{paths.job_prefix(self.executor_id, job_id)}/function.pickle"
        yield self.storage.put_object(
            self.bucket, func_key, serialize((func, cpu_model))
        )

        futures = []
        for call_id, data in enumerate(iterdata):
            input_key = paths.call_input_key(self.executor_id, job_id, call_id)
            output_key = paths.call_output_key(self.executor_id, job_id, call_id)
            status_key = paths.call_status_key(self.executor_id, job_id, call_id)
            input_blob = serialize(data)
            yield self.storage.put_object(self.bucket, input_key, input_blob)
            invocation = {
                "bucket": self.bucket,
                "func_key": func_key,
                "input_key": input_key,
                "output_key": output_key,
                "status_key": status_key,
            }
            activation_id = f"{self.executor_id}-call-{next(self._call_ids)}"

            def call_task(
                vm_context: VmContext,
                payload: dict = invocation,
                act: str = activation_id,
            ) -> t.Generator:
                adapter = VmWorkerContext(vm_context, act)
                result = yield from _runtime_handler(adapter, payload)
                return result

            done_event = vm.run(call_task, name=f"call-{call_id}")
            future = ResponseFuture(
                call_id=call_id,
                job_id=job_id,
                executor_id=self.executor_id,
                done_event=done_event,
                output_ref=(self.bucket, output_key),
            )
            future.stats.submitted_at = self.sim.now
            future.stats.input_bytes = len(input_blob)
            done_event.add_callback(
                lambda _event, f=future: setattr(f.stats, "finished_at", self.sim.now)
            )
            futures.append(future)
            record.futures.append(future)
        return futures[0] if single else futures
