"""Calibrated workload parameters for the METHCOMP experiments.

Every tunable of the Table 1 reproduction lives here, next to the
rationale for its value.  The cloud-side constants live in
:mod:`repro.cloud.profiles`; these are the *workload-side* throughputs
plus the experiment defaults.

Calibration target (paper, Table 1, 3.5 GB, parallelism 8):

================  ===========  ========
configuration     latency (s)  cost ($)
================  ===========  ========
purely serverless  83.32       0.008
VM-supported      142.77       0.010
================  ===========  ========

EXPERIMENTS.md records the measured values for every release of the
calibration.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cloud.profiles import GB, CloudProfile, ibm_us_east, profile_named
from repro.shuffle.cacheplanner import CacheShuffleCostModel
from repro.shuffle.planner import ShuffleCostModel
from repro.shuffle.relayplanner import RelayShuffleCostModel


@dataclasses.dataclass(slots=True)
class WorkloadParams:
    """Workload-side throughput constants (bytes/s of input, per core).

    Values model native-speed tooling (the paper runs C-grade sort and
    METHCOMP binaries), applied to *logical* bytes.
    """

    #: Mapper-side partitioning pass of the serverless shuffle.
    partition_throughput: float = 115e6
    #: Reducer-side sort of the serverless shuffle.
    sort_throughput: float = 55e6
    #: In-VM parse+sort throughput (per core) for the hybrid variant.
    vm_sort_throughput: float = 65e6
    #: METHCOMP encode stage.
    encode_throughput: float = 25e6
    #: METHCOMP decode (verification stage).
    decode_throughput: float = 40e6
    #: Concurrent range-GETs per reducer.
    fetch_parallelism: int = 4

    def shuffle_cost_model(self) -> ShuffleCostModel:
        return ShuffleCostModel(
            partition_throughput=self.partition_throughput,
            sort_throughput=self.sort_throughput,
            fetch_parallelism=self.fetch_parallelism,
        )

    def cache_shuffle_cost_model(self) -> CacheShuffleCostModel:
        return CacheShuffleCostModel(
            partition_throughput=self.partition_throughput,
            sort_throughput=self.sort_throughput,
        )

    def relay_shuffle_cost_model(self) -> RelayShuffleCostModel:
        return RelayShuffleCostModel(
            partition_throughput=self.partition_throughput,
            sort_throughput=self.sort_throughput,
        )


@dataclasses.dataclass(slots=True)
class ExperimentConfig:
    """Defaults reproducing the paper's Table 1 setup."""

    #: Logical dataset size (the paper's ENCFF988BSW is 3.5 GB).
    size_gb: float = 3.5
    #: Parallelism degree ("8 workers" in the paper) for sort and encode.
    parallelism: int = 8
    #: Function memory (the paper allocates 2 GB).
    function_memory_mb: int = 2048
    #: Cloud provider profile (Lithops is multi-cloud; the paper runs on
    #: IBM Cloud, experiment S11 re-runs everything on ``aws-us-east``).
    provider: str = "ibm-us-east"
    #: VM flavour for the hybrid variant; ``None`` picks the provider's
    #: equivalent of the paper's bx2-8x32 (8 vCPUs, 32 GB).
    vm_instance_type: str | None = None
    #: Real bytes = logical / scale; request counts are scale-invariant.
    logical_scale: float = 256.0
    #: Key distribution of the staged dataset: ``"uniform"`` (the
    #: chromosome-weighted methylome, the historical baseline) or one of
    #: the skewed laws in :data:`repro.shuffle.skew.KEY_DISTRIBUTIONS`
    #: (``"zipf"``, ``"heavy-dup"``, ``"sorted-runs"``, ``"late-hot"``)
    #: — experiment S11's hot-partition workloads and S12's
    #: mid-stream-emerging one.
    key_distribution: str = "uniform"
    #: Zipf exponent of the ``"zipf"`` distribution (hotter when larger).
    zipf_s: float = 1.2
    #: Distinct key values of the duplicate-heavy distributions.
    skew_distinct_keys: int = 64
    #: Root seed for data generation and all latency jitter.
    seed: int = 2021
    #: Zero latency jitter (tests); experiments keep jitter on.
    deterministic: bool = False
    #: Let the Primula planner pick the shuffle worker count instead of
    #: pinning ``parallelism`` (the paper pins 8 for Table 1).
    auto_workers: bool = False
    #: Cache cluster for the cache-supported variant (supplementary
    #: experiment S8; the paper names ElastiCache as the alternative).
    cache_node_type: str = "cache.r5.large"
    #: Node count; ``0`` sizes the cluster to fit the shuffle data.
    cache_nodes: int = 0
    #: ``"warm"`` uses a pre-provisioned cluster (billing still covers
    #: the run); ``"cold"`` pays cluster creation on the clock.
    cache_provisioning: str = "warm"
    #: Relay VM flavour for the relay-supported variant (supplementary
    #: experiment S8's third substrate); ``None`` reuses the hybrid
    #: pipeline's VM flavour — the same machine Table 1 provisions,
    #: repurposed as an in-memory rendezvous.
    relay_instance_type: str | None = None
    #: ``"warm"`` uses a pre-provisioned relay VM (billing still covers
    #: the run); ``"cold"`` pays VM boot on the clock (Table 1's
    #: provisioning penalty).
    relay_provisioning: str = "warm"
    #: Shard count of the sharded-relay fleet (experiment S8b); each
    #: shard is one ``resolved_relay_instance_type`` VM.
    relay_shards: int = 2
    #: Dollars one pipeline-hour of latency is worth to the adaptive
    #: substrate selector (the ``auto_sort`` stage's trade-off knob).
    time_value_usd_per_hour: float = 1.0
    #: Exchange substrate of the streaming-supported pipeline
    #: (experiment S10); the relay's rendezvous pulls are the natural
    #: fit, but any of the four substrates streams.
    stream_substrate: str = "relay"
    #: Logical MB per mapper chunk of the streaming sort (the
    #: pipelining grain: smaller overlaps more, pays more requests).
    stream_chunk_mb: float = 32.0
    #: Reducer-side buffer bound (logical MB) on fetched-but-unsorted
    #: chunks; ``0`` disables backpressure.
    stream_buffer_mb: float = 256.0
    workload: WorkloadParams = dataclasses.field(default_factory=WorkloadParams)
    #: Optional hook mutating the profile after calibration (sweeps use
    #: this to perturb a single knob, e.g. the cold-start time).
    profile_mutator: t.Callable[[CloudProfile], None] | None = None

    @property
    def logical_bytes(self) -> float:
        return self.size_gb * GB

    @property
    def real_bytes(self) -> int:
        return int(self.logical_bytes / self.logical_scale)

    #: Per-provider equivalent of the paper's bx2-8x32 (8 vCPU, 32 GB,
    #: $0.384/h — m5.2xlarge matches all three).
    _DEFAULT_VM_TYPES: t.ClassVar[dict[str, str]] = {
        "ibm-us-east": "bx2-8x32",
        "aws-us-east": "m5.2xlarge",
    }

    @property
    def resolved_vm_instance_type(self) -> str:
        """The configured VM flavour, or the provider's default."""
        if self.vm_instance_type is not None:
            return self.vm_instance_type
        return self._DEFAULT_VM_TYPES[self.provider]

    @property
    def resolved_relay_instance_type(self) -> str:
        """The configured relay flavour, or the hybrid pipeline's VM."""
        if self.relay_instance_type is not None:
            return self.relay_instance_type
        return self.resolved_vm_instance_type

    def make_profile(self) -> CloudProfile:
        """The calibrated cloud profile for this experiment.

        Deviations from the generic provider defaults, with rationale
        (IBM, the paper's setting):

        * ``faas.instance_bandwidth`` 44 MB/s — measured IBM CF function
          -to-COS throughput is well below the COS per-connection cap;
        * ``faas.invoke_overhead`` 0.30 s — Lithops adds per-call
          dispatch work (payload upload, API call) on top of the
          platform's scheduling latency;
        * ``vm.boot`` 99 s — Lithops standalone mode pays VM create +
          boot + agent/runtime bootstrap before the first task runs
          (the dominant penalty of the hybrid configuration).

        On AWS the same Lithops layers apply over different bases:
        Lambda-to-S3 throughput is higher, and EC2 boots faster but the
        standalone bootstrap still costs tens of seconds.
        """
        profile = profile_named(
            self.provider,
            logical_scale=self.logical_scale,
            deterministic=self.deterministic,
        )
        if self.provider == "ibm-us-east":
            profile.faas.instance_bandwidth = 44e6
            profile.faas.invoke_overhead.mean = 0.30
            profile.vm.boot.mean = 99.0
        elif self.provider == "aws-us-east":
            profile.faas.instance_bandwidth = 60e6
            profile.faas.invoke_overhead.mean = 0.20
            profile.vm.boot.mean = 65.0
        if self.profile_mutator is not None:
            self.profile_mutator(profile)
        return profile
