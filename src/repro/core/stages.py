"""Stage-kind implementations for the METHCOMP pipelines.

These are the building blocks the declarative workflows (and the
Table 1 experiment) compose:

==================  ====================================================
``methylome_dataset``  generate a synthetic ENCFF988BSW-like bedMethyl
                       payload and upload it to object storage
``dataset_ref``        point at an existing object (pre-staged input)
``shuffle_sort``       sort through object storage with serverless
                       functions (Primula) — configuration **B**
``vm_sort``            sort inside a provisioned VM — configuration **A**
``cache_sort``         sort with serverless functions exchanging via an
                       in-memory cache cluster — configuration **C**
                       (the ElastiCache alternative, experiment S8)
``relay_sort``         sort with serverless functions exchanging via an
                       in-memory relay on a provisioned VM —
                       configuration **D** (experiment S8's third
                       substrate)
``sharded_relay_sort`` sort with serverless functions exchanging via a
                       sharded multi-relay fleet — configuration **E**
                       (experiment S8b: lifts the single relay's NIC
                       ceiling with N instances)
``auto_sort``          adaptive sort: picks the exchange substrate at
                       DAG-execution time with
                       ``choose_exchange_substrate`` and dispatches to
                       the chosen substrate's sort stage, recording the
                       decision in the stage report; with
                       ``modes=("staged", "streaming")`` the execution
                       mode is a decision variable too, and with
                       ``online=True`` the decision keeps being re-made
                       *between chunks* of the running exchange
``online_sort``        mid-stream adaptive sort: runs
                       ``OnlineShuffleSort``, which re-fits calibration
                       from observed chunk rates after every wave and
                       may switch substrate/mode/workers mid-run,
                       recording a decision timeline (experiment S12)
``streaming_sort``     pipelined sort on any substrate: the reduce wave
                       launches concurrently with the map wave and
                       reducers consume partitions while mappers are
                       still producing (experiment S10)
``methcomp_encode``    embarrassingly parallel METHCOMP compression of
                       the sorted runs with cloud functions
``methcomp_verify``    decompress and check record conservation
==================  ====================================================

Both sort kinds produce the same artifact shape (a list of sorted runs
in partition order), so the encode stage is substrate-agnostic —
exactly the property the paper's comparison relies on.
"""

from __future__ import annotations

import typing as t

from repro.cas import cas_enabled
from repro.core.calibration import WorkloadParams
from repro.errors import WorkflowError
from repro.executor.executor import FunctionExecutor
from repro.methcomp.bed import bed_sort_key
from repro.methcomp.datagen import MethylomeGenerator, generate_skewed_bed_bytes
from repro.methcomp.pipeline import bed_record_codec, decode_worker, encode_worker
from repro.cloud.vm.fleet import fleet_ready, provision_fleet
from repro.cloud.vm.relay import provision_relay, relay_ready
from repro.shuffle.adaptive import choose_exchange_substrate
from repro.shuffle.cacheoperator import CacheShuffleSort
from repro.shuffle.content import (
    LineageCache,
    lineage_cache_for,
    lineage_outputs_present,
)
from repro.shuffle.cacheplanner import required_cache_nodes
from repro.shuffle.online import OnlineShuffleSort
from repro.shuffle.operator import ShuffleSort
from repro.shuffle.relay import RelayShuffleSort, ShardedRelayShuffleSort
from repro.shuffle.relayplanner import (
    required_relay_fleet,
    required_relay_instance,
)
from repro.shuffle.streaming import (
    STREAMING_BACKENDS,
    StreamConfig,
    StreamingShuffleSort,
)
from repro.storage import paths
from repro.workflows.engine import StageContext, register_stage_kind, stage_kind

#: Engine-level cache of function executors, one per memory size, so
#: consecutive stages share warm containers (Lithops runtime reuse).
_EXECUTOR_CACHE_ATTR = "_repro_executor_cache"


def _workload(context: StageContext) -> WorkloadParams:
    """Workload params attached to the engine (or library defaults)."""
    workload = getattr(context.engine, "workload", None)
    return workload if workload is not None else WorkloadParams()


def _function_executor(context: StageContext, memory_mb: int) -> FunctionExecutor:
    cache = getattr(context.engine, _EXECUTOR_CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(context.engine, _EXECUTOR_CACHE_ATTR, cache)
    if memory_mb not in cache:
        cache[memory_mb] = FunctionExecutor(
            context.cloud,
            runtime_memory_mb=memory_mb,
            bucket=context.bucket,
        )
    return cache[memory_mb]


def _single_input(inputs: dict[str, t.Any], stage: str) -> t.Any:
    if len(inputs) != 1:
        raise WorkflowError(
            f"stage {stage!r} expects exactly one upstream stage, "
            f"got {sorted(inputs)}"
        )
    return next(iter(inputs.values()))


# ----------------------------------------------------------------------
# provisioned-substrate lifecycle (shared by staged and streaming sorts)
# ----------------------------------------------------------------------
def _validated_provisioning(context: StageContext) -> str:
    provisioning = context.param("provisioning", "warm")
    if provisioning not in ("warm", "cold"):
        raise WorkflowError(
            f"stage {context.spec.name!r}: provisioning must be 'warm' or "
            f"'cold', got {provisioning!r}"
        )
    return provisioning


def _provision_cache_cluster(context: StageContext, logical_bytes) -> t.Generator:
    """Size and provision the stage's cache cluster (params:
    ``node_type``, ``nodes`` — 0 sizes to fit — and ``provisioning``)."""
    node_type = context.param("node_type", "cache.r5.large")
    nodes = int(context.param("nodes", 0))
    if nodes < 1:
        nodes = required_cache_nodes(
            logical_bytes, context.cloud.profile, node_type
        )
    if _validated_provisioning(context) == "cold":
        cluster = yield context.cloud.cache.provision(node_type, nodes)
    else:
        cluster = context.cloud.cache.provision_ready(node_type, nodes)
    return cluster


def _provision_relay_vm(context: StageContext, logical_bytes) -> t.Generator:
    """Size and provision the stage's relay VM (params:
    ``instance_type`` — omit to auto-size — and ``provisioning``)."""
    instance_type = context.param("instance_type")
    if not instance_type:
        instance_type = required_relay_instance(
            logical_bytes, context.cloud.profile
        )
    if _validated_provisioning(context) == "cold":
        relay = yield provision_relay(context.cloud.vms, instance_type)
    else:
        relay = relay_ready(context.cloud.vms, instance_type)
    return relay


def _provision_relay_shards(context: StageContext, logical_bytes) -> t.Generator:
    """Size and provision the stage's relay fleet (params:
    ``instance_type``, ``shards`` — 0 auto-sizes — and ``provisioning``)."""
    instance_type = context.param("instance_type")
    shards = int(context.param("shards", 2))
    if shards < 1 or not instance_type:
        auto_type, min_shards = required_relay_fleet(
            logical_bytes, context.cloud.profile,
            instance_type_name=instance_type or None,
        )
        instance_type = instance_type or auto_type
        shards = max(shards, min_shards) if shards >= 1 else min_shards
    if _validated_provisioning(context) == "cold":
        fleet = yield provision_fleet(context.cloud.vms, instance_type, shards)
    else:
        fleet = fleet_ready(context.cloud.vms, instance_type, shards)
    return fleet


def _release_substrate(provisioned, fleet: bool = False) -> None:
    """Stop a stage-scoped substrate's billing clocks (idempotent).

    Fleets terminate unconditionally: per-shard termination is
    idempotent, and a partially-down fleet must still stop the
    surviving shards' clocks.
    """
    if provisioned is None:
        return
    if fleet:
        provisioned.terminate()
    elif provisioned.state == "running":
        provisioned.terminate()


# ----------------------------------------------------------------------
# dataset stages
# ----------------------------------------------------------------------
def methylome_dataset(context: StageContext, inputs: dict) -> t.Generator:
    """Generate and upload the synthetic methylome.

    Params: ``size_gb`` (logical; real bytes are divided by the cloud's
    ``logical_scale``), ``seed``, ``key``, ``sorted`` (default False —
    raw pipeline input is unsorted, that is why the sort stage exists),
    ``distribution`` (``"uniform"`` default, or a skewed key law from
    :data:`repro.shuffle.skew.KEY_DISTRIBUTIONS`: ``"zipf"``,
    ``"heavy-dup"``, ``"sorted-runs"``, ``"late-hot"``) with its
    ``zipf_s`` / ``distinct_keys`` knobs.
    """
    size_gb = float(context.param("size_gb", required=True))
    seed = int(context.param("seed", 0))
    key = context.param("key", "input/methylome.bed")
    scale = context.cloud.logical_scale
    real_bytes = max(1, int(size_gb * (1 << 30) / scale))
    distribution = context.param("distribution", "uniform")
    if distribution == "uniform":
        generator = MethylomeGenerator(seed=seed)
        payload = generator.generate_bed_bytes(
            real_bytes, sorted_output=bool(context.param("sorted", False))
        )
    else:
        payload = generate_skewed_bed_bytes(
            real_bytes,
            seed=seed,
            distribution=distribution,
            zipf_s=float(context.param("zipf_s", 1.2)),
            distinct_keys=int(context.param("distinct_keys", 64)),
        )
    meta = yield context.cloud.store.put(context.bucket, key, payload)
    return {
        "bucket": context.bucket,
        "key": key,
        "real_bytes": meta.size,
        "logical_bytes": meta.logical_size,
        "records": payload.count(b"\n"),
    }


def dataset_ref(context: StageContext, inputs: dict) -> t.Generator:
    """Reference an existing object (pre-staged input data).

    Params: ``key``, optional ``bucket`` (defaults to the workflow
    bucket), optional ``records`` (for downstream verification).
    """
    bucket = context.param("bucket", context.bucket)
    key = context.param("key", required=True)
    meta = yield context.cloud.store.head(bucket, key)
    return {
        "bucket": bucket,
        "key": key,
        "real_bytes": meta.size,
        "logical_bytes": meta.logical_size,
        "records": context.param("records"),
    }


# ----------------------------------------------------------------------
# sort stages (the paper's two configurations)
# ----------------------------------------------------------------------
def shuffle_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Configuration B: pure serverless sort through object storage.

    Params: ``workers`` (pin the count; omit to let the Primula planner
    choose), ``max_workers``, ``memory_mb``, ``samplers``.
    """
    upstream = _single_input(inputs, context.spec.name)
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    operator = ShuffleSort(
        executor, bed_record_codec(), cost=workload.shuffle_cost_model()
    )
    result = yield operator.sort(
        upstream["bucket"],
        upstream["key"],
        out_bucket=context.bucket,
        out_prefix=f"{context.spec.name}",
        workers=context.param("workers"),
        samplers=int(context.param("samplers", 8)),
        max_workers=int(context.param("max_workers", 256)),
    )
    return {
        "runs": [
            {
                "bucket": run.bucket,
                "key": run.key,
                "records": run.records,
                "bytes": run.size_bytes,
            }
            for run in result.runs
        ],
        "workers": result.workers,
        "records": result.total_records,
        "duration_s": result.duration_s,
        "planned_workers": result.planned.workers if result.planned else None,
        "substrate": operator.report.substrate,
        "predicted_s": operator.report.predicted_s,
        "actual_s": operator.report.actual_s,
    }


def cache_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Configuration C: serverless sort exchanging via a cache cluster.

    Params: ``workers`` (pin the count; omit to let the cache planner
    choose), ``memory_mb``, ``samplers``, ``max_workers``,
    ``node_type`` (default cache.r5.large), ``nodes`` (0 = size the
    cluster to fit the data), ``provisioning`` (``"warm"`` pre-provisioned
    or ``"cold"`` on the clock), ``cleanup``.

    The cluster lives exactly as long as the stage; its node-seconds are
    billed into the stage's cost either way.
    """
    upstream = _single_input(inputs, context.spec.name)
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    cluster = yield from _provision_cache_cluster(
        context, upstream["logical_bytes"]
    )
    cost = workload.cache_shuffle_cost_model()
    cost.cleanup = bool(context.param("cleanup", False))
    operator = CacheShuffleSort(executor, bed_record_codec(), cluster, cost=cost)
    try:
        result = yield operator.sort(
            upstream["bucket"],
            upstream["key"],
            out_bucket=context.bucket,
            out_prefix=f"{context.spec.name}",
            workers=context.param("workers"),
            samplers=int(context.param("samplers", 8)),
            max_workers=int(context.param("max_workers", 256)),
        )
    finally:
        _release_substrate(cluster)
    return {
        "runs": [
            {
                "bucket": run.bucket,
                "key": run.key,
                "records": run.records,
                "bytes": run.size_bytes,
            }
            for run in result.runs
        ],
        "workers": result.workers,
        "records": result.total_records,
        "duration_s": result.duration_s,
        "planned_workers": result.planned.workers if result.planned else None,
        "substrate": operator.report.substrate,
        "predicted_s": operator.report.predicted_s,
        "actual_s": operator.report.actual_s,
        "cache_nodes": operator.report.nodes,
        "cache_node_type": operator.report.node_type,
        "cache_peak_fill": operator.report.peak_fill_fraction,
    }


def relay_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Configuration D: serverless sort exchanging via a VM relay.

    Params: ``workers`` (pin the count; omit to let the relay planner
    choose), ``memory_mb``, ``samplers``, ``max_workers``,
    ``instance_type`` (omit to auto-size the smallest flavour that
    holds the data), ``provisioning`` (``"warm"`` pre-provisioned or
    ``"cold"`` pays VM boot on the clock), ``consume`` (default False —
    opt-in reducer-side deletion for crash-free runs; the relay VM is
    terminated at stage end either way, reclaiming everything).

    The relay VM lives exactly as long as the stage; its instance-
    seconds are billed into the stage's cost either way.
    """
    upstream = _single_input(inputs, context.spec.name)
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    relay = yield from _provision_relay_vm(context, upstream["logical_bytes"])
    cost = workload.relay_shuffle_cost_model()
    cost.consume = bool(context.param("consume", False))
    operator = RelayShuffleSort(executor, bed_record_codec(), relay, cost=cost)
    try:
        result = yield operator.sort(
            upstream["bucket"],
            upstream["key"],
            out_bucket=context.bucket,
            out_prefix=f"{context.spec.name}",
            workers=context.param("workers"),
            samplers=int(context.param("samplers", 8)),
            max_workers=int(context.param("max_workers", 256)),
        )
    finally:
        _release_substrate(relay)
    return {
        "runs": [
            {
                "bucket": run.bucket,
                "key": run.key,
                "records": run.records,
                "bytes": run.size_bytes,
            }
            for run in result.runs
        ],
        "workers": result.workers,
        "records": result.total_records,
        "duration_s": result.duration_s,
        "planned_workers": result.planned.workers if result.planned else None,
        "substrate": operator.report.substrate,
        "predicted_s": operator.report.predicted_s,
        "actual_s": operator.report.actual_s,
        "relay_instance_type": operator.report.instance_type,
        "relay_peak_fill": operator.report.peak_fill_fraction,
        "relay_backpressure_waits": operator.report.backpressure_waits,
    }


def sharded_relay_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Configuration E: serverless sort via a sharded VM-relay fleet.

    Params: ``workers`` (pin the count; omit to let the relay planner
    choose), ``memory_mb``, ``samplers``, ``max_workers``, ``shards``
    (default 2; ``0`` auto-sizes the fleet), ``instance_type`` (omit to
    auto-size the cheapest flavour whose fleet holds the data),
    ``provisioning`` (``"warm"`` pre-provisioned or ``"cold"`` pays the
    parallel VM boots on the clock), ``consume``.

    The fleet lives exactly as long as the stage; all N instances'
    instance-seconds are billed into the stage's cost either way.
    """
    upstream = _single_input(inputs, context.spec.name)
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    fleet = yield from _provision_relay_shards(
        context, upstream["logical_bytes"]
    )
    cost = workload.relay_shuffle_cost_model()
    cost.consume = bool(context.param("consume", False))
    operator = ShardedRelayShuffleSort(executor, bed_record_codec(), fleet, cost=cost)
    try:
        result = yield operator.sort(
            upstream["bucket"],
            upstream["key"],
            out_bucket=context.bucket,
            out_prefix=f"{context.spec.name}",
            workers=context.param("workers"),
            samplers=int(context.param("samplers", 8)),
            max_workers=int(context.param("max_workers", 256)),
        )
    finally:
        _release_substrate(fleet, fleet=True)
    return {
        "runs": [
            {
                "bucket": run.bucket,
                "key": run.key,
                "records": run.records,
                "bytes": run.size_bytes,
            }
            for run in result.runs
        ],
        "workers": result.workers,
        "records": result.total_records,
        "duration_s": result.duration_s,
        "planned_workers": result.planned.workers if result.planned else None,
        "substrate": operator.report.substrate,
        "predicted_s": operator.report.predicted_s,
        "actual_s": operator.report.actual_s,
        "relay_instance_type": operator.report.instance_type,
        "relay_shards": operator.report.shards,
        "relay_peak_fill": operator.report.peak_fill_fraction,
        "relay_backpressure_waits": operator.report.backpressure_waits,
    }


def streaming_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Pipelined sort: the reduce wave overlaps the map wave.

    Runs :class:`~repro.shuffle.streaming.StreamingShuffleSort` on any
    of the four exchange substrates — reducers subscribe to their
    partition through the substrate's readiness protocol (manifest
    polling on COS, set notification on the cache, rendezvous pulls on
    the relays) and consume chunks while mappers are still producing,
    behind bounded buffers that exert backpressure.

    Params: ``substrate`` (``objectstore`` default, or ``cache`` /
    ``relay`` / ``sharded-relay``), ``chunk_mb`` (logical chunk grain,
    default 32), ``buffer_mb`` (reducer buffer bound, default 256; 0
    disables backpressure), ``poll_interval`` (COS manifest polls,
    default 0.2 s), plus the chosen substrate's usual provisioning
    params (``node_type``/``nodes``, ``instance_type``, ``shards``,
    ``provisioning``) and the generic
    ``workers``/``memory_mb``/``samplers``/``max_workers``.

    The artifact carries the streaming observables next to the usual
    sort fields: measured map/reduce ``overlap_s``, the reducer
    buffers' high watermark, and the summed backpressure waits.
    """
    upstream = _single_input(inputs, context.spec.name)
    substrate = context.param("substrate", "objectstore")
    if substrate not in STREAMING_BACKENDS:
        raise WorkflowError(
            f"stage {context.spec.name!r}: unknown substrate {substrate!r}; "
            f"expected one of {sorted(STREAMING_BACKENDS)}"
        )
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    buffer_mb = float(context.param("buffer_mb", 256.0))
    stream = StreamConfig(
        chunk_bytes=float(context.param("chunk_mb", 32.0)) * (1 << 20),
        buffer_bytes=buffer_mb * (1 << 20) if buffer_mb > 0 else None,
        poll_interval_s=float(context.param("poll_interval", 0.2)),
    )
    _validated_provisioning(context)  # fail fast before provisioning

    provisioned = None
    if substrate == "objectstore":
        backend = STREAMING_BACKENDS[substrate](
            cost=workload.shuffle_cost_model(), stream=stream
        )
    elif substrate == "cache":
        provisioned = yield from _provision_cache_cluster(
            context, upstream["logical_bytes"]
        )
        backend = STREAMING_BACKENDS[substrate](
            provisioned, cost=workload.cache_shuffle_cost_model(), stream=stream
        )
    else:
        if substrate == "relay":
            provisioned = yield from _provision_relay_vm(
                context, upstream["logical_bytes"]
            )
        else:  # sharded-relay
            provisioned = yield from _provision_relay_shards(
                context, upstream["logical_bytes"]
            )
        backend = STREAMING_BACKENDS[substrate](
            provisioned, cost=workload.relay_shuffle_cost_model(), stream=stream
        )

    operator = StreamingShuffleSort(executor, bed_record_codec(), backend=backend)
    try:
        result = yield operator.sort(
            upstream["bucket"],
            upstream["key"],
            out_bucket=context.bucket,
            out_prefix=f"{context.spec.name}",
            workers=context.param("workers"),
            samplers=int(context.param("samplers", 8)),
            max_workers=int(context.param("max_workers", 256)),
        )
    finally:
        _release_substrate(provisioned, fleet=substrate == "sharded-relay")
    report = operator.report
    return {
        "runs": [
            {
                "bucket": run.bucket,
                "key": run.key,
                "records": run.records,
                "bytes": run.size_bytes,
            }
            for run in result.runs
        ],
        "workers": result.workers,
        "records": result.total_records,
        "duration_s": result.duration_s,
        "planned_workers": result.planned.workers if result.planned else None,
        "substrate": substrate,
        "mode": report.mode,
        "predicted_s": report.predicted_s,
        "actual_s": report.actual_s,
        "overlap_s": report.overlap_s,
        "buffer_high_watermark_bytes": report.buffer_high_watermark_bytes,
        "buffer_backpressure_waits": report.buffer_backpressure_waits,
        "stream_chunks": report.stream_chunks,
    }


# ----------------------------------------------------------------------
# warm-run lineage cache (adaptive sorts)
# ----------------------------------------------------------------------
def _plan_value(value: t.Any) -> t.Any:
    """Coerce a stage param into the canonical hash encoding's domain."""
    if isinstance(value, (type(None), bool, int, float, str, bytes)):
        return value
    if isinstance(value, (list, tuple)):
        return [_plan_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plan_value(item) for key, item in value.items()}
    return repr(value)


def _lineage_lookup(context: StageContext, upstream: dict) -> t.Generator:
    """HEAD the input and look up (input, plan) in the lineage cache.

    The fingerprint covers the input's identity (etag + logical size)
    and the stage's *plan* — its full param dict — but deliberately not
    the stage name: two differently-named stages sorting the same input
    the same way are the same computation, and a hit returns the prior
    output manifest without provisioning anything.  Priced at exactly
    the one HEAD (control-plane cost); a hit whose outputs were deleted
    or overwritten degrades to a miss.

    Returns ``(fingerprint, artifact-or-None)``.
    """
    store = context.cloud.store
    meta = yield store.head(upstream["bucket"], upstream["key"])
    fingerprint = LineageCache.fingerprint(
        {
            "bucket": upstream["bucket"],
            "key": upstream["key"],
            "etag": meta.etag,
            "logical_size": meta.logical_size,
        },
        {name: _plan_value(value) for name, value in context.params.items()},
    )
    cache = lineage_cache_for(store)
    entry = cache.get(fingerprint)
    if entry is not None and lineage_outputs_present(store, entry.artifact):
        entry.hits += 1
        artifact = dict(entry.artifact)
        artifact["lineage"] = "hit"
        artifact["lineage_hits"] = entry.hits
        return fingerprint, artifact
    return fingerprint, None


def _lineage_store(
    context: StageContext, fingerprint: str | None, artifact: dict
) -> None:
    """Record a cold sort's artifact under its lineage fingerprint."""
    if fingerprint is None:
        return
    artifact["lineage"] = "miss"
    artifact["lineage_key"] = fingerprint[:16]
    lineage_cache_for(context.cloud.store).put(fingerprint, artifact)


#: Substrate name → stage kind executing that substrate's sort.
_AUTO_SORT_DISPATCH: dict[str, str] = {
    "objectstore": "shuffle_sort",
    "cache": "cache_sort",
    "relay": "relay_sort",
    "sharded-relay": "sharded_relay_sort",
}


def auto_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Adaptive sort: choose the exchange substrate at execution time.

    Calls :func:`~repro.shuffle.adaptive.choose_exchange_substrate` on
    the upstream dataset's logical size, then dispatches to the chosen
    substrate's sort stage with the decision's configuration (worker
    count, relay flavour, shard count) injected, so the stage executes
    exactly what was priced.  The decision — every substrate's priced
    estimate and the winner — is recorded in the stage artifact (and
    thereby the tracker report and Gantt label).

    Params: ``time_value_usd_per_hour`` (default 1.0 — the knob that
    trades latency against provisioned infrastructure), ``workers``
    (pin the count across all substrates; omit to let each plan its
    own), ``substrates`` (restrict the candidates), ``modes``
    (``("staged",)`` by default; add ``"streaming"`` to price the
    pipelined execution mode as a second decision variable — a
    streaming winner dispatches to ``streaming_sort``),
    ``stream_chunk_mb``/``stream_buffer_mb`` (the streaming grain and
    reducer buffer bound, used both for pricing and execution),
    ``max_relay_shards`` (default 8), ``cache_node_type``,
    ``instance_type`` (pin the relay flavour), ``partition_skew``
    (expected max-over-mean partition bytes, default 1.0 — prices the
    straggler reducer in every candidate model, so a skewed workload
    may pick a different substrate/mode/configuration than a uniform
    one of the same size), plus the usual
    ``memory_mb``/``samplers``/``max_workers`` passed through to the
    dispatched stage.
    """
    if bool(context.param("online", False)):
        impl = stage_kind("online_sort")
        return (yield from impl(context, inputs))
    upstream = _single_input(inputs, context.spec.name)
    lineage_key = None
    if cas_enabled():
        lineage_key, cached = yield from _lineage_lookup(context, upstream)
        if cached is not None:
            return cached
    substrates = context.param("substrates")
    modes = context.param("modes")
    stream_chunk_mb = float(context.param("stream_chunk_mb", 32.0))
    workload = _workload(context)
    # Price with the same calibrated workload constants the dispatched
    # stage will execute with — a decision made for a faster imaginary
    # workload could pick the wrong substrate outright.
    decision = choose_exchange_substrate(
        upstream["logical_bytes"],
        context.cloud.profile,
        workers=context.param("workers"),
        cache_node_type=context.param("cache_node_type", "cache.r5.large"),
        relay_instance_type=context.param("instance_type") or None,
        time_value_usd_per_hour=float(
            context.param("time_value_usd_per_hour", 1.0)
        ),
        max_workers=int(context.param("max_workers", 256)),
        max_relay_shards=int(context.param("max_relay_shards", 8)),
        substrates=tuple(substrates) if substrates is not None else None,
        modes=tuple(modes) if modes is not None else ("staged",),
        stream_chunk_bytes=stream_chunk_mb * (1 << 20),
        partition_skew=float(context.param("partition_skew", 1.0)),
        shuffle_cost=workload.shuffle_cost_model(),
        cache_cost=workload.cache_shuffle_cost_model(),
        relay_cost=workload.relay_shuffle_cost_model(),
    )
    chosen = decision.chosen
    # Execute exactly the configuration the estimate priced.
    context.params["workers"] = chosen.workers
    if chosen.mode == "streaming":
        impl = stage_kind("streaming_sort")
        context.params["substrate"] = chosen.substrate
        context.params["chunk_mb"] = stream_chunk_mb
        context.params["buffer_mb"] = float(
            context.param("stream_buffer_mb", 256.0)
        )
    else:
        impl = stage_kind(_AUTO_SORT_DISPATCH[chosen.substrate])
    if chosen.substrate == "cache":
        context.params["node_type"] = chosen.instance_type
        context.params["nodes"] = chosen.shards
    elif chosen.substrate == "relay":
        context.params["instance_type"] = chosen.instance_type
    elif chosen.substrate == "sharded-relay":
        context.params["instance_type"] = chosen.instance_type
        context.params["shards"] = chosen.shards
    artifact = yield from impl(context, inputs)
    artifact.update(
        substrate=chosen.substrate,
        substrate_mode=chosen.mode,
        substrate_workers=chosen.workers,
        substrate_predicted_s=chosen.predicted_s,
        substrate_provisioned_usd=chosen.provisioned_usd,
        substrate_score_usd=chosen.score_usd,
        substrate_decision=decision.describe(),
        # One-point "timeline" so static and online artifacts share a
        # shape (the online stage appends a point per re-selection).
        substrate_timeline=[decision.describe()],
        substrate_switches=0,
    )
    _lineage_store(context, lineage_key, artifact)
    return artifact


def online_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Mid-stream adaptive sort: re-select the substrate *between chunks*.

    Runs :class:`~repro.shuffle.online.OnlineShuffleSort`: the exchange
    substrate, execution mode and worker count are re-chosen after
    every streaming wave from calibration refit on the waves' own
    observed chunk publish rates, and the relay fleet's routing is
    refined at chunk grain when a hot partition emerges mid-stream.

    Params mirror ``auto_sort`` (``time_value_usd_per_hour``,
    ``workers``, ``substrates``, ``modes`` — default
    ``("staged", "streaming")`` here, the online loop's natural set —
    ``stream_chunk_mb``/``stream_buffer_mb``, ``max_relay_shards``,
    ``cache_node_type``, ``instance_type``, ``partition_skew``,
    ``memory_mb``/``samplers``/``max_workers``) plus ``switch_margin``
    (hysteresis fraction a candidate must undercut the running
    configuration's refit score by; default 0.05).

    The artifact records the whole decision timeline:
    ``substrate_decision`` (the rendered timeline),
    ``substrate_timeline`` (one entry per decision point),
    ``substrate_switches`` and ``chunk_reroutes``.
    """
    upstream = _single_input(inputs, context.spec.name)
    lineage_key = None
    if cas_enabled():
        lineage_key, cached = yield from _lineage_lookup(context, upstream)
        if cached is not None:
            return cached
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    substrates = context.param("substrates")
    modes = context.param("modes")
    buffer_mb = float(context.param("stream_buffer_mb", 256.0))
    stream = StreamConfig(
        chunk_bytes=float(context.param("stream_chunk_mb", 32.0)) * (1 << 20),
        buffer_bytes=buffer_mb * (1 << 20) if buffer_mb > 0 else None,
        poll_interval_s=float(context.param("poll_interval", 0.2)),
    )
    operator = OnlineShuffleSort(
        executor,
        bed_record_codec(),
        stream=stream,
        shuffle_cost=workload.shuffle_cost_model(),
        cache_cost=workload.cache_shuffle_cost_model(),
        relay_cost=workload.relay_shuffle_cost_model(),
        time_value_usd_per_hour=float(
            context.param("time_value_usd_per_hour", 1.0)
        ),
        substrates=tuple(substrates) if substrates is not None else None,
        modes=tuple(modes) if modes is not None else ("staged", "streaming"),
        cache_node_type=context.param("cache_node_type", "cache.r5.large"),
        relay_instance_type=context.param("instance_type") or None,
        max_relay_shards=int(context.param("max_relay_shards", 8)),
        partition_skew=float(context.param("partition_skew", 1.0)),
        switch_margin=float(context.param("switch_margin", 0.05)),
    )
    result = yield operator.sort(
        upstream["bucket"],
        upstream["key"],
        out_bucket=context.bucket,
        out_prefix=f"{context.spec.name}",
        workers=context.param("workers"),
        samplers=int(context.param("samplers", 8)),
        max_workers=int(context.param("max_workers", 256)),
    )
    report = operator.report
    timeline = operator.timeline
    final = timeline.final.decision.chosen
    artifact = {
        "runs": [
            {
                "bucket": run.bucket,
                "key": run.key,
                "records": run.records,
                "bytes": run.size_bytes,
            }
            for run in result.runs
        ],
        "workers": result.workers,
        "records": result.total_records,
        "duration_s": result.duration_s,
        "planned_workers": None,
        "substrate": final.substrate,
        "substrate_mode": "online",
        "substrate_workers": final.workers,
        "predicted_s": report.predicted_s,
        "actual_s": report.actual_s,
        "substrate_predicted_s": final.predicted_s,
        "substrate_provisioned_usd": report.provisioned_usd,
        "substrate_score_usd": final.score_usd,
        "substrate_decision": timeline.describe(),
        "substrate_timeline": [point.describe() for point in timeline],
        "substrate_switches": timeline.switches,
        "chunk_reroutes": operator.chunk_reroutes,
        "overlap_s": report.overlap_s,
        "buffer_high_watermark_bytes": report.buffer_high_watermark_bytes,
        "buffer_backpressure_waits": report.buffer_backpressure_waits,
        "stream_chunks": report.stream_chunks,
    }
    _lineage_store(context, lineage_key, artifact)
    return artifact


def vm_sort(context: StageContext, inputs: dict) -> t.Generator:
    """Configuration A: sort inside a large-memory VM.

    Params: ``instance_type`` (default bx2-8x32), ``partitions`` (output
    runs; default 8), ``download_chunk_mb`` (range-GET granularity).

    The VM downloads the whole object with parallel ranged GETs, parses
    and sorts it in memory using all vCPUs, range-partitions the result
    and uploads the runs — then terminates.  Data still passes through
    object storage (the paper keeps COS as the data-passing mechanism in
    both pipelines); what changes is *where the all-to-all happens*.
    """
    upstream = _single_input(inputs, context.spec.name)
    instance_type = context.param("instance_type", "bx2-8x32")
    partitions = int(context.param("partitions", 8))
    # The chunk granularity is a *logical* size: scaled-down runs must
    # still spread the download over the same number of connections.
    chunk_logical = int(context.param("download_chunk_mb", 32)) * (1 << 20)
    chunk_real = max(1, int(chunk_logical / context.cloud.logical_scale))
    workload = _workload(context)
    bucket = context.bucket
    stage_name = context.spec.name

    vm = yield context.cloud.vms.provision(instance_type)

    def sort_task(vm_context) -> t.Generator:
        meta = yield vm_context.storage.head(upstream["bucket"], upstream["key"])
        size = meta.size

        # Parallel ranged download through the NIC-capped io slots.
        offsets = list(range(0, size, chunk_real)) or [0]
        chunks: dict[int, bytes] = {}

        def fetch(index: int, start: int) -> t.Generator:
            yield vm_context.io_slot().acquire()
            try:
                chunks[index] = yield vm_context.storage.get_range(
                    upstream["bucket"], upstream["key"], start,
                    min(size, start + chunk_real),
                )
            finally:
                vm_context.io_slot().release()

        fetchers = [
            vm_context.sim.process(fetch(index, start), name=f"vmfetch{index}")
            for index, start in enumerate(offsets)
        ]
        yield vm_context.sim.all_of([process.completion for process in fetchers])
        payload = b"".join(chunks[index] for index in sorted(chunks))

        # Parse + sort on all vCPUs (modeled CPU; real sort on real data).
        lines = payload.split(b"\n")[:-1]
        lines.sort(key=bed_sort_key)
        vcpus = vm.instance_type.vcpus
        total_cpu = (
            len(payload) * vm_context.logical_scale / workload.vm_sort_throughput
        )
        workers = [vm_context.compute(total_cpu / vcpus) for _ in range(vcpus)]
        yield vm_context.sim.all_of(workers)

        # Range partitioning = equal-count contiguous slices of the
        # sorted list; upload the runs in parallel.
        run_puts = []
        run_infos = []
        base, remainder = divmod(len(lines), partitions)
        cursor = 0
        for reducer_id in range(partitions):
            count = base + (1 if reducer_id < remainder else 0)
            body = b"".join(
                line + b"\n" for line in lines[cursor : cursor + count]
            )
            cursor += count
            key = paths.shuffle_output_key(stage_name, reducer_id)
            run_puts.append((bucket, key, body))
            run_infos.append(
                {
                    "bucket": bucket,
                    "key": key,
                    "records": count,
                    "bytes": len(body),
                }
            )
        yield vm_context.parallel_put(run_puts)
        return run_infos

    started = context.sim.now
    run_infos = yield vm.run(sort_task, name="sort")
    vm.terminate()
    return {
        "runs": run_infos,
        "workers": partitions,
        "records": sum(info["records"] for info in run_infos),
        "duration_s": context.sim.now - started,
        "vm_type": instance_type,
    }


# ----------------------------------------------------------------------
# encode / verify stages
# ----------------------------------------------------------------------
def methcomp_encode(context: StageContext, inputs: dict) -> t.Generator:
    """Compress each sorted run with the METHCOMP codec (cloud functions).

    Params: ``memory_mb`` (default 2048).  Parallelism equals the number
    of runs produced by the sort stage (the paper's second stage is
    embarrassingly parallel over partitions).
    """
    upstream = _single_input(inputs, context.spec.name)
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    tasks = [
        {
            "bucket": run["bucket"],
            "key": run["key"],
            "out_bucket": context.bucket,
            "out_key": f"{context.spec.name}/block{index:05d}.mcmp",
            "throughput_bps": workload.encode_throughput,
        }
        for index, run in enumerate(upstream["runs"])
    ]
    futures = yield executor.map(encode_worker, tasks)
    results = yield executor.get_result(futures)
    raw_bytes = sum(result["raw_bytes"] for result in results)
    compressed_bytes = sum(result["compressed_bytes"] for result in results)
    return {
        "blocks": [
            {"bucket": context.bucket, "key": result["out_key"],
             "records": result["records"]}
            for result in results
        ],
        "records": sum(result["records"] for result in results),
        "raw_bytes": raw_bytes,
        "compressed_bytes": compressed_bytes,
        "ratio": (raw_bytes / compressed_bytes) if compressed_bytes else 0.0,
        "workers": len(tasks),
    }


def methcomp_verify(context: StageContext, inputs: dict) -> t.Generator:
    """Decompress every block and check record conservation.

    Params: ``memory_mb``.  Fails the workflow if records were lost.
    """
    upstream = _single_input(inputs, context.spec.name)
    memory_mb = int(context.param("memory_mb", 2048))
    executor = _function_executor(context, memory_mb)
    workload = _workload(context)
    tasks = [
        {
            "bucket": block["bucket"],
            "key": block["key"],
            "out_bucket": context.bucket,
            "out_key": f"{context.spec.name}/restored{index:05d}.bed",
            "throughput_bps": workload.decode_throughput,
        }
        for index, block in enumerate(upstream["blocks"])
    ]
    futures = yield executor.map(decode_worker, tasks)
    results = yield executor.get_result(futures)
    restored = sum(result["records"] for result in results)
    expected = upstream["records"]
    if restored != expected:
        raise WorkflowError(
            f"verification failed: restored {restored} records, "
            f"expected {expected}"
        )
    return {"verified": True, "records": restored}


def register_builtin_stage_kinds() -> None:
    """Idempotently register the METHCOMP stage kinds."""
    from repro.workflows.engine import registered_kinds

    builtin = {
        "methylome_dataset": methylome_dataset,
        "dataset_ref": dataset_ref,
        "shuffle_sort": shuffle_sort,
        "cache_sort": cache_sort,
        "relay_sort": relay_sort,
        "sharded_relay_sort": sharded_relay_sort,
        "streaming_sort": streaming_sort,
        "auto_sort": auto_sort,
        "online_sort": online_sort,
        "vm_sort": vm_sort,
        "methcomp_encode": methcomp_encode,
        "methcomp_verify": methcomp_verify,
    }
    existing = set(registered_kinds())
    for kind, impl in builtin.items():
        if kind not in existing:
            register_stage_kind(kind, impl)


register_builtin_stage_kinds()
