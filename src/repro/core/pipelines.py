"""The METHCOMP pipeline incarnations (paper Figure 1, plus two).

* **Configuration B — purely serverless**: sort via the Primula shuffle
  through object storage, encode with cloud functions.
* **Configuration A — VM-supported (hybrid)**: sort inside a bx2-8x32
  VM, encode with cloud functions.
* **Configuration C — cache-supported** (supplementary, experiment S8):
  sort with cloud functions exchanging partitions through an in-memory
  cache cluster — the ElastiCache alternative the paper names.
* **Configuration D — relay-supported** (supplementary, experiment S8):
  sort with cloud functions exchanging partitions through an in-memory
  relay hosted on a provisioned VM — the VM-driven exchange of the
  title, with functions doing the compute.
* **Configuration E — sharded-relay-supported** (supplementary,
  experiment S8b): the relay exchange sharded over N VMs, lifting the
  single instance's NIC ceiling.
* **Streaming — pipelined waves** (experiment S10): the sort's reduce
  wave launches concurrently with its map wave on any substrate
  (``ExperimentConfig.stream_substrate``); reducers consume partitions
  while mappers are still producing, behind bounded backpressure
  buffers.
* **Auto — adaptive substrate**: the sort stage picks its exchange
  substrate at execution time via ``choose_exchange_substrate`` and
  records the decision in the stage report.

All take their input from a pre-staged object (``dataset_ref``), as in
the paper's demo where ENCFF988BSW already sits in COS, and all write
their sorted runs and compressed blocks to object storage.
"""

from __future__ import annotations

from repro.core.calibration import ExperimentConfig
from repro.workflows.dag import StageSpec, WorkflowDag

#: Names shared by all incarnations so reports line up.
INGEST_STAGE = "ingest"
SORT_STAGE = "sort"
ENCODE_STAGE = "encode"
VERIFY_STAGE = "verify"

PURE_SERVERLESS = "purely-serverless"
VM_SUPPORTED = "vm-supported"
CACHE_SUPPORTED = "cache-supported"
RELAY_SUPPORTED = "relay-supported"
SHARDED_RELAY_SUPPORTED = "sharded-relay-supported"
STREAMING_SUPPORTED = "streaming-supported"
AUTO_SUPPORTED = "auto-supported"


def pure_serverless_pipeline(
    config: ExperimentConfig,
    input_key: str = "input/methylome.bed",
    bucket: str = "pipeline",
    verify: bool = False,
) -> WorkflowDag:
    """Configuration B: shuffle-sort with functions, then encode."""
    workers = None if config.auto_workers else config.parallelism
    stages = [
        StageSpec(INGEST_STAGE, "dataset_ref", params={"key": input_key}),
        StageSpec(
            SORT_STAGE,
            "shuffle_sort",
            after=(INGEST_STAGE,),
            params={
                "workers": workers,
                "memory_mb": config.function_memory_mb,
                "max_workers": 256,
            },
        ),
        StageSpec(
            ENCODE_STAGE,
            "methcomp_encode",
            after=(SORT_STAGE,),
            params={"memory_mb": config.function_memory_mb},
        ),
    ]
    if verify:
        stages.append(
            StageSpec(
                VERIFY_STAGE,
                "methcomp_verify",
                after=(ENCODE_STAGE,),
                params={"memory_mb": config.function_memory_mb},
            )
        )
    return WorkflowDag(PURE_SERVERLESS, stages, bucket=bucket)


def vm_supported_pipeline(
    config: ExperimentConfig,
    input_key: str = "input/methylome.bed",
    bucket: str = "pipeline",
    verify: bool = False,
) -> WorkflowDag:
    """Configuration A: sort in a VM, encode with functions."""
    stages = [
        StageSpec(INGEST_STAGE, "dataset_ref", params={"key": input_key}),
        StageSpec(
            SORT_STAGE,
            "vm_sort",
            after=(INGEST_STAGE,),
            params={
                "instance_type": config.resolved_vm_instance_type,
                "partitions": config.parallelism,
            },
        ),
        StageSpec(
            ENCODE_STAGE,
            "methcomp_encode",
            after=(SORT_STAGE,),
            params={"memory_mb": config.function_memory_mb},
        ),
    ]
    if verify:
        stages.append(
            StageSpec(
                VERIFY_STAGE,
                "methcomp_verify",
                after=(ENCODE_STAGE,),
                params={"memory_mb": config.function_memory_mb},
            )
        )
    return WorkflowDag(VM_SUPPORTED, stages, bucket=bucket)


def cache_supported_pipeline(
    config: ExperimentConfig,
    input_key: str = "input/methylome.bed",
    bucket: str = "pipeline",
    verify: bool = False,
) -> WorkflowDag:
    """Configuration C: cache-mediated sort, then encode with functions."""
    workers = None if config.auto_workers else config.parallelism
    stages = [
        StageSpec(INGEST_STAGE, "dataset_ref", params={"key": input_key}),
        StageSpec(
            SORT_STAGE,
            "cache_sort",
            after=(INGEST_STAGE,),
            params={
                "workers": workers,
                "memory_mb": config.function_memory_mb,
                "max_workers": 256,
                "node_type": config.cache_node_type,
                "nodes": config.cache_nodes,
                "provisioning": config.cache_provisioning,
            },
        ),
        StageSpec(
            ENCODE_STAGE,
            "methcomp_encode",
            after=(SORT_STAGE,),
            params={"memory_mb": config.function_memory_mb},
        ),
    ]
    if verify:
        stages.append(
            StageSpec(
                VERIFY_STAGE,
                "methcomp_verify",
                after=(ENCODE_STAGE,),
                params={"memory_mb": config.function_memory_mb},
            )
        )
    return WorkflowDag(CACHE_SUPPORTED, stages, bucket=bucket)


def relay_supported_pipeline(
    config: ExperimentConfig,
    input_key: str = "input/methylome.bed",
    bucket: str = "pipeline",
    verify: bool = False,
) -> WorkflowDag:
    """Configuration D: VM-relay-mediated sort, then encode with functions."""
    workers = None if config.auto_workers else config.parallelism
    stages = [
        StageSpec(INGEST_STAGE, "dataset_ref", params={"key": input_key}),
        StageSpec(
            SORT_STAGE,
            "relay_sort",
            after=(INGEST_STAGE,),
            params={
                "workers": workers,
                "memory_mb": config.function_memory_mb,
                "max_workers": 256,
                "instance_type": config.resolved_relay_instance_type,
                "provisioning": config.relay_provisioning,
            },
        ),
        StageSpec(
            ENCODE_STAGE,
            "methcomp_encode",
            after=(SORT_STAGE,),
            params={"memory_mb": config.function_memory_mb},
        ),
    ]
    if verify:
        stages.append(
            StageSpec(
                VERIFY_STAGE,
                "methcomp_verify",
                after=(ENCODE_STAGE,),
                params={"memory_mb": config.function_memory_mb},
            )
        )
    return WorkflowDag(RELAY_SUPPORTED, stages, bucket=bucket)


def sharded_relay_supported_pipeline(
    config: ExperimentConfig,
    input_key: str = "input/methylome.bed",
    bucket: str = "pipeline",
    verify: bool = False,
) -> WorkflowDag:
    """Configuration E: sharded-fleet-mediated sort, then encode."""
    workers = None if config.auto_workers else config.parallelism
    stages = [
        StageSpec(INGEST_STAGE, "dataset_ref", params={"key": input_key}),
        StageSpec(
            SORT_STAGE,
            "sharded_relay_sort",
            after=(INGEST_STAGE,),
            params={
                "workers": workers,
                "memory_mb": config.function_memory_mb,
                "max_workers": 256,
                "instance_type": config.resolved_relay_instance_type,
                "shards": config.relay_shards,
                "provisioning": config.relay_provisioning,
            },
        ),
        StageSpec(
            ENCODE_STAGE,
            "methcomp_encode",
            after=(SORT_STAGE,),
            params={"memory_mb": config.function_memory_mb},
        ),
    ]
    if verify:
        stages.append(
            StageSpec(
                VERIFY_STAGE,
                "methcomp_verify",
                after=(ENCODE_STAGE,),
                params={"memory_mb": config.function_memory_mb},
            )
        )
    return WorkflowDag(SHARDED_RELAY_SUPPORTED, stages, bucket=bucket)


def streaming_supported_pipeline(
    config: ExperimentConfig,
    input_key: str = "input/methylome.bed",
    bucket: str = "pipeline",
    verify: bool = False,
) -> WorkflowDag:
    """Streaming incarnation: pipelined map→reduce sort, then encode.

    The sort runs on ``config.stream_substrate`` with the reduce wave
    overlapping the map wave; chunk grain and reducer buffer bound come
    from ``config.stream_chunk_mb`` / ``config.stream_buffer_mb``.
    """
    workers = None if config.auto_workers else config.parallelism
    substrate = config.stream_substrate
    sort_params: dict = {
        "substrate": substrate,
        "workers": workers,
        "memory_mb": config.function_memory_mb,
        "max_workers": 256,
        "chunk_mb": config.stream_chunk_mb,
        "buffer_mb": config.stream_buffer_mb,
    }
    if substrate == "cache":
        sort_params.update(
            node_type=config.cache_node_type,
            nodes=config.cache_nodes,
            provisioning=config.cache_provisioning,
        )
    elif substrate == "relay":
        sort_params.update(
            instance_type=config.resolved_relay_instance_type,
            provisioning=config.relay_provisioning,
        )
    elif substrate == "sharded-relay":
        sort_params.update(
            instance_type=config.resolved_relay_instance_type,
            shards=config.relay_shards,
            provisioning=config.relay_provisioning,
        )
    stages = [
        StageSpec(INGEST_STAGE, "dataset_ref", params={"key": input_key}),
        StageSpec(
            SORT_STAGE,
            "streaming_sort",
            after=(INGEST_STAGE,),
            params=sort_params,
        ),
        StageSpec(
            ENCODE_STAGE,
            "methcomp_encode",
            after=(SORT_STAGE,),
            params={"memory_mb": config.function_memory_mb},
        ),
    ]
    if verify:
        stages.append(
            StageSpec(
                VERIFY_STAGE,
                "methcomp_verify",
                after=(ENCODE_STAGE,),
                params={"memory_mb": config.function_memory_mb},
            )
        )
    return WorkflowDag(STREAMING_SUPPORTED, stages, bucket=bucket)


def auto_supported_pipeline(
    config: ExperimentConfig,
    input_key: str = "input/methylome.bed",
    bucket: str = "pipeline",
    verify: bool = False,
) -> WorkflowDag:
    """Adaptive incarnation: the sort picks its substrate at run time."""
    workers = None if config.auto_workers else config.parallelism
    stages = [
        StageSpec(INGEST_STAGE, "dataset_ref", params={"key": input_key}),
        StageSpec(
            SORT_STAGE,
            "auto_sort",
            after=(INGEST_STAGE,),
            params={
                "workers": workers,
                "memory_mb": config.function_memory_mb,
                "max_workers": 256,
                "time_value_usd_per_hour": config.time_value_usd_per_hour,
                "cache_node_type": config.cache_node_type,
            },
        ),
        StageSpec(
            ENCODE_STAGE,
            "methcomp_encode",
            after=(SORT_STAGE,),
            params={"memory_mb": config.function_memory_mb},
        ),
    ]
    if verify:
        stages.append(
            StageSpec(
                VERIFY_STAGE,
                "methcomp_verify",
                after=(ENCODE_STAGE,),
                params={"memory_mb": config.function_memory_mb},
            )
        )
    return WorkflowDag(AUTO_SUPPORTED, stages, bucket=bucket)


def pipeline_for(variant: str, config: ExperimentConfig, **kwargs) -> WorkflowDag:
    """Build any incarnation by name."""
    builders = {
        PURE_SERVERLESS: pure_serverless_pipeline,
        VM_SUPPORTED: vm_supported_pipeline,
        CACHE_SUPPORTED: cache_supported_pipeline,
        RELAY_SUPPORTED: relay_supported_pipeline,
        SHARDED_RELAY_SUPPORTED: sharded_relay_supported_pipeline,
        STREAMING_SUPPORTED: streaming_supported_pipeline,
        AUTO_SUPPORTED: auto_supported_pipeline,
    }
    try:
        builder = builders[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {sorted(builders)}"
        ) from None
    return builder(config, **kwargs)
