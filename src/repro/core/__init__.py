"""The paper's core contribution: object-storage- vs VM-driven data exchange.

Public API::

    from repro.core import ExperimentConfig, run_table1
    result = run_table1(ExperimentConfig(logical_scale=512))
    print(result.to_table())
"""

from repro.core.calibration import ExperimentConfig, WorkloadParams
from repro.core.experiment import (
    ExchangeComparison,
    PipelineRun,
    Table1Result,
    run_exchange_comparison,
    run_pipeline,
    run_table1,
    stage_input,
)
from repro.core.pipelines import (
    AUTO_SUPPORTED,
    CACHE_SUPPORTED,
    ENCODE_STAGE,
    INGEST_STAGE,
    PURE_SERVERLESS,
    RELAY_SUPPORTED,
    SHARDED_RELAY_SUPPORTED,
    SORT_STAGE,
    STREAMING_SUPPORTED,
    VERIFY_STAGE,
    VM_SUPPORTED,
    auto_supported_pipeline,
    cache_supported_pipeline,
    pipeline_for,
    pure_serverless_pipeline,
    relay_supported_pipeline,
    sharded_relay_supported_pipeline,
    streaming_supported_pipeline,
    vm_supported_pipeline,
)
from repro.core.stages import register_builtin_stage_kinds

__all__ = [
    "AUTO_SUPPORTED",
    "CACHE_SUPPORTED",
    "ENCODE_STAGE",
    "ExchangeComparison",
    "ExperimentConfig",
    "INGEST_STAGE",
    "PURE_SERVERLESS",
    "PipelineRun",
    "RELAY_SUPPORTED",
    "SHARDED_RELAY_SUPPORTED",
    "SORT_STAGE",
    "STREAMING_SUPPORTED",
    "Table1Result",
    "VERIFY_STAGE",
    "VM_SUPPORTED",
    "WorkloadParams",
    "auto_supported_pipeline",
    "cache_supported_pipeline",
    "pipeline_for",
    "pure_serverless_pipeline",
    "register_builtin_stage_kinds",
    "relay_supported_pipeline",
    "sharded_relay_supported_pipeline",
    "streaming_supported_pipeline",
    "run_exchange_comparison",
    "run_pipeline",
    "run_table1",
    "stage_input",
    "vm_supported_pipeline",
]
