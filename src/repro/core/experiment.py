"""Experiment harness: stage data, run a pipeline, measure Table 1.

The measurement protocol mirrors the paper's demo:

1. the input dataset is staged into object storage *before* the clock
   starts (ENCFF988BSW already lives in COS);
2. the pipeline (sort + encode) runs; **end-to-end latency includes
   startup times** (function cold starts, VM provisioning);
3. cost subsumes cloud functions, storage requests and — for the hybrid
   variant — VM execution time and storage volume.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cloud.environment import Cloud
from repro.core import stages as _stages  # noqa: F401 - registers stage kinds
from repro.core.calibration import ExperimentConfig
from repro.core.pipelines import (
    CACHE_SUPPORTED,
    PURE_SERVERLESS,
    RELAY_SUPPORTED,
    VM_SUPPORTED,
    pipeline_for,
)
from repro.methcomp.datagen import MethylomeGenerator, generate_skewed_bed_bytes
from repro.sim import Simulator
from repro.workflows.engine import WorkflowEngine, WorkflowResult


@dataclasses.dataclass(slots=True)
class PipelineRun:
    """Measured outcome of one pipeline execution."""

    variant: str
    latency_s: float
    cost_usd: float
    stage_durations: dict[str, float]
    stage_costs: dict[str, float]
    workflow: WorkflowResult
    cloud: Cloud

    @property
    def sort_workers(self) -> int:
        return self.workflow.artifacts["sort"]["workers"]

    @property
    def compression_ratio(self) -> float:
        return self.workflow.artifacts["encode"]["ratio"]


def dataset_payload(config: ExperimentConfig) -> bytes:
    """The experiment's input payload under its configured key law.

    ``key_distribution="uniform"`` is the historical chromosome-weighted
    methylome; the skewed laws (``zipf``/``heavy-dup``/``sorted-runs``/
    ``late-hot``) concentrate genomic keys so sort partitions — and
    therefore every exchange substrate — see hot ranges (experiments
    S11 and S12).
    """
    if config.key_distribution == "uniform":
        generator = MethylomeGenerator(seed=config.seed)
        return generator.generate_bed_bytes(config.real_bytes, sorted_output=False)
    return generate_skewed_bed_bytes(
        config.real_bytes,
        seed=config.seed,
        distribution=config.key_distribution,
        zipf_s=config.zipf_s,
        distinct_keys=config.skew_distinct_keys,
    )


def stage_input(cloud: Cloud, config: ExperimentConfig, bucket: str, key: str) -> None:
    """Pre-stage the synthetic ENCFF988BSW-like dataset (off the clock)."""
    payload = dataset_payload(config)
    cloud.store.ensure_bucket(bucket)

    def upload() -> t.Generator:
        yield cloud.store.put(bucket, key, payload)

    cloud.sim.run_process(upload())


def run_pipeline(
    config: ExperimentConfig,
    variant: str,
    verify: bool = False,
    cloud: Cloud | None = None,
) -> PipelineRun:
    """Stage data and execute one pipeline variant, measuring Table 1 rows."""
    if cloud is None:
        profile = config.make_profile()
        cloud = Cloud(Simulator(seed=config.seed), profile)
    bucket = "pipeline"
    input_key = "input/methylome.bed"
    stage_input(cloud, config, bucket, input_key)

    dag = pipeline_for(variant, config, input_key=input_key, bucket=bucket,
                       verify=verify)
    engine = WorkflowEngine(cloud, dag)
    engine.workload = config.workload  # used by the stage implementations

    cost_marker = cloud.meter.snapshot()
    started = cloud.sim.now
    result = t.cast(WorkflowResult, cloud.sim.run(until=engine.run()))
    latency = cloud.sim.now - started
    cloud.finalize()
    cost = cloud.meter.since(cost_marker).total_usd

    reports = result.tracker.reports
    return PipelineRun(
        variant=variant,
        latency_s=latency,
        cost_usd=cost,
        stage_durations={
            name: report.duration_s
            for name, report in reports.items()
            if report.duration_s is not None
        },
        stage_costs=result.tracker.cost_breakdown(),
        workflow=result,
        cloud=cloud,
    )


@dataclasses.dataclass(slots=True)
class Table1Result:
    """Both configurations, side by side (paper Table 1)."""

    serverless: PipelineRun
    vm: PipelineRun
    config: ExperimentConfig

    #: Paper-reported values for the reference column.
    PAPER_LATENCY = {PURE_SERVERLESS: 83.32, VM_SUPPORTED: 142.77}
    PAPER_COST = {PURE_SERVERLESS: 0.008, VM_SUPPORTED: 0.010}

    @property
    def latency_speedup(self) -> float:
        """How much faster the purely serverless pipeline is."""
        return self.vm.latency_s / self.serverless.latency_s

    @property
    def cost_ratio(self) -> float:
        """Serverless-to-VM cost ratio (paper: 0.8)."""
        return self.serverless.cost_usd / self.vm.cost_usd

    def rows(self) -> list[dict[str, t.Any]]:
        out = []
        for run in (self.serverless, self.vm):
            out.append(
                {
                    "configuration": run.variant,
                    "latency_s": run.latency_s,
                    "cost_usd": run.cost_usd,
                    "paper_latency_s": self.PAPER_LATENCY[run.variant],
                    "paper_cost_usd": self.PAPER_COST[run.variant],
                }
            )
        return out

    def to_table(self) -> str:
        lines = [
            "Table 1: METHCOMP pipeline performance "
            f"({self.config.size_gb:g} GB input, parallelism "
            f"{self.config.parallelism})",
            f"{'Configuration':<22} {'Latency (s)':>12} {'Cost ($)':>10} "
            f"{'Paper (s)':>12} {'Paper ($)':>10}",
            "-" * 70,
        ]
        for row in self.rows():
            lines.append(
                f"{row['configuration']:<22} {row['latency_s']:>12.2f} "
                f"{row['cost_usd']:>10.4f} {row['paper_latency_s']:>12.2f} "
                f"{row['paper_cost_usd']:>10.3f}"
            )
        lines.append("-" * 70)
        lines.append(
            f"serverless speedup: {self.latency_speedup:.2f}x (paper: "
            f"{142.77 / 83.32:.2f}x); cost ratio: {self.cost_ratio:.2f} "
            f"(paper: {0.008 / 0.010:.2f})"
        )
        return "\n".join(lines)


def run_table1(config: ExperimentConfig | None = None, verify: bool = False) -> Table1Result:
    """Regenerate Table 1: run both configurations on fresh regions."""
    config = config if config is not None else ExperimentConfig()
    serverless = run_pipeline(config, PURE_SERVERLESS, verify=verify)
    vm = run_pipeline(config, VM_SUPPORTED, verify=verify)
    return Table1Result(serverless=serverless, vm=vm, config=config)


@dataclasses.dataclass(slots=True)
class ExchangeComparison:
    """All four data-exchange strategies, side by side (experiment S8).

    Extends the paper's two-way Table 1 with the two provisioned
    alternatives it names but does not measure: the in-memory cache
    cluster and the VM-hosted partition relay both win the latency of
    the all-to-all but pay provisioned node/instance-hours for it,
    while object storage stays the cheapest always-on option.
    """

    serverless: PipelineRun
    vm: PipelineRun
    cache: PipelineRun
    relay: PipelineRun
    config: ExperimentConfig

    def runs(self) -> list[PipelineRun]:
        return [self.serverless, self.vm, self.cache, self.relay]

    def to_table(self) -> str:
        lines = [
            "Experiment S8: data-exchange strategies "
            f"({self.config.size_gb:g} GB input, parallelism "
            f"{self.config.parallelism})",
            f"{'Configuration':<22} {'Latency (s)':>12} {'Cost ($)':>10} "
            f"{'Sort (s)':>10} {'Sort ($)':>10}",
            "-" * 70,
        ]
        for run in self.runs():
            lines.append(
                f"{run.variant:<22} {run.latency_s:>12.2f} "
                f"{run.cost_usd:>10.4f} "
                f"{run.stage_durations.get('sort', float('nan')):>10.2f} "
                f"{run.stage_costs.get('sort', float('nan')):>10.4f}"
            )
        lines.append("-" * 70)
        return "\n".join(lines)


def run_exchange_comparison(
    config: ExperimentConfig | None = None, verify: bool = False
) -> ExchangeComparison:
    """Run all four strategies on fresh regions (experiment S8)."""
    config = config if config is not None else ExperimentConfig()
    return ExchangeComparison(
        serverless=run_pipeline(config, PURE_SERVERLESS, verify=verify),
        vm=run_pipeline(config, VM_SUPPORTED, verify=verify),
        cache=run_pipeline(config, CACHE_SUPPORTED, verify=verify),
        relay=run_pipeline(config, RELAY_SUPPORTED, verify=verify),
        config=config,
    )
