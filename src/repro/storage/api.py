"""Lithops-like storage client with retry/backoff.

:class:`Storage` wraps a (possibly bandwidth-bounded) object store with
the conveniences analytics code wants: pickled objects, text helpers,
and automatic backoff-and-retry on :class:`SlowDown` throttling errors —
the behaviour real COS clients implement and the paper's shuffle relies
on when the function count is mis-sized.

All methods return :class:`~repro.sim.events.SimEvent`s; callers are
simulation processes.
"""

from __future__ import annotations

import typing as t

from repro.cloud.retry import RETRYABLE_ERRORS, RetryPolicy
from repro.cloud.storageview import BoundStorage
from repro.errors import StorageError
from repro.sim import SimEvent, Simulator
from repro.storage.serializer import deserialize, serialize

__all__ = ["RETRYABLE_ERRORS", "RetryPolicy", "Storage"]


class Storage:
    """High-level storage client for simulated analytics code."""

    def __init__(
        self,
        sim: Simulator,
        backend: BoundStorage,
        retry: RetryPolicy | None = None,
        name: str = "storage",
    ):
        self.sim = sim
        self.backend = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.name = name
        self._rng = sim.rng.stream(f"{name}.backoff")
        #: Number of SlowDown retries performed (visible to tests/reports).
        self.retries = 0

    # ------------------------------------------------------------------
    # retry plumbing
    # ------------------------------------------------------------------
    def _with_retry(self, make_event: t.Callable[[], SimEvent], label: str) -> SimEvent:
        """Run ``make_event`` with backoff-and-retry on SlowDown."""
        return self.sim.process(
            self._retry_loop(make_event, label), name=f"{self.name}.{label}"
        ).completion

    def _retry_loop(self, make_event: t.Callable[[], SimEvent], label: str) -> t.Generator:
        attempt = 1
        while True:
            try:
                result = yield make_event()
                return result
            except RETRYABLE_ERRORS as exc:
                if attempt >= self.retry.max_attempts:
                    raise StorageError(
                        f"{label}: still failing after "
                        f"{self.retry.max_attempts} attempts ({exc})"
                    )
                self.retries += 1
                yield self.sim.timeout(self.retry.delay(attempt, self._rng))
                attempt += 1

    # ------------------------------------------------------------------
    # byte-level API
    # ------------------------------------------------------------------
    def put_object(
        self, bucket: str, key: str, data: bytes, logical_size: float | None = None
    ) -> SimEvent:
        return self._with_retry(
            lambda: self.backend.put(bucket, key, data, logical_size), f"put:{key}"
        )

    def get_object(self, bucket: str, key: str) -> SimEvent:
        return self._with_retry(lambda: self.backend.get(bucket, key), f"get:{key}")

    def get_object_range(self, bucket: str, key: str, start: int, end: int) -> SimEvent:
        return self._with_retry(
            lambda: self.backend.get_range(bucket, key, start, end),
            f"get_range:{key}",
        )

    def head_object(self, bucket: str, key: str) -> SimEvent:
        return self._with_retry(lambda: self.backend.head(bucket, key), f"head:{key}")

    def list_keys(self, bucket: str, prefix: str = "") -> SimEvent:
        return self._with_retry(
            lambda: self.backend.list_keys(bucket, prefix), f"list:{prefix}"
        )

    def delete_object(self, bucket: str, key: str) -> SimEvent:
        return self._with_retry(
            lambda: self.backend.delete(bucket, key), f"delete:{key}"
        )

    # ------------------------------------------------------------------
    # pickled-object API
    # ------------------------------------------------------------------
    def put_pickle(self, bucket: str, key: str, obj: object) -> SimEvent:
        """Serialize ``obj`` and store it; event → object metadata."""
        return self.put_object(bucket, key, serialize(obj))

    def get_pickle(self, bucket: str, key: str) -> SimEvent:
        """Fetch and deserialize an object; event → the Python value."""
        return self.sim.process(
            self._get_pickle(bucket, key), name=f"{self.name}.get_pickle:{key}"
        ).completion

    def _get_pickle(self, bucket: str, key: str) -> t.Generator:
        data = yield self.get_object(bucket, key)
        return deserialize(data)

    # ------------------------------------------------------------------
    # text helpers
    # ------------------------------------------------------------------
    def put_text(self, bucket: str, key: str, text: str) -> SimEvent:
        return self.put_object(bucket, key, text.encode("utf-8"))

    def get_text(self, bucket: str, key: str) -> SimEvent:
        return self.sim.process(
            self._get_text(bucket, key), name=f"{self.name}.get_text:{key}"
        ).completion

    def _get_text(self, bucket: str, key: str) -> t.Generator:
        data = yield self.get_object(bucket, key)
        return data.decode("utf-8")
