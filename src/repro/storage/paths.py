"""Key-layout conventions for executor state in object storage.

Mirrors the Lithops layout: each job gets a prefix under which call
payloads, results and status markers live.  Keeping the layout in one
module makes the storage traffic of the executor auditable.
"""

from __future__ import annotations

JOBS_PREFIX = "jobs"


def job_prefix(executor_id: str, job_id: str) -> str:
    """Prefix under which all of a job's objects live."""
    return f"{JOBS_PREFIX}/{executor_id}/{job_id}"


def call_input_key(executor_id: str, job_id: str, call_id: int) -> str:
    """Key of the pickled input payload of one call."""
    return f"{job_prefix(executor_id, job_id)}/{call_id:05d}/input.pickle"


def call_output_key(executor_id: str, job_id: str, call_id: int) -> str:
    """Key of the pickled result of one call."""
    return f"{job_prefix(executor_id, job_id)}/{call_id:05d}/output.pickle"


def call_status_key(executor_id: str, job_id: str, call_id: int) -> str:
    """Key of the JSON status marker of one call."""
    return f"{job_prefix(executor_id, job_id)}/{call_id:05d}/status.json"


def shuffle_partition_key(prefix: str, mapper_id: int, reducer_id: int) -> str:
    """Key of one map-output partition in a shuffle (no write-combining)."""
    return f"{prefix}/shuffle/m{mapper_id:05d}/p{reducer_id:05d}.bin"


def shuffle_map_output_key(prefix: str, mapper_id: int) -> str:
    """Key of one mapper's combined (write-combined) partition object."""
    return f"{prefix}/shuffle/m{mapper_id:05d}/combined.bin"


def shuffle_sample_key(prefix: str, mapper_id: int) -> str:
    """Key of one mapper's key sample used for range partitioning."""
    return f"{prefix}/samples/m{mapper_id:05d}.pickle"


def shuffle_output_key(prefix: str, reducer_id: int) -> str:
    """Key of one reducer's sorted output run."""
    return f"{prefix}/sorted/r{reducer_id:05d}.bin"
