"""Lithops-like storage client API over the simulated object store."""

from repro.storage.api import RetryPolicy, Storage
from repro.storage.serializer import (
    chunk_bytes,
    concat_chunks,
    deserialize,
    serialize,
    serialized_size,
)

__all__ = [
    "RetryPolicy",
    "Storage",
    "chunk_bytes",
    "concat_chunks",
    "deserialize",
    "serialize",
    "serialized_size",
]
