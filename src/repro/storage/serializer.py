"""Serialization of call payloads and results.

Lithops ships function arguments and results through object storage as
pickled blobs; we do the same (with :mod:`cloudpickle` when available,
falling back to the standard library for plain data).  Payload size is
what the performance model charges, so serialization stays on the real
byte path.
"""

from __future__ import annotations

import io
import pickle
import typing as t

try:  # cloudpickle serializes lambdas/closures, like Lithops uses
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - cloudpickle is expected offline
    _cloudpickle = None

from repro.errors import ExecutorError


def serialize(obj: object) -> bytes:
    """Pickle ``obj`` to bytes, preferring cloudpickle for functions."""
    if _cloudpickle is not None:
        return _cloudpickle.dumps(obj)
    try:
        return pickle.dumps(obj)
    except Exception as exc:  # pragma: no cover - depends on payload
        raise ExecutorError(f"cannot serialize object of type {type(obj)}") from exc


def deserialize(data: bytes) -> object:
    """Inverse of :func:`serialize`."""
    return pickle.loads(data)  # noqa: S301 - trusted, in-process data


def serialized_size(obj: object) -> int:
    """Size in bytes of the serialized form (without keeping it)."""
    return len(serialize(obj))


def chunk_bytes(data: bytes, chunk_size: int) -> t.Iterator[bytes]:
    """Split ``data`` into chunks of at most ``chunk_size`` bytes."""
    if chunk_size <= 0:
        raise ExecutorError(f"chunk_size must be positive, got {chunk_size}")
    view = memoryview(data)
    for start in range(0, len(view), chunk_size):
        yield bytes(view[start : start + chunk_size])


def concat_chunks(chunks: t.Iterable[bytes]) -> bytes:
    """Reassemble chunks produced by :func:`chunk_bytes`."""
    buffer = io.BytesIO()
    for chunk in chunks:
        buffer.write(chunk)
    return buffer.getvalue()
