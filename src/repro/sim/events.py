"""Core event primitives for the discrete-event simulation kernel.

A :class:`SimEvent` is a one-shot occurrence in simulated time.  Processes
(see :mod:`repro.sim.process`) wait on events by yielding them; the kernel
resumes the process when the event triggers, delivering the event's value
(or raising its exception inside the process).

Events are intentionally tiny: the kernel is on the hot path of every
simulated storage request, so we keep allocation and indirection low.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class SimEvent:
    """A one-shot event that callbacks and processes can wait on.

    An event starts *pending*.  Exactly once, it either ``succeed(value)``s
    or ``fail(exc)``s; afterwards it is *triggered* and its callbacks run
    in registration order.  Late callbacks (added after triggering) run
    immediately, which makes ``yield event`` race-free for processes.
    """

    __slots__ = ("sim", "name", "_value", "_exc", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: object = _PENDING
        self._exc: BaseException | None = None
        self._callbacks: list[t.Callable[[SimEvent], None]] | None = []

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already succeeded or failed."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> object:
        """The success value.  Raises if pending or failed."""
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimulationError(f"event {self.name!r} has not triggered yet")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or ``None``."""
        return self._exc

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: object = None) -> "SimEvent":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Trigger the event as failed with ``exc``.

        Waiting processes will see ``exc`` raised at their ``yield``.
        """
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError("SimEvent.fail() requires an exception instance")
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------
    def add_callback(self, callback: t.Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered, the callback runs immediately;
        this keeps waiting race-free regardless of trigger ordering.
        """
        if self._callbacks is None:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else f"failed({self._exc!r})"
        return f"<SimEvent {self.name!r} {state}>"


class Timeout(SimEvent):
    """An event that triggers after a fixed simulated delay.

    Created through :meth:`repro.sim.kernel.Simulator.timeout`; scheduling
    happens there so this class stays a plain value container.
    """

    __slots__ = ("delay", "_scheduled_value")

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        # Delivered by the kernel when the timeout comes due.
        self._scheduled_value = value


class ConditionError(SimulationError):
    """A condition event (``AllOf``/``AnyOf``) was built incorrectly."""


class AllOf(SimEvent):
    """Triggers when *all* child events have triggered.

    Succeeds with the list of child values in construction order.  If any
    child fails, the condition fails immediately with that exception.
    """

    __slots__ = ("events", "_remaining", "_done")

    def __init__(self, sim: "Simulator", events: t.Sequence[SimEvent]):
        super().__init__(sim, name=f"all_of({len(events)})")
        self.events = list(events)
        for event in self.events:
            if not isinstance(event, SimEvent):
                raise ConditionError(f"AllOf child is not a SimEvent: {event!r}")
        self._remaining = len(self.events)
        self._done = False
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: SimEvent) -> None:
        if self._done:
            return
        if not event.ok:
            self._done = True
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._done = True
            self.succeed([child.value for child in self.events])


class AnyOf(SimEvent):
    """Triggers when the *first* child event triggers.

    Succeeds with ``(index, value)`` of the first triggering child, or
    fails with its exception.  Remaining children keep running; callers
    that need cancellation should interrupt the losing processes.
    """

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: t.Sequence[SimEvent]):
        super().__init__(sim, name=f"any_of({len(events)})")
        self.events = list(events)
        if not self.events:
            raise ConditionError("AnyOf requires at least one event")
        self._done = False
        for index, event in enumerate(self.events):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> t.Callable[[SimEvent], None]:
        def on_child(event: SimEvent) -> None:
            if self._done:
                return
            self._done = True
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.exception)  # type: ignore[arg-type]

        return on_child
