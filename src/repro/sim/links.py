"""Fluid-model bandwidth links with max-min fair sharing.

A :class:`FairShareLink` models a shared capacity (a VM NIC, an object
store's per-account aggregate pipe, a regional backbone) over which any
number of concurrent *flows* transfer bytes.  The model is the classical
fluid approximation: at any instant, bandwidth is divided among active
flows by max-min fairness, honouring an optional per-flow rate cap (used
to model per-connection limits of object storage).

The implementation is event-driven: rates change only when a flow starts
or finishes, so between those instants each flow drains linearly and the
kernel needs just one timer for the earliest completion.
"""

from __future__ import annotations

import itertools
import math
import typing as t

from repro.errors import SimulationError
from repro.sim.events import SimEvent

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: Residual bytes below this threshold count as "transfer complete".
_EPSILON_BYTES = 1e-6


class _Flow:
    __slots__ = ("flow_id", "remaining", "cap", "rate", "event", "started_at")

    def __init__(
        self,
        flow_id: int,
        nbytes: float,
        cap: float,
        event: SimEvent,
        started_at: float,
    ):
        self.flow_id = flow_id
        self.remaining = float(nbytes)
        self.cap = cap
        self.rate = 0.0
        self.event = event
        self.started_at = started_at


class FairShareLink:
    """Shared-capacity link dividing bandwidth max-min fairly among flows.

    Parameters
    ----------
    capacity:
        Total link capacity in bytes/second.  ``math.inf`` models an
        uncontended aggregate (flows then run at their per-flow caps).
    default_flow_cap:
        Per-flow rate ceiling in bytes/second applied when ``transfer``
        is not given an explicit cap.  ``math.inf`` disables the ceiling.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float,
        default_flow_cap: float = math.inf,
        name: str = "link",
    ):
        if capacity <= 0:
            raise SimulationError(f"{name}: link capacity must be positive")
        if default_flow_cap <= 0:
            raise SimulationError(f"{name}: per-flow cap must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.default_flow_cap = default_flow_cap
        self._flows: dict[int, _Flow] = {}
        self._flow_ids = itertools.count(1)
        self._last_update = sim.now
        self._timer_token = 0
        #: Total bytes ever delivered; exposed for tests and reports.
        self.bytes_delivered = 0.0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of in-progress transfers."""
        return len(self._flows)

    def transfer(self, nbytes: float, flow_cap: float | None = None) -> SimEvent:
        """Start a transfer of ``nbytes``; the event triggers at completion.

        The event's value is the transfer duration in seconds.
        """
        if nbytes < 0:
            raise SimulationError(f"{self.name}: cannot transfer {nbytes} bytes")
        cap = self.default_flow_cap if flow_cap is None else flow_cap
        if cap <= 0:
            raise SimulationError(f"{self.name}: per-flow cap must be positive")
        event = SimEvent(self.sim, name=f"{self.name}.transfer({nbytes:g}B)")
        if nbytes <= _EPSILON_BYTES:
            self.bytes_delivered += max(nbytes, 0.0)
            event.succeed(0.0)
            return event
        if math.isinf(self.capacity) and math.isinf(cap):
            raise SimulationError(
                f"{self.name}: transfer needs a finite capacity or flow cap"
            )
        self._advance()
        flow = _Flow(next(self._flow_ids), nbytes, cap, event, self.sim.now)
        self._flows[flow.flow_id] = flow
        self._rerate()
        self._reschedule()
        return event

    def abort(self, event: SimEvent) -> bool:
        """Abort the in-flight transfer identified by its completion event.

        The flow stops consuming link capacity immediately; its event is
        left untriggered (the aborting caller is unwinding and nobody
        else may wait on a transfer event).  Returns whether a flow was
        actually removed — ``False`` means the transfer had already
        completed (or never contended, e.g. zero-byte transfers).
        """
        for flow_id, flow in self._flows.items():
            if flow.event is event:
                self._advance()
                # Bytes already drained stay delivered (they crossed the
                # wire); only the undelivered remainder is cancelled.
                del self._flows[flow_id]
                self._rerate()
                self._reschedule()
                return True
        return False

    def utilization(self) -> float:
        """Current aggregate rate as a fraction of capacity (0..1)."""
        if math.isinf(self.capacity):
            return 0.0
        return sum(flow.rate for flow in self._flows.values()) / self.capacity

    # ------------------------------------------------------------------
    # fluid-model mechanics
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Drain all flows at their current rates up to ``sim.now``."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows.values():
                drained = flow.rate * elapsed
                flow.remaining -= drained
                self.bytes_delivered += drained
        self._last_update = now

    def _rerate(self) -> None:
        """Recompute per-flow rates with capped max-min fairness.

        Water-filling: visit flows in ascending cap order, giving each
        ``min(cap, remaining_capacity / remaining_flows)``.
        """
        flows = sorted(self._flows.values(), key=lambda flow: flow.cap)
        remaining_capacity = self.capacity
        remaining_count = len(flows)
        for flow in flows:
            if math.isinf(remaining_capacity):
                fair_share = flow.cap
            else:
                fair_share = remaining_capacity / remaining_count
            flow.rate = min(flow.cap, fair_share)
            remaining_capacity -= flow.rate
            remaining_count -= 1

    def _reschedule(self) -> None:
        """Arm one timer for the earliest flow completion.

        The eta is clamped to a minimum tick well above the float
        resolution of the current timestamp: with sub-resolution etas,
        ``now + eta == now`` and the timer would re-fire forever at the
        same instant without draining anything.  The clamp trades a
        sub-microsecond overshoot for guaranteed progress.
        """
        self._timer_token += 1
        if not self._flows:
            return
        token = self._timer_token
        eta = min(
            flow.remaining / flow.rate
            for flow in self._flows.values()
            if flow.rate > 0
        )
        min_tick = max(1e-9, abs(self.sim.now) * 1e-12)
        self.sim.timeout(max(eta, min_tick)).add_callback(
            lambda _evt: self._on_timer(token)
        )

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # a newer re-rating superseded this timer
        self._advance()
        finished = [
            flow for flow in self._flows.values() if flow.remaining <= _EPSILON_BYTES
        ]
        for flow in finished:
            del self._flows[flow.flow_id]
        self._rerate()
        self._reschedule()
        for flow in finished:
            flow.event.succeed(self.sim.now - flow.started_at)
