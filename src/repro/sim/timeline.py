"""Structured tracing of simulation activity.

Components append :class:`TraceRecord` entries to the simulator's
:class:`Timeline`.  The workflow tracker, the experiment report and the
tests all consume these records; nothing inside the kernel depends on
them, so tracing can be disabled for speed.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Virtual time of the occurrence (seconds).
    category:
        Coarse grouping, e.g. ``"storage"``, ``"faas"``, ``"vm"``,
        ``"stage"``.
    name:
        Event name within the category, e.g. ``"get"``, ``"cold_start"``.
    fields:
        Free-form payload (sizes, durations, keys, ...).
    """

    time: float
    category: str
    name: str
    fields: dict[str, t.Any] = dataclasses.field(default_factory=dict)


class Timeline:
    """Append-only trace of the simulation, filterable by category."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def record(self, time: float, category: str, name: str, **fields: t.Any) -> None:
        """Append a record (no-op unless tracing is enabled)."""
        if self.enabled:
            self.records.append(TraceRecord(time, category, name, dict(fields)))

    def filter(
        self, category: str | None = None, name: str | None = None
    ) -> list[TraceRecord]:
        """Records matching the given category and/or name."""
        return [
            record
            for record in self.records
            if (category is None or record.category == category)
            and (name is None or record.name == name)
        ]

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
