"""Deterministic discrete-event simulation kernel.

This package is the substrate under the whole library: the simulated
cloud (object storage, FaaS, VMs) is built from :class:`Simulator`
processes, events and resources.

Public surface::

    from repro.sim import Simulator, FOREVER
    from repro.sim import SimEvent, Timeout, AllOf, AnyOf
    from repro.sim import Process
    from repro.sim import Resource, TokenBucket, Store
    from repro.sim import FairShareLink
"""

from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.kernel import FOREVER, Simulator
from repro.sim.links import FairShareLink
from repro.sim.notify import KeyedWatch
from repro.sim.process import Process
from repro.sim.resources import Resource, Store, TokenBucket
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.timeline import Timeline, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "FOREVER",
    "FairShareLink",
    "KeyedWatch",
    "Process",
    "Resource",
    "RngRegistry",
    "SimEvent",
    "Simulator",
    "Store",
    "Timeline",
    "Timeout",
    "TokenBucket",
    "TraceRecord",
    "derive_seed",
]
