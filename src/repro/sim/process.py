"""Generator-driven simulation processes.

A *process* is a Python generator that yields
:class:`~repro.sim.events.SimEvent` objects.  The :class:`Process` wrapper
drives the generator: whenever the yielded event triggers, the event's
value is sent back into the generator (or its exception is thrown in).

Example
-------
::

    def worker(sim, storage):
        data = yield storage.get("bucket", "key")      # wait for I/O
        yield sim.timeout(0.5)                          # simulated compute
        yield storage.put("bucket", "out", data)
        return len(data)                                # process result

    process = sim.process(worker(sim, storage))
    sim.run(until=process.completion)
    print(process.result)

Processes compose: ``yield other_process.completion`` waits for another
process; ``yield from subroutine(...)`` inlines a sub-generator with no
kernel involvement.
"""

from __future__ import annotations

import typing as t

from repro.errors import Interrupted, SimulationError
from repro.sim.events import SimEvent

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Process:
    """Drives a generator as a concurrent simulated activity.

    Attributes
    ----------
    completion:
        A :class:`SimEvent` that triggers when the generator returns
        (succeeding with its return value) or raises (failing with the
        exception).  Waiting on a process means waiting on this event.
    """

    __slots__ = ("sim", "name", "generator", "completion", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: t.Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        self.completion = SimEvent(sim, name=f"{self.name}.completion")
        self._waiting_on: SimEvent | None = None
        sim._process_started()
        # Start the process at the current instant, but via the event heap
        # so that creation order == start order and the creator finishes
        # its own current step first.  The kickoff event succeeds with
        # ``None``, which primes the generator (first ``send(None)``).
        kickoff = SimEvent(sim, name=f"{self.name}.start")
        kickoff.add_callback(self._on_event)
        self._waiting_on = kickoff
        sim._schedule(0.0, kickoff)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self.completion.triggered

    @property
    def interruptible(self) -> bool:
        """Whether the process is parked at a yield (interrupt is legal).

        False once finished or while mid-step; cancellation scopes check
        this instead of poking at kernel internals.
        """
        return self.alive and self._waiting_on is not None

    @property
    def result(self) -> object:
        """Return value of the generator (raises if failed/unfinished)."""
        return self.completion.value

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def _on_event(self, event: SimEvent) -> None:
        """Resume the generator with the outcome of ``event``."""
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.exception)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
            self._finish_fail(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: object) -> None:
        if isinstance(target, Process):
            target = target.completion
        if not isinstance(target, SimEvent):
            self._finish_fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes may "
                    "only yield SimEvent (or Process) objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _finish_ok(self, value: object) -> None:
        self.sim._process_finished()
        self.completion.succeed(value)

    def _finish_fail(self, exc: BaseException) -> None:
        # Failing the completion event preserves the exception: it reaches
        # waiters immediately and later waiters via add_callback.
        self.sim._process_finished()
        self.completion.fail(exc)

    # ------------------------------------------------------------------
    # interruption (failure injection / cancellation)
    # ------------------------------------------------------------------
    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupted` into the process at its current wait.

        No-op if the process already finished.  Interrupting a process
        that is mid-step (not waiting) is a kernel-usage error.
        """
        if not self.alive:
            return
        if self._waiting_on is None:
            raise SimulationError(
                f"cannot interrupt process {self.name!r}: it is not waiting"
            )
        # Detach from the event we were waiting on by replacing our resume
        # callback with a no-op marker, then resume with the interrupt.
        waited = self._waiting_on
        self._waiting_on = None
        if waited._callbacks is not None and self._on_event in waited._callbacks:
            waited._callbacks.remove(self._on_event)
        try:
            target = self.generator.throw(Interrupted(cause))
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001
            self._finish_fail(exc)
            return
        self._wait_on(target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "finished"
        return f"<Process {self.name!r} {state}>"
