"""Deterministic named random-number streams.

Every stochastic component (storage latency, cold starts, data
generation, ...) draws from its *own* named stream derived from the
simulator's root seed.  This keeps runs reproducible and — crucially —
insensitive to the order in which unrelated components draw numbers:
adding a new component cannot perturb the sequence another one sees.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across platforms and Python
    versions (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache for named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
