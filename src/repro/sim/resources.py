"""Contended resources for simulation processes.

Three primitives cover everything the cloud substrate needs:

* :class:`Resource` — a counting semaphore with a FIFO wait queue
  (function-container slots, VM vCPUs, connection pools).
* :class:`TokenBucket` — a rate limiter with burst capacity (object
  storage requests/s, API rate limits).
* :class:`Store` — an unbounded FIFO message queue (task queues,
  mailbox-style coordination between processes).

All of them hand out :class:`~repro.sim.events.SimEvent` objects that
processes wait on by yielding.
"""

from __future__ import annotations

import collections
import typing as t

from repro.errors import SimulationError
from repro.sim.events import SimEvent

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Resource:
    """Counting semaphore with FIFO fairness.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...  # hold the resource
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: collections.deque[SimEvent] = collections.deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers currently waiting."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        """Request one unit; the returned event triggers when granted."""
        event = SimEvent(self.sim, name=f"{self.name}.acquire")
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the longest-waiting acquirer if any."""
        if self.in_use <= 0:
            raise SimulationError(f"{self.name}: release() without acquire()")
        if self._waiters:
            # Hand the unit straight to the next waiter; in_use is unchanged.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class TokenBucket:
    """Token-bucket rate limiter with analytic (event-free) refill.

    Tokens accrue continuously at ``rate`` per second up to ``capacity``.
    ``consume(n)`` returns an event that triggers once ``n`` tokens have
    been taken; requests are served strictly FIFO, so a large request
    cannot be starved by a stream of small ones.
    """

    def __init__(
        self,
        sim: "Simulator",
        rate: float,
        capacity: float | None = None,
        name: str = "bucket",
    ):
        if rate <= 0:
            raise SimulationError(f"{name}: rate must be positive, got {rate}")
        self.sim = sim
        self.name = name
        self.rate = rate
        self.capacity = capacity if capacity is not None else rate
        if self.capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self._tokens = self.capacity
        self._updated_at = sim.now
        self._waiters: collections.deque[tuple[float, SimEvent]] = collections.deque()
        self._wake_pending = False

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill accrual)."""
        self._refill()
        return self._tokens

    @property
    def pending_demand(self) -> float:
        """Total tokens requested by waiters not yet served."""
        return sum(amount for amount, _event in self._waiters)

    def estimated_wait(self, amount: float) -> float:
        """Seconds a new ``consume(amount)`` would wait, given FIFO order."""
        self._refill()
        backlog = self.pending_demand + amount - self._tokens
        if backlog <= 0:
            return 0.0
        return backlog / self.rate

    def _refill(self) -> None:
        now = self.sim.now
        if now > self._updated_at:
            self._tokens = min(self.capacity, self._tokens + self.rate * (now - self._updated_at))
            self._updated_at = now

    def consume(self, amount: float = 1.0) -> SimEvent:
        """Take ``amount`` tokens; the event triggers when they are taken."""
        if amount <= 0:
            raise SimulationError(f"{self.name}: consume amount must be positive")
        if amount > self.capacity:
            raise SimulationError(
                f"{self.name}: cannot consume {amount} tokens; bucket capacity "
                f"is {self.capacity}"
            )
        event = SimEvent(self.sim, name=f"{self.name}.consume({amount:g})")
        self._waiters.append((amount, event))
        self._pump()
        return event

    def _pump(self) -> None:
        self._refill()
        while self._waiters:
            amount, event = self._waiters[0]
            if amount <= self._tokens + 1e-12:
                self._tokens -= amount
                self._waiters.popleft()
                event.succeed()
                continue
            if not self._wake_pending:
                shortfall = amount - self._tokens
                delay = shortfall / self.rate
                self._wake_pending = True
                self.sim.timeout(delay).add_callback(self._on_wake)
            return

    def cancel(self, event: SimEvent) -> bool:
        """Withdraw a pending ``consume`` request identified by its event.

        Used by cancellation paths so an interrupted process's queued
        request neither burns tokens nor stalls later FIFO waiters.
        Returns whether the request was still queued (``False`` once the
        tokens were already taken).
        """
        for index, (_amount, waiter) in enumerate(self._waiters):
            if waiter is event:
                del self._waiters[index]
                self._pump()  # the head request may now be servable
                return True
        return False

    def _on_wake(self, _event: SimEvent) -> None:
        self._wake_pending = False
        self._pump()


class Store:
    """Unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: "Simulator", name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[SimEvent] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``; wakes the longest-waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Request one item; the event succeeds with the item when available."""
        event = SimEvent(self.sim, name=f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
