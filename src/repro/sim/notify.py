"""Keyed park-until-signalled registry for rendezvous reads.

The streaming exchange needs the same mechanism on two services: a
reader that arrives before its key parks on a notification and resumes
when a writer publishes it (relay commit, cache set) — or fails loudly
when the key can never arrive (server terminated, value evicted).
:class:`KeyedWatch` is that mechanism, once, so the relay and the cache
node share one tested implementation instead of hand-rolling SimEvent
list management each.

Waiters clean up after themselves on interrupt by calling
:meth:`unwatch`; a fired or failed watcher is removed from the registry
automatically.
"""

from __future__ import annotations

import typing as t

from repro.sim.events import SimEvent

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class KeyedWatch:
    """Pending watchers per key: notify-all on publish, fail on loss."""

    def __init__(self, sim: "Simulator", name: str = "watch"):
        self.sim = sim
        self.name = name
        self._watchers: dict[str, list[SimEvent]] = {}

    def watch(self, key: str) -> SimEvent:
        """An event that succeeds the next time ``key`` is signalled."""
        event = SimEvent(self.sim, name=f"{self.name}:{key}")
        self._watchers.setdefault(key, []).append(event)
        return event

    def unwatch(self, key: str, event: SimEvent) -> None:
        """Drop a watcher (an interrupted reader cleans up after itself)."""
        watchers = self._watchers.get(key)
        if watchers is None:
            return
        try:
            watchers.remove(event)
        except ValueError:
            pass
        if not watchers:
            del self._watchers[key]

    def notify(self, key: str) -> None:
        """Wake every watcher parked on ``key``."""
        for event in self._watchers.pop(key, ()):
            if not event.triggered:
                event.succeed()

    def fail_key(self, key: str, exc: BaseException) -> None:
        """Fail every watcher parked on ``key`` (the key is gone for good)."""
        for event in self._watchers.pop(key, ()):
            if not event.triggered:
                event.fail(exc)

    def fail_all(self, make_exc: t.Callable[[str], BaseException]) -> None:
        """Fail every parked watcher, keyed exception per key (teardown)."""
        watchers, self._watchers = self._watchers, {}
        for key, events in watchers.items():
            for event in events:
                if not event.triggered:
                    event.fail(make_exc(key))
