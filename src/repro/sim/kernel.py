"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event heap.  Everything
else in the library — object storage, FaaS platform, VMs, executors,
pipelines — is built from processes scheduled on one ``Simulator``.

Design notes
------------

* Virtual time is a ``float`` in seconds.  No component ever reads the
  wall clock, which makes runs fully deterministic for a given seed.
* The heap stores ``(time, seq, event)`` tuples; ``seq`` is a global
  monotonically increasing tie-breaker so same-time events trigger in
  scheduling order, deterministically.
* Processes are plain Python generators driven by :class:`~repro.sim.process.Process`.
  They interact with the kernel exclusively by yielding
  :class:`~repro.sim.events.SimEvent` objects.
"""

from __future__ import annotations

import heapq
import typing as t

from repro.errors import DeadlockError, SimulationError
from repro.obs.trace import Tracer, trace_enabled_from_env
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.timeline import Timeline

#: Value used for ``run(until=...)`` meaning "run until no events remain".
FOREVER = float("inf")


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all named RNG streams (see :class:`RngRegistry`).
    trace:
        When true, components record :class:`~repro.sim.timeline.TraceRecord`
        entries on :attr:`timeline` (at a modest performance cost).
    spans:
        When true, :attr:`tracer` records attempt-scoped spans (see
        :mod:`repro.obs.trace`).  Defaults to the ``REPRO_TRACE``
        environment variable so any existing run can be traced without
        code changes.  Span recording is pure interpreter-side
        bookkeeping and never perturbs simulation outcomes.
    """

    def __init__(self, seed: int = 0, trace: bool = False, spans: bool | None = None):
        self._now = 0.0
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._seq = 0
        self._active_processes = 0
        self.rng = RngRegistry(seed)
        self.timeline = Timeline(enabled=trace)
        if spans is None:
            spans = trace_enabled_from_env()
        self.tracer = Tracer(clock=lambda: self._now, enabled=spans)
        self.seed = seed

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # event construction
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event owned by this simulator."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        event = Timeout(self, delay, value)
        self._schedule(delay, event)
        return event

    def all_of(self, events: t.Sequence[SimEvent]) -> AllOf:
        """Event that triggers when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: t.Sequence[SimEvent]) -> AnyOf:
        """Event that triggers when the first event in ``events`` does."""
        return AnyOf(self, events)

    def _schedule(self, delay: float, event: SimEvent) -> None:
        """Arrange for ``event`` to succeed ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def process(self, generator: t.Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``.

        The generator may yield :class:`SimEvent` objects (including other
        processes' completion events).  The value sent back into the
        generator is the event's value; failed events raise inside it.
        """
        return Process(self, generator, name=name)

    def _process_started(self) -> None:
        self._active_processes += 1

    def _process_finished(self) -> None:
        self._active_processes -= 1

    @property
    def active_process_count(self) -> int:
        """Number of started-but-not-finished processes."""
        return self._active_processes

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Trigger the next scheduled event.  Returns False when idle."""
        if not self._heap:
            return False
        time, _seq, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event heap went backwards in time")
        self._now = time
        if not event.triggered:
            if isinstance(event, Timeout):
                event.succeed(event._scheduled_value)
            else:
                event.succeed(None)
        return True

    def run(self, until: float | SimEvent = FOREVER) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``FOREVER`` (default) — run until the event heap drains;
        * a ``float`` — run until virtual time reaches that instant;
        * a :class:`SimEvent` — run until that event triggers, returning
          its value (or raising its exception).
        """
        if isinstance(until, SimEvent):
            return self._run_until_event(until)
        deadline = float(until)
        while self._heap:
            next_time = self._heap[0][0]
            if next_time > deadline:
                self._now = min(deadline, next_time) if deadline != FOREVER else self._now
                if deadline != FOREVER:
                    self._now = deadline
                return None
            self.step()
        if self._active_processes > 0:
            raise DeadlockError(
                f"simulation ran out of events with {self._active_processes} "
                "process(es) still waiting — deadlock"
            )
        if deadline != FOREVER:
            self._now = deadline
        return None

    def _run_until_event(self, event: SimEvent) -> object:
        while not event.triggered:
            if not self.step():
                raise DeadlockError(
                    f"simulation ran out of events before {event.name!r} triggered"
                )
        return event.value

    def run_process(self, generator: t.Generator, name: str = "") -> object:
        """Convenience: start ``generator`` as a process and run to its end."""
        process = self.process(generator, name=name)
        return self.run(until=process.completion)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f}s queued={len(self._heap)} "
            f"active={self._active_processes}>"
        )
